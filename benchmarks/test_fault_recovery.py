"""Recovery overhead under deterministic fault injection.

Compares a clean run against the same workload executed under a seeded
:class:`FaultPlan` (transient task failures + worker crashes losing map
output + shuffle corruption): the skyline must be identical, and the
extra work — retries, re-executed map tasks, re-fetched blocks, backoff
— is the recovery overhead the table quantifies."""

from conftest import once

from repro.bench.harness import ResultTable, run_plan_measured
from repro.data.synthetic import anticorrelated
from repro.mapreduce.faults import FaultPlan

PLANS = ("Naive-Z+ZS", "ZHG+ZS", "ZDG+ZS+ZM")

FAULTS = FaultPlan(
    seed=23,
    task_failure_rate=0.15,
    worker_crash_rate=0.25,
    corruption_rate=0.15,
    max_attempts=8,
    backoff_base=0.002,
)


def _run(scale):
    dataset = anticorrelated(scale.size(10), 6, seed=4)
    table = ResultTable(
        "fault recovery overhead (clean vs faulted)",
        [
            "plan",
            "mode",
            "makespan_s",
            "makespan_cost",
            "recovery_cost",
            "failed_attempts",
            "worker_crashes",
            "reexecuted_tasks",
            "corrupt_blocks",
            "skyline",
        ],
    )
    skylines = {}
    for plan in PLANS:
        for mode, fault_plan in (("clean", None), ("faulted", FAULTS)):
            report = run_plan_measured(
                plan, dataset, num_workers=8, fault_plan=fault_plan
            )
            summary = report.fault_summary()
            table.add(
                plan=plan,
                mode=mode,
                makespan_s=round(report.total_seconds, 4),
                makespan_cost=report.makespan_cost,
                recovery_cost=report.recovery_cost,
                failed_attempts=summary["map.failed_attempts"]
                + summary["reduce.failed_attempts"],
                worker_crashes=summary["map.worker_crashes"],
                reexecuted_tasks=summary["map.reexecuted_tasks"],
                corrupt_blocks=summary["shuffle.corrupt_blocks"],
                skyline=report.skyline_size,
            )
            skylines[(plan, mode)] = sorted(report.skyline.ids.tolist())
    return table, skylines


class TestFaultRecovery:
    def test_recovery_overhead(self, benchmark, scale, emit):
        table, skylines = once(benchmark, lambda: _run(scale))
        emit(table, "fault_recovery")
        for plan in PLANS:
            # The contract: faults never change the answer.
            assert skylines[(plan, "clean")] == skylines[(plan, "faulted")]
            clean = table.select(plan=plan, mode="clean").rows[0]
            faulted = table.select(plan=plan, mode="faulted").rows[0]
            # A clean run reports zero recovery activity...
            assert clean["recovery_cost"] == 0
            assert clean["failed_attempts"] == 0
            assert clean["corrupt_blocks"] == 0
            # ...and the schedule genuinely exercised the faulted one.
            assert (
                faulted["failed_attempts"]
                + faulted["reexecuted_tasks"]
                + faulted["corrupt_blocks"]
            ) > 0
