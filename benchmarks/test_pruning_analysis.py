"""§5.4's data-pruning analysis, measured: how much of the input the
first MapReduce job eliminates before the merge, per distribution.

Paper's analysis: correlated data is pruned almost entirely (n_p close
to n - M), independent data proportionally to the dominance volume, and
anti-correlated data the least (in the extreme, n_p = 0 when every point
is a skyline point).
"""

from conftest import once

from repro.bench import experiments


class TestPruningAnalysis:
    def test_pruning_order_matches_analysis(self, benchmark, scale, emit):
        table = once(benchmark, experiments.pruning_analysis)
        emit(table, "pruning_analysis")
        frac = {
            r["distribution"]: r["pruned_fraction"] for r in table.rows
        }
        # correlated >= independent >= anticorrelated, strictly ordered
        # in practice.
        assert frac["correlated"] > frac["independent"]
        assert frac["independent"] > frac["anticorrelated"]

    def test_candidates_bounded_by_input(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.pruning_analysis(size_m=20)
        )
        emit(table, "pruning_analysis_small")
        for row in table.rows:
            assert row["skyline"] <= row["candidates"] <= row["n"]
