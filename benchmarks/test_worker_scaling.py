"""Worker-scaling speedup curves (systems figure beyond the paper)."""

from conftest import once

from repro.bench import experiments


def _series(table, plan):
    rows = table.select(plan=plan)
    return dict(zip(rows.column("workers"), rows.column("makespan_cost")))


class TestWorkerScaling:
    def test_zmp_keeps_scaling_past_zm(self, benchmark, scale, emit):
        table = once(benchmark, experiments.worker_scaling)
        emit(table, "worker_scaling")
        zm = _series(table, "ZDG+ZS+ZM")
        zmp = _series(table, "ZDG+ZS+ZMP")
        # Adding workers helps both (1 -> 16 strictly improves).
        assert zm[16] < zm[1]
        assert zmp[16] < zmp[1]
        # At high worker counts the single-reducer merge is the floor:
        # the parallel merge ends up at least as fast.
        assert zmp[16] <= zm[16]

    def test_total_work_stable_across_cluster_sizes(self, benchmark,
                                                    scale, emit):
        table = once(
            benchmark,
            lambda: experiments.worker_scaling(
                worker_counts=(2, 8), plans=("ZDG+ZS+ZM",)
            ),
        )
        emit(table, "worker_scaling_total")
        rows = table.select(plan="ZDG+ZS+ZM")
        totals = rows.column("total_cost")
        # The work done is a property of the plan, not the cluster size
        # (within the tolerance of input-split granularity effects).
        assert abs(totals[0] - totals[1]) / max(totals) < 0.3
