"""Micro-benchmarks of the building blocks (wall-clock, multi-round):
centralized skyline algorithms, ZB-tree construction, Z-merge vs
re-running Z-search when folding candidate sets.
"""

import numpy as np
import pytest

from repro.algorithms.bnl import bnl_skyline
from repro.algorithms.sfs import sort_based_skyline
from repro.algorithms.zs import zs_skyline
from repro.data.synthetic import anticorrelated, independent
from repro.zorder.encoding import quantize_dataset
from repro.zorder.zbtree import build_zbtree
from repro.zorder.zmerge import zmerge_all
from repro.zorder.zsearch import zsearch


@pytest.fixture(scope="module")
def indep_grid(scale):
    ds = independent(scale.size(10), 5, seed=1)
    snapped, codec = quantize_dataset(ds, bits_per_dim=12)
    return snapped, codec


@pytest.fixture(scope="module")
def anti_grid(scale):
    ds = anticorrelated(scale.size(10), 5, seed=1)
    snapped, codec = quantize_dataset(ds, bits_per_dim=12)
    return snapped, codec


class TestCentralizedAlgorithms:
    def test_bnl(self, benchmark, indep_grid):
        snapped, _ = indep_grid
        benchmark(lambda: bnl_skyline(snapped.points, snapped.ids, None))

    def test_sort_based(self, benchmark, indep_grid):
        snapped, _ = indep_grid
        benchmark(
            lambda: sort_based_skyline(snapped.points, snapped.ids, None)
        )

    def test_zsearch(self, benchmark, indep_grid):
        snapped, codec = indep_grid
        benchmark(
            lambda: zs_skyline(snapped.points, snapped.ids, None, codec)
        )

    def test_zsearch_anticorrelated(self, benchmark, anti_grid):
        snapped, codec = anti_grid
        benchmark(
            lambda: zs_skyline(snapped.points, snapped.ids, None, codec)
        )


class TestTreeOperations:
    def test_zbtree_build(self, benchmark, indep_grid):
        snapped, codec = indep_grid
        benchmark(lambda: build_zbtree(codec, snapped.points, ids=snapped.ids))

    def test_zmerge_fold(self, benchmark, anti_grid):
        snapped, codec = anti_grid
        chunks = np.array_split(np.arange(snapped.size), 8)
        trees = []
        for chunk in chunks:
            pts = snapped.points[chunk]
            tree = build_zbtree(codec, pts, ids=snapped.ids[chunk])
            sky, ids = zsearch(tree)
            trees.append(build_zbtree(codec, sky, ids=ids))

        def fold():
            import copy

            return zmerge_all(
                [
                    build_zbtree(codec, t.points(), ids=t.ids())
                    for t in trees
                ]
            )

        result = benchmark(fold)
        assert result.size > 0
