"""Durability overhead of the supervised pipeline.

Three runs of the same workload: the bare engine, the supervisor with
checkpointing enabled (every durable stage serialised + CRC'd to disk),
and a resumed run that replays nothing but the final merge.  The table
quantifies what a checkpoint costs — and what a resume saves — while
asserting all three produce the identical skyline."""

import tempfile

from conftest import once

from repro.bench.harness import ResultTable, run_plan_measured
from repro.data.synthetic import anticorrelated
from repro.pipeline.supervisor import SupervisorConfig, supervised_run

PLANS = ("ZHG+ZS", "ZDG+ZS+ZM")


def _run(scale):
    dataset = anticorrelated(scale.size(10), 6, seed=4)
    table = ResultTable(
        "checkpoint overhead (bare vs checkpointed vs resumed)",
        ["plan", "mode", "total_s", "phase1_s", "merge_s", "skyline"],
    )
    for plan in PLANS:
        bare = run_plan_measured(plan, dataset, num_workers=8)
        table.add(
            plan=plan,
            mode="bare",
            total_s=round(bare.total_seconds, 4),
            phase1_s=round(bare.phase1_seconds, 4),
            merge_s=round(bare.merge_seconds, 4),
            skyline=bare.skyline_size,
        )
        with tempfile.TemporaryDirectory() as ckpt:
            for mode, sup in (
                ("checkpointed", SupervisorConfig(checkpoint_dir=ckpt)),
                (
                    "resumed",
                    SupervisorConfig(checkpoint_dir=ckpt, resume=True),
                ),
            ):
                report = supervised_run(
                    plan, dataset, num_workers=8, supervisor=sup
                )
                assert sorted(report.skyline.ids) == sorted(
                    bare.skyline.ids
                )
                table.add(
                    plan=plan,
                    mode=mode,
                    total_s=round(report.total_seconds, 4),
                    phase1_s=round(report.phase1_seconds, 4),
                    merge_s=round(report.merge_seconds, 4),
                    skyline=report.skyline_size,
                )
    return table


def test_checkpoint_overhead(benchmark, scale, emit):
    table = once(benchmark, lambda: _run(scale))
    emit(table, "checkpoint_overhead")
