"""Figure 7: effect of load balancing (total time vs |P| and vs d).

Paper shape: the Z-order dominance-grouped system scales smoothly while
Grid/Angle degrade as the dataset grows and especially as dimensionality
rises past ~5; at high d the full ZDG stack wins by multiples.
"""

import os

from conftest import RESULTS_DIR, once

from repro.bench import experiments
from repro.bench.harness import ResultTable
from repro.data.synthetic import generate
from repro.pipeline.driver import run_plan


def _series(table, plan, x_col, y_col="makespan_cost"):
    rows = table.select(plan=plan)
    return dict(zip(rows.column(x_col), rows.column(y_col)))


class TestFig7SizeSweep:
    def test_fig7a_independent(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_size_sweep("independent")
        )
        emit(table, "fig7a")
        zdg = _series(table, "ZDG+ZS+ZM", "size_m")
        grid_sb = _series(table, "Grid+SB", "size_m")
        largest = max(zdg)
        # The full ZDG stack beats the Grid+SB baseline at scale.
        assert zdg[largest] < grid_sb[largest]
        # Work grows with input size for every strategy.
        for plan in experiments.FIG7_PLANS:
            series = _series(table, plan, "size_m")
            assert series[largest] > series[min(series)]

    def test_fig7b_anticorrelated(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_size_sweep("anticorrelated")
        )
        emit(table, "fig7b")
        zdg = _series(table, "ZDG+ZS+ZM", "size_m")
        grid = _series(table, "Grid+ZS", "size_m")
        largest = max(zdg)
        assert zdg[largest] < grid[largest]


class TestFig7DimsSweep:
    def test_fig7c_independent(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_dims_sweep("independent")
        )
        emit(table, "fig7c")
        zdg = _series(table, "ZDG+ZS+ZM", "d")
        grid = _series(table, "Grid+ZS", "d")
        angle = _series(table, "Angle+ZS", "d")
        # The paper's headline: past d ~ 7 the baselines blow up while
        # ZDG grows smoothly — it wins against both at d = 10.
        assert zdg[10] < grid[10]
        assert zdg[10] < angle[10]
        # Grid's cost explodes with dimensionality much faster than ZDG.
        assert grid[10] / grid[2] > zdg[10] / zdg[2]

    def test_fig7d_anticorrelated(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_dims_sweep("anticorrelated")
        )
        emit(table, "fig7d")
        zdg = _series(table, "ZDG+ZS+ZM", "d")
        grid = _series(table, "Grid+ZS", "d")
        assert zdg[10] < grid[10]


class TestFig7RealCoreSeconds:
    """Simulated cost model vs measured core-seconds.

    The sweeps above plot the *simulated* per-worker cost units the
    load balancer optimises.  This run cross-checks that model against
    reality: one fig-7-shaped workload on the process-pool executor,
    whose drain loop stamps every task with its measured CPU time
    (``getrusage`` deltas — valid because each worker process drains
    its queue serially).  The emitted table puts abstract cost units
    and real core-seconds side by side.
    """

    def test_core_seconds_recorded_per_task(self, benchmark, emit):
        dataset = generate("independent", 20_000, 8, seed=7)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        report = once(
            benchmark,
            lambda: run_plan(
                "ZDG+ZS+ZM",
                dataset,
                num_groups=16,
                num_workers=4,
                num_input_splits=8,
                seed=7,
                executor="procpool",
                # Live observation (the per-task CPU histogram) is only
                # collected when observability is on.
                metrics_out=os.path.join(
                    RESULTS_DIR, "fig7e_metrics.jsonl"
                ),
            ),
        )
        metrics = report.metrics()
        cpu = metrics.histogram("cluster.task_cpu_seconds")
        wall = metrics.histogram("cluster.task_seconds")
        # Every pooled task is stamped, pairwise with its wall sample.
        assert cpu, "procpool run recorded no per-task CPU seconds"
        assert len(cpu) == len(wall)
        assert all(sample >= 0.0 for sample in cpu)
        assert sum(cpu) > 0.0
        ledgers = report.phase1.reduce_metrics.active_ledgers()
        table = ResultTable(
            "fig7e: simulated cost vs measured core-seconds",
            ["quantity", "value"],
        )
        table.add(quantity="tasks", value=len(cpu))
        table.add(
            quantity="simulated_cost_units",
            value=sum(w.cost_units for w in ledgers),
        )
        table.add(
            quantity="simulated_makespan_cost",
            value=report.phase1_makespan_cost,
        )
        table.add(
            quantity="wall_seconds_total", value=round(sum(wall), 4)
        )
        table.add(
            quantity="core_seconds_total", value=round(sum(cpu), 4)
        )
        table.add(
            quantity="cpu_per_wall",
            value=round(sum(cpu) / max(sum(wall), 1e-9), 3),
        )
        emit(table, "fig7e")
