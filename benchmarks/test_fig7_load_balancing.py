"""Figure 7: effect of load balancing (total time vs |P| and vs d).

Paper shape: the Z-order dominance-grouped system scales smoothly while
Grid/Angle degrade as the dataset grows and especially as dimensionality
rises past ~5; at high d the full ZDG stack wins by multiples.
"""

from conftest import once

from repro.bench import experiments


def _series(table, plan, x_col, y_col="makespan_cost"):
    rows = table.select(plan=plan)
    return dict(zip(rows.column(x_col), rows.column(y_col)))


class TestFig7SizeSweep:
    def test_fig7a_independent(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_size_sweep("independent")
        )
        emit(table, "fig7a")
        zdg = _series(table, "ZDG+ZS+ZM", "size_m")
        grid_sb = _series(table, "Grid+SB", "size_m")
        largest = max(zdg)
        # The full ZDG stack beats the Grid+SB baseline at scale.
        assert zdg[largest] < grid_sb[largest]
        # Work grows with input size for every strategy.
        for plan in experiments.FIG7_PLANS:
            series = _series(table, plan, "size_m")
            assert series[largest] > series[min(series)]

    def test_fig7b_anticorrelated(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_size_sweep("anticorrelated")
        )
        emit(table, "fig7b")
        zdg = _series(table, "ZDG+ZS+ZM", "size_m")
        grid = _series(table, "Grid+ZS", "size_m")
        largest = max(zdg)
        assert zdg[largest] < grid[largest]


class TestFig7DimsSweep:
    def test_fig7c_independent(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_dims_sweep("independent")
        )
        emit(table, "fig7c")
        zdg = _series(table, "ZDG+ZS+ZM", "d")
        grid = _series(table, "Grid+ZS", "d")
        angle = _series(table, "Angle+ZS", "d")
        # The paper's headline: past d ~ 7 the baselines blow up while
        # ZDG grows smoothly — it wins against both at d = 10.
        assert zdg[10] < grid[10]
        assert zdg[10] < angle[10]
        # Grid's cost explodes with dimensionality much faster than ZDG.
        assert grid[10] / grid[2] > zdg[10] / zdg[2]

    def test_fig7d_anticorrelated(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig7_dims_sweep("anticorrelated")
        )
        emit(table, "fig7d")
        zdg = _series(table, "ZDG+ZS+ZM", "d")
        grid = _series(table, "Grid+ZS", "d")
        assert zdg[10] < grid[10]
