"""Perf smoke for the streaming layer (``repro.streaming``).

One guarded end-to-end measurement, written to ``BENCH_streaming.json``:
a CDC feed sustains **>= 1k records/s** of windowed ingest while
push-notification latency (publish -> subscriber receipt) holds
**p99 <= 50ms** and concurrent cached reads stay available — the
serving SLO the subsystem was built around.  The diff stream is also
re-checked for soundness (replay reconstructs the final skyline
id-set) so a fast-but-wrong run cannot pass.

Absolute numbers are host-dependent; the thresholds are deliberately
loose for CI boxes — local runs land far inside them.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.serving import DatasetRegistry, DriftPolicy, Query, SkylineService
from repro.streaming import (
    ContinuousQueryManager,
    FeedConfig,
    IngestFeed,
    SubscriptionHub,
    WindowSpec,
    replay,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_streaming.json")

#: sustained windowed ingest floor, records/second
MIN_INGEST_PER_SEC = 1_000.0
#: publish -> notify latency ceiling at p99, seconds
MAX_NOTIFY_P99_SECONDS = 0.050
#: concurrent cached reads must succeed at least this often
MIN_READ_SUCCESS = 0.99

RECORDS = 4_000
BATCH = 64
WINDOW = 2_000
DIMS = 5
BITS = 8


def _read_recorded() -> Dict:
    if not os.path.exists(BENCH_PATH):
        return {}
    with open(BENCH_PATH, "r") as handle:
        return json.load(handle)


def _update_bench(section: str, payload: Dict) -> None:
    recorded = _read_recorded()
    recorded[section] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(recorded, handle, indent=1, sort_keys=True)
        handle.write("\n")


class TestStreamingSLO:
    def test_ingest_throughput_with_p99_notify_latency(self):
        rng = np.random.default_rng(31)
        seed_points = rng.integers(
            0, 2**BITS, size=(1_000, DIMS)
        ).astype(np.float64)
        metrics = MetricsRegistry()
        registry = DatasetRegistry(metrics=metrics, keep_versions=4)
        registry.register("stream", seed_points, drift=DriftPolicy.never())
        hub = SubscriptionHub(metrics=metrics).attach(registry)
        manager = ContinuousQueryManager(metrics=metrics).attach(registry)
        manager.register("windowed", "stream", WindowSpec.count(WINDOW))

        stop = threading.Event()
        latencies: List[float] = []
        lock = threading.Lock()

        def consume(sub):
            while True:
                event = sub.get(timeout=0.2)
                if event is None:
                    if stop.is_set() and sub.pending == 0:
                        return
                    continue
                if event.published_at:
                    sample = time.perf_counter() - event.published_at
                    with lock:
                        latencies.append(sample)

        reads = {"ok": 0, "failed": 0, "cached": 0}

        def read_loop(service):
            while not stop.is_set():
                try:
                    result = service.query(Query.full("stream"))
                    reads["ok"] += 1
                    if result.cached:
                        reads["cached"] += 1
                except Exception:
                    reads["failed"] += 1
                time.sleep(0.002)

        with SkylineService(registry, metrics=metrics) as service:
            fast = hub.subscribe("stream")
            slow = hub.subscribe("stream", max_pending=1)
            threads = [
                threading.Thread(target=consume, args=(fast,), daemon=True),
                threading.Thread(
                    target=read_loop, args=(service,), daemon=True
                ),
            ]
            for thread in threads:
                thread.start()
            feed = IngestFeed(
                registry,
                "stream",
                admission=service.admission,
                config=FeedConfig(batch_size=BATCH, on_overload="block"),
                window=WindowSpec.count(WINDOW),
                metrics=metrics,
            )
            stream_rows = rng.integers(
                0, 2**BITS, size=(RECORDS, DIMS)
            ).astype(np.float64)
            started = time.perf_counter()
            for row in stream_rows:
                feed.append(row)
            feed.flush()
            ingest_seconds = time.perf_counter() - started
            stop.set()
            for thread in threads:
                thread.join(10.0)

        # Soundness before speed: the coalescing subscriber's surviving
        # event stream must still reconstruct the final skyline.
        final_sky = frozenset(
            int(i) for i in registry.snapshot("stream").sky_ids
        )
        events = []
        while True:
            event = slow.get(timeout=0.01)
            if event is None:
                break
            events.append(event)
        got, _ = replay(events, slow.start_sky_ids, slow.start_version)
        assert got == final_sky, "coalesced diff replay diverged"

        ingest_rate = RECORDS / ingest_seconds
        with lock:
            samples = sorted(latencies)
        assert samples, "no notifications were observed"
        p50 = samples[int(0.50 * (len(samples) - 1))]
        p99 = samples[int(0.99 * (len(samples) - 1))]
        total_reads = reads["ok"] + reads["failed"]
        read_success = reads["ok"] / total_reads if total_reads else 0.0
        counters = metrics.counters_as_dict().get("streaming", {})

        payload = {
            "records": RECORDS,
            "batch_size": BATCH,
            "window": WINDOW,
            "ingest_seconds": round(ingest_seconds, 4),
            "ingest_records_per_sec": round(ingest_rate, 1),
            "notify_p50_ms": round(p50 * 1e3, 3),
            "notify_p99_ms": round(p99 * 1e3, 3),
            "notifications": len(samples),
            "diffs_published": counters.get("diffs_published", 0),
            "diffs_coalesced": counters.get("diffs_coalesced", 0),
            "concurrent_reads": total_reads,
            "concurrent_read_success": round(read_success, 4),
            "concurrent_reads_cached": reads["cached"],
            "expired_records": feed.records_expired,
            "replay_sound": True,
            "min_ingest_per_sec": MIN_INGEST_PER_SEC,
            "max_notify_p99_ms": MAX_NOTIFY_P99_SECONDS * 1e3,
        }
        _update_bench("streaming_slo", payload)

        assert ingest_rate >= MIN_INGEST_PER_SEC, (
            f"sustained ingest {ingest_rate:.1f} records/s is below the "
            f"{MIN_INGEST_PER_SEC:.0f}/s floor"
        )
        assert p99 <= MAX_NOTIFY_P99_SECONDS, (
            f"publish->notify p99 {p99 * 1e3:.2f}ms exceeds "
            f"{MAX_NOTIFY_P99_SECONDS * 1e3:.0f}ms"
        )
        assert total_reads > 0 and read_success >= MIN_READ_SUCCESS, (
            f"concurrent reads degraded: {read_success:.4f} success "
            f"over {total_reads}"
        )
        assert reads["cached"] > 0, "cache never hit during ingest"
