"""Figure 11 (inferred; §6.5 references the real-world datasets): the
NUS-WIDE-like (225-D), GIST-like (512-D) and LDA-like (250-D) simulators
under the paper's scale-factor protocol s in [5, 25].

Expected shape: at hundreds of dimensions nearly every point is
incomparable, the merge phase dominates completely, and the Z-merge
system beats the Grid baseline on every dataset.
"""

from conftest import once

from repro.bench import experiments


class TestFig11:
    def test_realworld_datasets(self, benchmark, scale, emit):
        table = once(benchmark, experiments.fig11_realworld)
        emit(table, "fig11")
        datasets = sorted(set(table.column("dataset")))
        assert len(datasets) == 3
        top_s = max(table.column("s"))
        for dataset in datasets:
            zdg = table.select(
                dataset=dataset, plan="ZDG+ZS+ZM", s=top_s
            ).column("makespan_cost")[0]
            grid = table.select(
                dataset=dataset, plan="Grid+ZS", s=top_s
            ).column("makespan_cost")[0]
            assert zdg < grid, dataset

    def test_scale_factor_grows_work(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig11_realworld(
                plans=("ZDG+ZS+ZM",), scale_factors=(5, 25)
            ),
        )
        emit(table, "fig11_scale_factor")
        for dataset in sorted(set(table.column("dataset"))):
            rows = table.select(dataset=dataset, plan="ZDG+ZS+ZM")
            by_s = dict(zip(rows.column("s"), rows.column("makespan_cost")))
            assert by_s[25] > by_s[5]
