"""Figure 13: effect of the data sampling ratio (0.5%..4%).

Paper shape: ZDG always has the fewest candidates among the Z-order
strategies and its candidate count is the most stable across sampling
ratios (the dominance-volume objective does not depend on sample size
the way raw skyline counts do); ZDG pays the highest preprocessing cost
(Naive-Z < ZHG < ZDG) but wins it back downstream.
"""

from conftest import once

from repro.bench import experiments


def _series(table, plan, y_col):
    rows = table.select(plan=plan)
    return dict(zip(rows.column("ratio"), rows.column(y_col)))


def _relative_spread(series):
    values = list(series.values())
    return (max(values) - min(values)) / max(max(values), 1)


class TestFig13:
    def test_sampling_ratio_sweep(self, benchmark, scale, emit):
        table = once(benchmark, experiments.fig13_sampling)
        emit(table, "fig13")

        # More sample -> better prefilter -> fewer candidates, for every
        # Z-order strategy.
        for plan in experiments.FIG13_PLANS:
            series = _series(table, plan, "candidates")
            assert series[0.04] <= series[0.005]

        # ZDG preprocessing costs the most (60/120/150s in the paper).
        naive_pre = _series(table, "Naive-Z+ZS", "preprocess_s")
        zdg_pre = _series(table, "ZDG+ZS+ZM", "preprocess_s")
        assert sum(zdg_pre.values()) > sum(naive_pre.values())

    def test_zdg_candidates_most_stable(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig13_sampling(ratios=(0.005, 0.04)),
        )
        emit(table, "fig13_stability")
        zdg_spread = _relative_spread(
            _series(table, "ZDG+ZS+ZM", "candidates")
        )
        naive_spread = _relative_spread(
            _series(table, "Naive-Z+ZS", "candidates")
        )
        # ZDG's candidate volume is no more sample-sensitive than
        # Naive-Z's (the paper reports it as the most stable).
        assert zdg_spread <= naive_spread + 0.10
