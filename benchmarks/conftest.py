"""Shared helpers for the figure benchmarks.

Run with ``pytest benchmarks/ --benchmark-only``.  Workload sizes scale
with the ``REPRO_BENCH_SCALE`` env var (default 0.2; 1.0 = the full
paper-mapped sizes — see repro.bench.harness).  Each benchmark prints
its figure's table (visible with ``-s`` or on failure) and writes it as
CSV under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import BenchScale, ResultTable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return BenchScale.from_env()


@pytest.fixture
def emit():
    """Print a ResultTable and persist it as CSV."""

    def _emit(table: ResultTable, name: str) -> None:
        print()
        print(table.render())
        os.makedirs(RESULTS_DIR, exist_ok=True)
        table.to_csv(os.path.join(RESULTS_DIR, f"{name}.csv"))

    return _emit


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
