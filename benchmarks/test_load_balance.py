"""§6.2's underlying mechanism, measured directly: per-reducer work skew
and straggler makespan per partitioning strategy, plus straggler fault
injection on the simulated cluster.
"""

from conftest import once

from repro.bench import experiments
from repro.bench.harness import run_plan_measured
from repro.data.synthetic import anticorrelated


class TestLoadBalance:
    def test_grouping_tames_stragglers(self, benchmark, scale, emit):
        table = once(benchmark, experiments.load_balance_metrics)
        emit(table, "load_balance")
        rows = {r["plan"]: r for r in table.rows}
        # Grouped strategies keep reducer skew moderate.
        assert rows["ZDG+ZS"]["reducer_skew"] < 3.0
        # And their phase-1 straggler (makespan) is no worse than the
        # ungrouped Grid baseline by more than 2x.
        assert (
            rows["ZDG+ZS"]["phase1_makespan"]
            < rows["Grid+ZS"]["phase1_makespan"] * 2
        )

    def test_straggler_injection_shows_in_wall_makespan(
        self, benchmark, scale
    ):
        ds = anticorrelated(scale.size(10), 5, seed=3)

        def run_with_straggler():
            base = run_plan_measured(
                "ZDG+ZS+ZM", ds, num_workers=4, seed=0
            )
            slowed = run_plan_measured(
                "ZDG+ZS+ZM", ds, num_workers=4, seed=0,
                slowdown_factors=[25.0, 1.0, 1.0, 1.0],
            )
            return base, slowed

        base, slowed = benchmark.pedantic(
            run_with_straggler, rounds=1, iterations=1
        )
        assert (
            slowed.phase1.map_metrics.makespan_seconds
            > base.phase1.map_metrics.makespan_seconds
        )
        # Abstract cost is unaffected by the injected fault: the cost
        # model isolates algorithmic skew from environmental stragglers.
        assert (
            slowed.phase1.map_metrics.makespan_cost
            == base.phase1.map_metrics.makespan_cost
        )
