"""Multicore scaling smoke for the process-pool executor.

Runs one fig-12-shaped workload (independent, d=8 — squarely in the
paper's high-dimensional regime) end to end under
``executor="procpool"`` with 1 worker and with 4 workers, and writes
the measurements to ``BENCH_procpool.json`` at the repo root (a CI
artifact).

Guards:

* the 4-worker skyline is **bit-identical** to the 1-worker skyline —
  always enforced, on any host;
* the 4-worker run is at least **1.8x** faster in wall clock than the
  1-worker run — enforced only when the host actually has >= 4 usable
  cores (a speedup gate on a 1-core container measures the scheduler,
  not the executor; the JSON records ``available_cpus`` so the artifact
  is honest about which case it captured).

The two runs share every plan knob except ``num_workers`` — including
``num_input_splits``, so the 1-worker run is not handicapped with a
different map-task granularity.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import numpy as np
import pytest

from repro.data.synthetic import generate
from repro.pipeline.driver import run_plan

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_procpool.json")

#: minimum wall-clock speedup of 4 workers over 1 (on >= 4 real cores)
MIN_SPEEDUP = 1.8
#: cores the speedup gate needs before it is meaningful
GATE_CORES = 4

WORKLOAD = dict(
    plan="ZDG+ZS+ZMP",
    dist="independent",
    n=40_000,
    d=8,
    num_groups=16,
    num_input_splits=8,
    seed=3,
)

#: best-of-N wall clock per configuration (damps transient host load)
REPEATS = 2


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run(dataset, workers: int) -> Dict[str, object]:
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = run_plan(
            WORKLOAD["plan"],
            dataset,
            num_groups=WORKLOAD["num_groups"],
            num_workers=workers,
            num_input_splits=WORKLOAD["num_input_splits"],
            seed=WORKLOAD["seed"],
            executor="procpool",
        )
        best = min(best, time.perf_counter() - start)
    return {
        "workers": workers,
        "seconds": round(best, 4),
        "skyline": int(report.skyline.size),
        "report": report,
    }


@pytest.fixture(scope="module")
def measurements():
    dataset = generate(
        WORKLOAD["dist"], WORKLOAD["n"], WORKLOAD["d"],
        seed=WORKLOAD["seed"],
    )
    runs = {workers: _run(dataset, workers) for workers in (1, GATE_CORES)}
    single, pooled = runs[1], runs[GATE_CORES]
    cpus = _available_cpus()
    payload = {
        "workload": dict(WORKLOAD),
        "available_cpus": cpus,
        "repeats": REPEATS,
        "runs": [
            {k: v for k, v in run.items() if k != "report"}
            for run in (single, pooled)
        ],
        "speedup": round(single["seconds"] / pooled["seconds"], 3),
        "gate": {
            "min_speedup": MIN_SPEEDUP,
            "enforced": cpus >= GATE_CORES,
        },
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return runs, payload


class TestProcpoolScaling:
    def test_skylines_bit_identical_across_worker_counts(
        self, measurements
    ):
        runs, _ = measurements
        a = runs[1]["report"].skyline
        b = runs[GATE_CORES]["report"].skyline
        assert sorted(a.ids.tolist()) == sorted(b.ids.tolist())
        assert np.array_equal(
            a.points[np.argsort(a.ids)], b.points[np.argsort(b.ids)]
        )

    def test_four_workers_beat_one(self, measurements):
        _, payload = measurements
        if not payload["gate"]["enforced"]:
            pytest.skip(
                f"speedup gate needs >= {GATE_CORES} usable cores, "
                f"this host has {payload['available_cpus']} "
                f"(measured speedup {payload['speedup']}x is recorded "
                f"in BENCH_procpool.json)"
            )
        assert payload["speedup"] >= MIN_SPEEDUP, (
            f"4-worker run only {payload['speedup']}x faster than "
            f"1-worker (need >= {MIN_SPEEDUP}x); see BENCH_procpool.json"
        )
