"""Perf smoke for the serving layer (``repro.serving``).

Two guarded measurements, written to ``BENCH_serving.json``:

* **cache speedup** — a repeated-query read workload against the same
  snapshot must run at least **5x** faster with the version-keyed
  result cache than with caching disabled (identical answers, checked
  bit-for-bit before the timing means anything);
* **admission control** — under a read flood with one worker, p99
  queue wait with a bounded queue must stay far below the
  unbounded-queue control run (shed-fast beats wait-forever).

Absolute seconds are host-dependent; both guards are self-relative
ratios measured on the same host in the same process.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import Future
from typing import Dict, List

import numpy as np

from repro.core.exceptions import OverloadedError
from repro.serving import (
    AdmissionConfig,
    DatasetRegistry,
    Query,
    ServiceConfig,
    SkylineService,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")

#: minimum cached-vs-uncached read throughput ratio
MIN_CACHE_SPEEDUP = 5.0
#: bounded p99 queue wait must be at most this fraction of unbounded
MAX_BOUNDED_WAIT_FRACTION = 1.0 / 3.0


def _read_recorded() -> Dict:
    if not os.path.exists(BENCH_PATH):
        return {}
    with open(BENCH_PATH, "r") as handle:
        return json.load(handle)


def _update_bench(section: str, payload: Dict) -> None:
    recorded = _read_recorded()
    recorded[section] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(recorded, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _registry(n: int = 2500, d: int = 5, seed: int = 21) -> DatasetRegistry:
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 256, size=(n, d)).astype(np.float64)
    registry = DatasetRegistry()
    registry.register("bench", points)
    return registry


#: the repeated-query rotation (what a dashboard refresh looks like)
QUERY_POOL = (
    Query.full("bench"),
    Query.subspace("bench", [0, 1, 2]),
    Query.subspace("bench", [1, 3]),
    Query.kdominant("bench", 4),
    Query.topk("bench", 8, method="sum"),
    Query.topk("bench", 4, method="dominance"),
)


class TestCacheSpeedup:
    def test_version_keyed_cache_delivers_5x_reads(self):
        rounds = 30
        registry = _registry()

        def run_reads(cache_entries: int):
            config = ServiceConfig(cache_entries=cache_entries)
            with SkylineService(registry, config=config) as service:
                # Warm both variants identically (first round pays the
                # compute either way; the cached variant then hits).
                answers = [service.query(q) for q in QUERY_POOL]
                start = time.perf_counter()
                for _ in range(rounds):
                    for query in QUERY_POOL:
                        service.query(query)
                elapsed = time.perf_counter() - start
            return answers, elapsed

        cached_answers, cached_s = run_reads(cache_entries=256)
        uncached_answers, uncached_s = run_reads(cache_entries=0)

        # Identical answers first — a fast wrong cache is worthless.
        for warm, cold in zip(cached_answers, uncached_answers):
            assert np.array_equal(warm.ids, cold.ids)
            assert np.array_equal(warm.points, cold.points)

        reads = rounds * len(QUERY_POOL)
        speedup = uncached_s / cached_s
        payload = {
            "reads": reads,
            "distinct_queries": len(QUERY_POOL),
            "cached_seconds": round(cached_s, 4),
            "uncached_seconds": round(uncached_s, 4),
            "cached_reads_per_s": round(reads / cached_s),
            "uncached_reads_per_s": round(reads / uncached_s),
            "speedup": round(speedup, 2),
        }
        _update_bench("cache_speedup", payload)
        assert speedup >= MIN_CACHE_SPEEDUP, (
            f"cache delivers only {speedup:.2f}x read throughput "
            f"(need >= {MIN_CACHE_SPEEDUP}x)"
        )


class TestAdmissionControl:
    def _flood(self, max_read_queue: int, flood: int):
        """Submit a read flood against one slow worker; return the
        queue waits of completed requests + the shed count."""
        registry = _registry(n=1500)
        config = ServiceConfig(
            admission=AdmissionConfig(
                read_concurrency=1, max_read_queue=max_read_queue
            ),
            cache_entries=0,  # every request pays full compute
        )
        waits: List[float] = []
        shed = 0
        with SkylineService(registry, config=config) as service:
            futures: List[Future] = []
            for _ in range(flood):
                try:
                    futures.append(
                        service.submit(Query.kdominant("bench", 4))
                    )
                except OverloadedError:
                    shed += 1
            for future in futures:
                waits.append(future.result().queue_wait_seconds)
        return waits, shed

    def test_bounded_queue_bounds_p99_wait(self):
        flood = 150
        bounded_waits, bounded_shed = self._flood(
            max_read_queue=8, flood=flood
        )
        unbounded_waits, unbounded_shed = self._flood(
            max_read_queue=10**9, flood=flood
        )
        assert unbounded_shed == 0  # the control run queues everything
        assert bounded_shed > 0  # admission control actually shed load

        bounded_p99 = float(np.percentile(bounded_waits, 99))
        unbounded_p99 = float(np.percentile(unbounded_waits, 99))
        payload = {
            "flood_requests": flood,
            "bounded": {
                "max_read_queue": 8,
                "completed": len(bounded_waits),
                "shed": bounded_shed,
                "p50_wait_s": round(
                    float(np.percentile(bounded_waits, 50)), 4
                ),
                "p99_wait_s": round(bounded_p99, 4),
            },
            "unbounded_control": {
                "completed": len(unbounded_waits),
                "shed": unbounded_shed,
                "p50_wait_s": round(
                    float(np.percentile(unbounded_waits, 50)), 4
                ),
                "p99_wait_s": round(unbounded_p99, 4),
            },
            "p99_ratio": round(bounded_p99 / unbounded_p99, 4),
        }
        _update_bench("admission_control", payload)
        assert bounded_p99 <= unbounded_p99 * MAX_BOUNDED_WAIT_FRACTION, (
            f"bounded p99 wait {bounded_p99:.4f}s is not well below the "
            f"unbounded control's {unbounded_p99:.4f}s"
        )
