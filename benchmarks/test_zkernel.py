"""Perf smoke for the vectorized Z-kernel (``repro.zorder.kernel``).

Measures encode/decode throughput of both kernel paths against an
in-process scalar reference (the per-row Python-int implementation the
kernel replaced), plus end-to-end wall clock on two fig-9-shaped
pipeline workloads, and writes everything to ``BENCH_zkernel.json`` at
the repo root (a CI artifact).

Guards:

* the kernel must deliver at least a **5x** combined encode+decode
  speedup over the scalar reference on both the fast (d=4, 16 bits) and
  wide (d=8, 16 bits) workloads;
* measured against the *committed* ``BENCH_zkernel.json``, the current
  speedup ratio may not regress by more than **20%** (ratios compare a
  machine against itself, so the guard is host-independent);
* the end-to-end runs must reproduce their recorded skyline sizes
  exactly (the cheap bit-identity canary).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.data.synthetic import generate
from repro.pipeline.driver import run_plan
from repro.zorder.kernel import ZKernel

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_zkernel.json")

#: minimum kernel-vs-scalar-reference speedup (encode+decode combined)
MIN_SPEEDUP = 5.0
#: largest tolerated relative drop vs the recorded speedup ratio
MAX_REGRESSION = 0.20


# ----------------------------------------------------------------------
# scalar reference (the implementation the kernel replaced)
# ----------------------------------------------------------------------
def _reference_encode(grid: np.ndarray, bits: int) -> List[int]:
    out = []
    for row in grid:
        z = 0
        for level in range(bits - 1, -1, -1):
            for value in row:
                z = (z << 1) | ((int(value) >> level) & 1)
        out.append(z)
    return out


def _reference_decode(zs: List[int], d: int, bits: int) -> np.ndarray:
    out = np.empty((len(zs), d), dtype=np.uint32)
    for i, z in enumerate(zs):
        z = int(z)
        vals = [0] * d
        for level in range(bits):
            for k in range(d - 1, -1, -1):
                vals[k] |= (z & 1) << level
                z >>= 1
        out[i] = vals
    return out


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; return its result and the *best*
    elapsed time (min-of-N damps transient host-load spikes, which
    matters for the ratio guards on shared CI runners)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _read_recorded() -> Dict:
    if not os.path.exists(BENCH_PATH):
        return {}
    with open(BENCH_PATH, "r") as handle:
        return json.load(handle)


def _update_bench(section: str, payload: Dict) -> None:
    recorded = _read_recorded()
    recorded[section] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(recorded, handle, indent=1, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# encode/decode micro-benchmark
# ----------------------------------------------------------------------
WORKLOADS = (
    # (key, dimensions, bits_per_dim, kernel rows, reference rows)
    ("fast_d4_b16", 4, 16, 200_000, 5_000),
    ("wide_d8_b16", 8, 16, 100_000, 5_000),
)


class TestEncodeDecodeThroughput:
    def test_kernel_beats_scalar_reference(self):
        recorded = _read_recorded().get("encode_decode", {})
        results: Dict[str, Dict] = {}
        for key, d, bits, n_kernel, n_ref in WORKLOADS:
            rng = np.random.default_rng(17)
            grid = rng.integers(0, 1 << bits, size=(n_kernel, d)).astype(
                np.int64
            )
            kernel = ZKernel(d, bits)
            assert kernel.fast_path == (d * bits <= 64)

            zbatch, enc_s = _timed(lambda: kernel.interleave(grid), repeats=3)
            _, dec_s = _timed(lambda: kernel.deinterleave(zbatch), repeats=3)

            sample = grid[:n_ref]
            ref_zs, ref_enc_s = _timed(
                lambda: _reference_encode(sample, bits), repeats=3
            )
            ref_grid, ref_dec_s = _timed(
                lambda: _reference_decode(ref_zs, d, bits), repeats=3
            )
            # The reference must agree with the kernel before its
            # timing means anything.
            assert kernel.to_int_list(zbatch[:n_ref]) == ref_zs
            assert np.array_equal(ref_grid.astype(np.int64), sample)

            kernel_rps = 2.0 * n_kernel / (enc_s + dec_s)
            ref_rps = 2.0 * n_ref / (ref_enc_s + ref_dec_s)
            speedup = kernel_rps / ref_rps
            results[key] = {
                "dimensions": d,
                "bits_per_dim": bits,
                "path": "fast" if kernel.fast_path else "wide",
                "rows_kernel": n_kernel,
                "rows_reference": n_ref,
                "kernel_encode_rows_per_s": round(n_kernel / enc_s),
                "kernel_decode_rows_per_s": round(n_kernel / dec_s),
                "reference_encode_rows_per_s": round(n_ref / ref_enc_s),
                "reference_decode_rows_per_s": round(n_ref / ref_dec_s),
                "speedup_encode_decode": round(speedup, 2),
            }
        _update_bench("encode_decode", results)

        for key, entry in results.items():
            speedup = entry["speedup_encode_decode"]
            assert speedup >= MIN_SPEEDUP, (
                f"{key}: kernel is only {speedup:.2f}x faster than the "
                f"scalar reference (need >= {MIN_SPEEDUP}x)"
            )
            prior = recorded.get(key, {}).get("speedup_encode_decode")
            if prior:
                floor = prior * (1.0 - MAX_REGRESSION)
                assert speedup >= floor, (
                    f"{key}: speedup regressed to {speedup:.2f}x from the "
                    f"recorded {prior:.2f}x (floor {floor:.2f}x)"
                )


# ----------------------------------------------------------------------
# end-to-end fig-9-shaped pipeline workloads
# ----------------------------------------------------------------------
E2E_WORKLOADS = (
    # (key, plan, distribution, n, d, expected skyline size)
    ("zdg_zs_zm_40k_d6_independent", "ZDG+ZS+ZM", "independent", 40_000, 6, 1701),
    (
        "naivez_zs_zm_20k_d4_anticorrelated",
        "Naive-Z+ZS+ZM",
        "anticorrelated",
        20_000,
        4,
        894,
    ),
)

#: pre-kernel wall clock on the reference host (seconds), for the PR's
#: before/after quote; absolute seconds are host-dependent, so these
#: are recorded rather than asserted — except for the keys in
#: E2E_GATED, which must stay at or below their baseline.
E2E_BASELINE_SECONDS = {
    "zdg_zs_zm_40k_d6_independent": 1.78,
    "naivez_zs_zm_20k_d4_anticorrelated": 0.99,
}

#: workloads whose measured seconds are asserted against the baseline.
#: The d=6 wide-path run regressed past its pre-kernel baseline once
#: (1.78s -> 1.89s); the batched dominance-test work brought it well
#: under, and this gate keeps it there.
E2E_GATED = frozenset({"zdg_zs_zm_40k_d6_independent"})


class TestEndToEnd:
    @pytest.mark.parametrize(
        "key,plan,dist,n,d,expected_skyline", E2E_WORKLOADS
    )
    def test_pipeline_wall_clock(self, key, plan, dist, n, d, expected_skyline):
        dataset = generate(dist, n, d, seed=3)
        report, seconds = _timed(
            lambda: run_plan(plan, dataset, seed=3), repeats=2
        )
        # Skyline cardinality is deterministic: a mismatch means the
        # kernel changed results, not just speed.
        assert report.skyline.ids.shape[0] == expected_skyline
        recorded = _read_recorded().get("end_to_end", {})
        recorded[key] = {
            "plan": plan,
            "distribution": dist,
            "n": n,
            "d": d,
            "skyline": int(report.skyline.ids.shape[0]),
            "seconds": round(seconds, 3),
            "baseline_seconds": E2E_BASELINE_SECONDS[key],
        }
        _update_bench("end_to_end", recorded)
        if key in E2E_GATED:
            baseline = E2E_BASELINE_SECONDS[key]
            assert seconds <= baseline, (
                f"{key}: end-to-end wall clock {seconds:.3f}s exceeds its "
                f"{baseline:.2f}s baseline (wide-path regression gate)"
            )
