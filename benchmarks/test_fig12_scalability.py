"""Figure 12: scalability of the full system against MR-GPMRS, Angle+ZS
and Grid+ZS as the dataset grows.

Paper shape: the baselines' cost grows quadratically with |P| (the
incomparable-pair count), ZDG+ZM grows smoothly, and at the largest
size ZDG+ZM wins against MR-GPMRS and Grid (reported 5x/10x on the
authors' cluster).  We run at d=8, squarely in the high-dimensional
regime the paper targets.
"""

from conftest import once

from repro.bench import experiments


def _series(table, plan):
    rows = table.select(plan=plan)
    return dict(zip(rows.column("size_m"), rows.column("makespan_cost")))


def _series_total(table, plan):
    rows = table.select(plan=plan)
    return dict(zip(rows.column("size_m"), rows.column("total_cost")))


class TestFig12:
    def test_scalability(self, benchmark, scale, emit):
        table = once(benchmark, experiments.fig12_scalability)
        emit(table, "fig12")
        zdg = _series(table, "ZDG+ZS+ZM")
        grid = _series(table, "Grid+ZS")
        angle = _series(table, "Angle+ZS")
        largest = max(zdg)
        smallest = min(zdg)
        # ZDG+ZM beats the single-merge baselines outright.
        assert zdg[largest] < grid[largest]
        assert zdg[largest] < angle[largest]
        # Smooth growth: ZDG's growth factor across the sweep does not
        # exceed the Grid baseline's.
        assert (
            zdg[largest] / zdg[smallest]
            <= grid[largest] / grid[smallest] * 1.5
        )

    def test_gpmrs_does_quadratically_more_work(self, benchmark, scale,
                                                emit):
        # MR-GPMRS spreads its merge over many reducers, so at our
        # scaled-down sizes its *makespan* can look competitive; the
        # paper's claim is about the work curve, and that reproduces:
        # GPMRS's total cost grows much faster than ZDG+ZM's and is a
        # multiple of it at the largest size (see EXPERIMENTS.md).
        table = once(
            benchmark,
            lambda: experiments.fig12_scalability(
                plans=("MR-GPMRS", "ZDG+ZS+ZM")
            ),
        )
        emit(table, "fig12_total_work")
        zdg = _series_total(table, "ZDG+ZS+ZM")
        gpmrs = _series_total(table, "MR-GPMRS")
        largest = max(zdg)
        smallest = min(zdg)
        assert zdg[largest] < gpmrs[largest]
        assert (
            zdg[largest] / zdg[smallest]
            < gpmrs[largest] / gpmrs[smallest]
        )
