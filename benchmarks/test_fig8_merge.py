"""Figure 8: running time of skyline-candidate merging.

Paper shape: Z-merge (ZM) beats merging with a plain skyline algorithm
(SB) by a wide margin and beats ZS; the advantage grows with input size
and dimensionality because index-level region pruning avoids point-level
dominance tests.
"""

from conftest import once

from repro.bench import experiments


def _series(table, plan, x_col, y_col="merge_cost"):
    rows = table.select(plan=plan)
    return dict(zip(rows.column(x_col), rows.column(y_col)))


class TestFig8SizeSweep:
    def test_fig8a_independent(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig8_merge_size_sweep("independent"),
        )
        emit(table, "fig8a")
        zm = _series(table, "ZDG+ZS+ZM", "size_m")
        sb = _series(table, "ZDG+ZS+SB", "size_m")
        zs = _series(table, "ZDG+ZS+ZS", "size_m")
        largest = max(zm)
        # Same candidates, different merge: ZM does the least work.
        assert zm[largest] < sb[largest]
        assert zm[largest] < zs[largest]

    def test_fig8b_anticorrelated(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig8_merge_size_sweep("anticorrelated"),
        )
        emit(table, "fig8b")
        zm = _series(table, "ZDG+ZS+ZM", "size_m")
        sb = _series(table, "ZDG+ZS+SB", "size_m")
        largest = max(zm)
        # The hard case: huge candidate sets; the paper reports >10x.
        assert sb[largest] / zm[largest] > 2.0


class TestFig8DimsSweep:
    def test_fig8c_independent(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig8_merge_dims_sweep("independent"),
        )
        emit(table, "fig8c")
        zm = _series(table, "ZDG+ZS+ZM", "d")
        grid = _series(table, "Grid+ZS+ZS", "d")
        assert zm[10] < grid[10]

    def test_fig8d_anticorrelated(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig8_merge_dims_sweep("anticorrelated"),
        )
        emit(table, "fig8d")
        zm = _series(table, "ZDG+ZS+ZM", "d")
        sb = _series(table, "ZDG+ZS+SB", "d")
        # ZM's advantage grows with dimensionality.
        assert sb[10] / zm[10] >= sb[4] / max(zm[4], 1)
