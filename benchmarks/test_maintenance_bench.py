"""Micro-benchmarks of incremental maintenance vs recomputation."""

import numpy as np
import pytest

from repro.algorithms.zs import zs_skyline
from repro.maintenance import SkylineMaintainer
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter


@pytest.fixture(scope="module")
def stream(scale):
    rng = np.random.default_rng(17)
    n = scale.size(10)
    batch = max(50, n // 20)
    batches = [
        rng.integers(0, 4096, (batch, 4)).astype(float)
        for _ in range(10)
    ]
    return batches


class TestMaintenanceThroughput:
    def test_incremental_inserts(self, benchmark, stream):
        codec = ZGridCodec.grid_identity(4, bits_per_dim=12)

        def run():
            m = SkylineMaintainer(codec)
            next_id = 0
            for batch in stream:
                ids = np.arange(next_id, next_id + batch.shape[0])
                m.insert_block(batch, ids)
                next_id += batch.shape[0]
            return m

        m = benchmark(run)
        assert m.skyline_size > 0

    def test_recompute_from_scratch(self, benchmark, stream):
        codec = ZGridCodec.grid_identity(4, bits_per_dim=12)

        def run():
            seen = []
            last = None
            for batch in stream:
                seen.append(batch)
                allp = np.vstack(seen)
                last, _ = zs_skyline(allp, None, None, codec)
            return last

        last = benchmark(run)
        assert last.shape[0] > 0

    def test_incremental_does_less_dominance_work(self, benchmark, stream):
        codec = ZGridCodec.grid_identity(4, bits_per_dim=12)

        def compare():
            m = SkylineMaintainer(codec)
            next_id = 0
            for batch in stream:
                ids = np.arange(next_id, next_id + batch.shape[0])
                m.insert_block(batch, ids)
                next_id += batch.shape[0]
            incremental_cost = m.counter.total()

            recompute_cost = 0
            seen = []
            for batch in stream:
                seen.append(batch)
                counter = OpCounter()
                zs_skyline(np.vstack(seen), None, counter, codec)
                recompute_cost += counter.total()
            return incremental_cost, recompute_cost

        incremental_cost, recompute_cost = benchmark.pedantic(
            compare, rounds=1, iterations=1
        )
        assert incremental_cost < recompute_cost
