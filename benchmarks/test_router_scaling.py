"""Coordinator scaling smoke: merge cache, shard fan-out, pooled rebuilds.

Measures what this tier's perf work actually bought, and writes the
evidence to ``BENCH_router_scaling.json`` at the repo root (a CI
artifact):

* **cached reads** — repeat full-skyline queries against a 4-shard
  router with the coordinator caches on vs the same router with them
  off (the uncached scatter+Z-merge path).  Gate: cached p90 at least
  ``MIN_CACHED_SPEEDUP``x faster, enforced on any host — a version-keyed
  cache hit costs a dict probe, the miss path re-folds four ZB-trees;
* **shard-count scaling** — aggregate ``replay_workload`` throughput at
  1, 2, and 4 shards.  Gate: 4-shard throughput at least
  ``MIN_SCALING``x the 1-shard run, enforced only with >=
  ``GATE_CORES`` usable cores (scatter parallelism cannot beat a serial
  host);
* **identity** — after an identical mutation stream, every query kind
  at every shard count, cached and uncached, answers bit-identically to
  a single unsharded service (id-sorted canonical arrays).  Always
  enforced;
* **pooled rebuilds** — delete churn against an inline-rebuild registry
  vs one shipping recomputes to a :class:`RebuildPool`.  Gates, always
  enforced: pooled mutation p99 must not exceed inline p99 (the inline
  p99 *contains* a full pipeline recompute; the pooled writer only ever
  pays incremental maintenance), at least one pooled rebuild completes,
  and the final ``state_digest()`` matches the inline registry exactly.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    Mutation,
    Query,
    RebuildConfig,
    RebuildPool,
    RouterConfig,
    ShardedSkylineService,
    SkylineService,
    WorkloadSpec,
    replay_workload,
)
from repro.zorder.encoding import quantize_dataset

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_router_scaling.json")

#: repeat full-query p90: cached path vs cache-disabled path, 4 shards
MIN_CACHED_SPEEDUP = 5.0
#: replay throughput: 4 shards over 1 shard (needs real cores)
MIN_SCALING = 1.5
GATE_CORES = 4

N, D = 4_000, 4
SEED = 17
SHARD_COUNTS = (1, 2, 4)
#: timed repeat reads per cache configuration
READ_REPEATS = 60
#: mutation batches for the rebuild-latency comparison
CHURN_ROUNDS = 30


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _p(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _workload():
    rng = np.random.default_rng(SEED)
    raw = rng.random((N, D))
    snapped, codec = quantize_dataset(
        Dataset(raw, name="bench"), bits_per_dim=10
    )
    ids = np.arange(N, dtype=np.int64)
    return snapped.points, ids, codec


def _query_variants() -> List[Query]:
    return [
        Query.full("ds"),
        Query.subspace("ds", [0, 1]),
        Query.kdominant("ds", D - 1),
        Query.topk("ds", 5, method="sum"),
        Query.topk("ds", 5, method="representative"),
    ]


def _mutation_stream(rounds: int = 12) -> List[Mutation]:
    """A fixed, snapshot-independent mutation sequence every service
    variant can replay identically (inserts of fresh ids, deletes of
    ids known alive by construction)."""
    rng = np.random.default_rng(SEED + 1)
    stream: List[Mutation] = []
    next_id = N
    for i in range(rounds):
        if i % 3 == 2:
            doomed = np.arange(i * 40, i * 40 + 6, dtype=np.int64)
            stream.append(Mutation.delete("ds", doomed))
        else:
            pts = rng.integers(0, 1024, size=(6, D)).astype(np.float64)
            new_ids = np.arange(next_id, next_id + 6, dtype=np.int64)
            next_id += 6
            stream.append(Mutation.insert("ds", pts, new_ids))
    return stream


def _canonical(result) -> tuple:
    ids = np.asarray(result.ids)
    order = np.argsort(ids, kind="stable")
    return (
        ids[order].tolist(),
        np.asarray(result.points)[order].tolist(),
        None if result.scores is None
        else np.asarray(result.scores)[order].tolist(),
    )


def _router(points, ids, codec, shards, caches=True, **kw):
    config = RouterConfig(
        num_shards=shards,
        merge_cache_entries=32 if caches else 0,
        result_cache_entries=256 if caches else 0,
    )
    return ShardedSkylineService(
        "ds", points.copy(), ids=ids.copy(), codec=codec, config=config,
        drift=DriftPolicy.never(), **kw,
    )


def _measure_cached_reads(points, ids, codec) -> Dict[str, object]:
    latencies: Dict[str, List[float]] = {}
    answers: Dict[str, tuple] = {}
    for label, caches in (("cached", True), ("uncached", False)):
        with _router(points, ids, codec, 4, caches=caches) as router:
            router.query(Query.full("ds"))  # warm shard-level state
            samples = []
            for _ in range(READ_REPEATS):
                start = time.perf_counter()
                result = router.query(Query.full("ds"))
                samples.append(time.perf_counter() - start)
            latencies[label] = samples
            answers[label] = _canonical(result)
    assert answers["cached"] == answers["uncached"]
    cached_p90 = _p(latencies["cached"], 90)
    uncached_p90 = _p(latencies["uncached"], 90)
    return {
        "repeats": READ_REPEATS,
        "cached_p90_ms": round(cached_p90 * 1e3, 4),
        "uncached_p90_ms": round(uncached_p90 * 1e3, 4),
        "speedup": round(uncached_p90 / max(cached_p90, 1e-9), 2),
    }


def _measure_identity(points, ids, codec) -> Dict[str, object]:
    stream = _mutation_stream()
    registry = DatasetRegistry(keep_versions=16)
    registry.register(
        "ds", points.copy(), ids=ids.copy(), codec=codec,
        drift=DriftPolicy.never(),
    )
    single = SkylineService(registry)
    for mutation in stream:
        single.mutate(mutation)
    want = [_canonical(single.query(q)) for q in _query_variants()]

    checked = 0
    for shards in SHARD_COUNTS:
        for caches in (True, False):
            with _router(points, ids, codec, shards, caches=caches) as r:
                for mutation in stream:
                    r.mutate(mutation)
                for _ in range(2):  # second pass exercises cache hits
                    got = [_canonical(r.query(q)) for q in _query_variants()]
                    assert got == want, (
                        f"answer mismatch at shards={shards}, "
                        f"caches={caches}"
                    )
                    checked += len(got)
    return {
        "query_kinds": len(_query_variants()),
        "configurations": len(SHARD_COUNTS) * 2,
        "answers_checked": checked,
    }


def _measure_scaling(points, ids, codec) -> Dict[str, object]:
    spec = WorkloadSpec(
        dataset="ds", operations=300, read_fraction=0.9,
        query_pool=6, batch_size=6, seed=SEED,
    )
    throughput: Dict[int, float] = {}
    for shards in SHARD_COUNTS:
        with _router(points, ids, codec, shards) as router:
            report = replay_workload(router, spec)
            assert report.operations == spec.operations
            assert not report.failures, report.failures
            throughput[shards] = report.throughput
    return {
        "operations": spec.operations,
        "read_fraction": spec.read_fraction,
        "throughput_ops_per_second": {
            str(shards): round(value, 1)
            for shards, value in throughput.items()
        },
        "scaling_4_over_1": round(throughput[4] / throughput[1], 3),
    }


def _measure_pooled_rebuilds(points, ids, codec) -> Dict[str, object]:
    drift = DriftPolicy(max_deletes=10)

    def churn(registry) -> List[float]:
        samples = []
        for i in range(CHURN_ROUNDS):
            doomed = list(range(i * 4, i * 4 + 4))
            start = time.perf_counter()
            registry.delete("ds", doomed)
            samples.append(time.perf_counter() - start)
        return samples

    inline = DatasetRegistry()
    inline.register(
        "ds", points.copy(), ids=ids.copy(), codec=codec, drift=drift,
        rebuild=RebuildConfig(),
    )
    inline_lat = churn(inline)
    inline_digest = inline.snapshot("ds").state_digest()

    with RebuildPool(num_workers=2) as pool:
        pooled = DatasetRegistry(rebuild_pool=pool)
        pooled.register(
            "ds", points.copy(), ids=ids.copy(), codec=codec, drift=drift,
            rebuild=RebuildConfig(pooled=True),
        )
        pooled_lat = churn(pooled)
        pooled.flush_rebuilds()
        status = pooled.rebuild_status("ds")
        pooled_digest = pooled.snapshot("ds").state_digest()
        pool_stats = pool.stats()

    return {
        "churn_rounds": CHURN_ROUNDS,
        "inline_mutation_p99_ms": round(_p(inline_lat, 99) * 1e3, 3),
        "pooled_mutation_p99_ms": round(_p(pooled_lat, 99) * 1e3, 3),
        "pooled_rebuilds_completed": status["pooled_rebuilds"],
        "pooled_rebuilds_superseded": status["pooled_superseded"],
        "pool": {
            k: v for k, v in pool_stats.items() if k != "executor"
        },
        "digests_identical": pooled_digest == inline_digest,
    }


@pytest.fixture(scope="module")
def measurements():
    points, ids, codec = _workload()
    cpus = _available_cpus()
    payload = {
        "workload": {"n": N, "d": D, "seed": SEED,
                     "shard_counts": list(SHARD_COUNTS)},
        "available_cpus": cpus,
        "cached_reads": _measure_cached_reads(points, ids, codec),
        "identity": _measure_identity(points, ids, codec),
        "scaling": _measure_scaling(points, ids, codec),
        "pooled_rebuilds": _measure_pooled_rebuilds(points, ids, codec),
        "gates": {
            "min_cached_speedup": MIN_CACHED_SPEEDUP,
            "min_scaling_4_over_1": MIN_SCALING,
            "scaling_enforced": cpus >= GATE_CORES,
        },
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


class TestRouterScaling:
    def test_cached_reads_beat_uncached_p90(self, measurements):
        cached = measurements["cached_reads"]
        assert cached["speedup"] >= MIN_CACHED_SPEEDUP, (
            f"cached full-query p90 only {cached['speedup']}x faster "
            f"than the uncached scatter+merge path "
            f"(need >= {MIN_CACHED_SPEEDUP}x); "
            f"see BENCH_router_scaling.json"
        )

    def test_all_paths_identical_to_single_service(self, measurements):
        identity = measurements["identity"]
        assert identity["answers_checked"] == (
            identity["query_kinds"] * identity["configurations"] * 2
        )

    def test_throughput_scales_with_shards(self, measurements):
        if not measurements["gates"]["scaling_enforced"]:
            pytest.skip(
                f"scaling gate needs >= {GATE_CORES} usable cores, "
                f"this host has {measurements['available_cpus']} "
                f"(measured ratio "
                f"{measurements['scaling']['scaling_4_over_1']}x is "
                f"recorded in BENCH_router_scaling.json)"
            )
        ratio = measurements["scaling"]["scaling_4_over_1"]
        assert ratio >= MIN_SCALING, (
            f"4-shard replay only {ratio}x the 1-shard throughput "
            f"(need >= {MIN_SCALING}x); see BENCH_router_scaling.json"
        )

    def test_pooled_rebuild_latency_and_digest(self, measurements):
        pooled = measurements["pooled_rebuilds"]
        assert pooled["pooled_rebuilds_completed"] >= 1
        assert pooled["digests_identical"]
        assert pooled["pool"]["failed"] == 0
        assert (
            pooled["pooled_mutation_p99_ms"]
            <= pooled["inline_mutation_p99_ms"]
        ), (
            "pooled mutation p99 regressed past the inline path "
            "(which pays the full recompute in the writer thread); "
            "see BENCH_router_scaling.json"
        )
