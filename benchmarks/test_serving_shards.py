"""Chaos smoke for the sharded serving tier (``repro.serving.router``).

Two guarded scenarios, written to ``BENCH_serving_shards.json``:

* **crash + failover** — a 4-shard router loses one shard to a
  scripted crash mid-workload; the seeded mixed workload (with client
  retries) must still answer at least **99%** of non-shed operations,
  and the shard must fail over onto a **bit-identical** replacement
  (``Snapshot.state_digest()`` oracle);
* **terminal loss + certified partial** — a shard with no way back
  (terminal schedule) is crashed under a read-only workload; every
  degraded answer must carry a ``partial`` certificate whose floor
  bounds *verify* against an offline recompute — the served set is
  exactly the alive-union skyline minus the floor-masked uncertain
  rows, and a subset of the true full-data skyline.

Absolute seconds are host-dependent; the gates here are availability,
identity, and certificate soundness, not wall-clock.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.core.skyline import skyline_indices_oracle
from repro.serving import (
    Query,
    RouterConfig,
    ServingFaultPlan,
    ShardedSkylineService,
    WorkloadSpec,
    floor_dominated_mask,
    replay_workload,
)
from repro.zorder.encoding import ZGridCodec

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_serving_shards.json")

#: minimum fraction of non-shed operations that must succeed
MIN_AVAILABILITY = 0.99

D = 5
CELLS = 256
CODEC = ZGridCodec.grid_identity(D, bits_per_dim=8)


def _read_recorded() -> Dict:
    if not os.path.exists(BENCH_PATH):
        return {}
    with open(BENCH_PATH, "r") as handle:
        return json.load(handle)


def _update_bench(section: str, payload: Dict) -> None:
    recorded = _read_recorded()
    recorded[section] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(recorded, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _grid(rng, n: int, d: int = D, cells: int = CELLS) -> np.ndarray:
    return rng.integers(0, cells, size=(n, d)).astype(np.float64)


class TestCrashFailoverAvailability:
    def test_99_percent_availability_with_identical_failover(
        self, tmp_path
    ):
        rng = np.random.default_rng(17)
        points = _grid(rng, 1200)
        ids = np.arange(1200, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=31,
            scripted_shard_crashes={2: 120},
            shard_slow_rate=0.03,
            shard_slow_seconds=0.05,
            heartbeat_loss_rate=0.02,
        )
        config = RouterConfig(
            num_shards=4,
            hedge_after_seconds=0.02,
            breaker_cooldown_seconds=0.02,
            heartbeat_every_ops=25,
            keep_versions=64,
        )
        with ShardedSkylineService(
            "bench",
            points,
            ids=ids,
            codec=CODEC,
            config=config,
            durability_dir=str(tmp_path),
            fault_plan=plan,
        ) as router:
            report = replay_workload(
                router,
                WorkloadSpec(
                    dataset="bench",
                    operations=300,
                    read_fraction=0.85,
                    seed=23,
                    retry_attempts=4,
                    retry_base_delay=0.005,
                ),
            )
            states = router.shard_states()
            crashed = states[2]

        payload = {
            "shards": 4,
            "operations": report.operations,
            "faults": plan.describe(),
            "availability": round(report.availability, 4),
            "retries": report.retries,
            "degraded_partial": report.degraded_partial,
            "degraded_stale": report.degraded_stale,
            "failures": dict(sorted(report.failures.items())),
            "read_p99_ms": round(
                report.latency_percentiles("read")["p99"] * 1e3, 3
            ),
            "failovers": crashed["failovers"],
            "failover_identical": crashed["last_failover_identical"],
        }
        _update_bench("crash_failover", payload)

        assert report.availability >= MIN_AVAILABILITY, (
            f"availability {report.availability:.4f} with 1 of 4 shards "
            f"crashed mid-workload (need >= {MIN_AVAILABILITY}); "
            f"failures: {report.failures}"
        )
        assert not crashed["down"]
        assert crashed["failovers"] >= 1
        assert crashed["last_failover_identical"] is True, (
            "shard 2's WAL-recovered replacement diverged from the "
            "pre-crash snapshot digest"
        )


class TestCertifiedPartialVerification:
    def test_partial_answers_verify_against_offline_recompute(
        self, tmp_path
    ):
        rng = np.random.default_rng(19)
        points = _grid(rng, 1500)
        ids = np.arange(1500, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=37,
            scripted_shard_crashes={1: 40},
            terminal_shards=(1,),
        )
        config = RouterConfig(
            num_shards=4,
            hedge_after_seconds=0.0,
            breaker_cooldown_seconds=0.001,
        )
        with ShardedSkylineService(
            "bench",
            points,
            ids=ids,
            codec=CODEC,
            config=config,
            durability_dir=str(tmp_path),
            fault_plan=plan,
        ) as router:
            # read-only: the lost shard's rows stay exactly `points`
            report = replay_workload(
                router,
                WorkloadSpec(
                    dataset="bench",
                    operations=120,
                    read_fraction=1.0,
                    seed=41,
                    retry_attempts=3,
                    retry_base_delay=0.002,
                ),
            )
            result = router.query(Query.full("bench"))
            cert = result.certificate
            lost_rows = int(
                (router.map.shard_of(points) == 1).sum()
            )

            assert cert["kind"] == "partial"
            assert cert["lost_shards"] == [1]
            floors = np.asarray(cert["floors"], dtype=np.float64)

            # soundness: every served id is in the TRUE skyline of the
            # full dataset, lost rows included
            truth_ids = set(
                ids[skyline_indices_oracle(points)].tolist()
            )
            served = set(result.ids.tolist())
            assert served <= truth_ids

            # exactness of the certificate: served = alive-union
            # skyline minus the floor-masked uncertain set
            alive = router.map.shard_of(points) != 1
            sky = skyline_indices_oracle(points[alive])
            sky_pts = points[alive][sky]
            sky_ids = ids[alive][sky]
            keep = ~floor_dominated_mask(sky_pts, floors)
            assert served == set(sky_ids[keep].tolist())
            assert cert["masked"] == int((~keep).sum())

        payload = {
            "shards": 4,
            "operations": report.operations,
            "faults": plan.describe(),
            "availability": round(report.availability, 4),
            "degraded_partial": report.degraded_partial,
            "lost_rows": lost_rows,
            "true_skyline": len(truth_ids),
            "served_certified": len(served),
            "masked_uncertain": int(cert["masked"]),
        }
        _update_bench("certified_partial", payload)

        assert report.availability >= MIN_AVAILABILITY, (
            f"availability {report.availability:.4f} with a terminally "
            f"lost shard (need >= {MIN_AVAILABILITY}); "
            f"failures: {report.failures}"
        )
        assert report.degraded_partial > 0
