"""Chaos smoke for the crash-safe serving layer (``repro.serving``).

Three guarded measurements, written to ``BENCH_serving_chaos.json``:

* **availability under chaos** — a seeded replay with worker crashes,
  writer crashes, cache corruption, and injected queue delays must
  still answer at least **99%** of non-shed operations, and every
  failure must be a *typed* serving error;
* **latency under chaos** — p99 read latency of the chaos run must
  stay within **3x** of a faults-off baseline of the same workload on
  the same host (self-healing is not allowed to stall the read path);
* **recovery** — a scripted writer crash must recover onto a
  bit-identical snapshot (WAL replay digest equals the uninterrupted
  run's digest) within a bounded wall-clock budget.

Absolute seconds are host-dependent; the latency guard is a
self-relative ratio measured in the same process.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

import numpy as np

from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    ServiceConfig,
    ServingFaultPlan,
    SkylineService,
    WorkloadSpec,
    replay_workload,
)
from repro.serving.faults import WRITER_PHASES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_serving_chaos.json")

#: minimum fraction of non-shed operations that must succeed
MIN_AVAILABILITY = 0.99
#: chaos p99 read latency must stay within this multiple of baseline
MAX_P99_RATIO = 3.0
#: one scripted crash recovery must finish within this budget
MAX_RECOVERY_SECONDS = 2.0


def _read_recorded() -> Dict:
    if not os.path.exists(BENCH_PATH):
        return {}
    with open(BENCH_PATH, "r") as handle:
        return json.load(handle)


def _update_bench(section: str, payload: Dict) -> None:
    recorded = _read_recorded()
    recorded[section] = payload
    with open(BENCH_PATH, "w") as handle:
        json.dump(recorded, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _grid(rng, n: int, d: int = 5, cells: int = 256) -> np.ndarray:
    return rng.integers(0, cells, size=(n, d)).astype(np.float64)


def _chaos_replay(tmp_dir: str, plan: ServingFaultPlan):
    """One seeded workload replay; returns (report, final digest)."""
    registry = DatasetRegistry(
        keep_versions=128,
        durability_dir=tmp_dir,
        checkpoint_every=8,
        fault_plan=plan if plan.any_faults else None,
    )
    rng = np.random.default_rng(11)
    registry.register("bench", _grid(rng, 1200), drift=DriftPolicy.never())
    config = ServiceConfig(
        fault_plan=plan if plan.any_faults else None
    )
    with SkylineService(registry, config=config) as service:
        report = replay_workload(
            service,
            WorkloadSpec(
                dataset="bench",
                operations=400,
                read_fraction=0.85,
                seed=23,
                retry_attempts=4,
                retry_base_delay=0.002,
            ),
        )
    digest = registry.snapshot("bench").state_digest()
    return report, digest


class TestAvailabilityUnderChaos:
    def test_99_percent_availability_and_bounded_p99(self, tmp_path):
        chaos_plan = ServingFaultPlan(
            seed=41,
            worker_crash_rate=0.03,
            writer_crash_rate=0.1,
            cache_corruption_rate=0.1,
            queue_delay_rate=0.05,
            queue_delay_seconds=0.001,
        )
        calm_plan = ServingFaultPlan(seed=41)  # no faults: baseline

        calm, calm_digest = _chaos_replay(str(tmp_path / "calm"), calm_plan)
        chaos, _ = _chaos_replay(str(tmp_path / "chaos"), chaos_plan)

        calm_p99 = calm.latency_percentiles("read")["p99"]
        chaos_p99 = chaos.latency_percentiles("read")["p99"]
        p99_ratio = chaos_p99 / calm_p99 if calm_p99 > 0 else 1.0

        payload = {
            "operations": chaos.operations,
            "faults": chaos_plan.describe(),
            "availability": round(chaos.availability, 4),
            "retries": chaos.retries,
            "degraded_stale": chaos.degraded_stale,
            "degraded_partial": chaos.degraded_partial,
            "failures": dict(sorted(chaos.failures.items())),
            "baseline_read_p99_ms": round(calm_p99 * 1e3, 3),
            "chaos_read_p99_ms": round(chaos_p99 * 1e3, 3),
            "p99_ratio": round(p99_ratio, 3),
        }
        _update_bench("availability_under_chaos", payload)

        assert chaos.availability >= MIN_AVAILABILITY, (
            f"availability {chaos.availability:.4f} under seeded chaos "
            f"(need >= {MIN_AVAILABILITY}); failures: {chaos.failures}"
        )
        assert p99_ratio <= MAX_P99_RATIO, (
            f"chaos p99 read latency is {p99_ratio:.2f}x the faults-off "
            f"baseline (allowed <= {MAX_P99_RATIO}x)"
        )
        # baseline sanity: the calm run is fully available and identical
        # workloads must agree when nothing is injected
        assert calm.availability == 1.0
        assert calm_digest  # non-empty digest


class TestCrashRecovery:
    def test_wal_recovery_is_bit_identical_and_fast(self, tmp_path):
        rng = np.random.default_rng(5)
        base = _grid(rng, 800)
        batches = []
        next_id = 10_000
        for _ in range(12):
            pts = _grid(rng, 5)
            ids = list(range(next_id, next_id + 5))
            next_id += 5
            batches.append((pts, ids))

        def run(tag: str, plan):
            registry = DatasetRegistry(
                durability_dir=str(tmp_path / tag),
                checkpoint_every=4,
                fault_plan=plan,
            )
            registry.register("ds", base, drift=DriftPolicy.never())
            service_config = ServiceConfig(fault_plan=plan)
            with SkylineService(registry, config=service_config) as service:
                from repro.serving import Mutation

                for pts, ids in batches:
                    service.mutate(Mutation.insert("ds", pts, ids))
            return registry

        clean = run("clean", None)
        expected = clean.snapshot("ds")

        recovery_times = {}
        for phase in WRITER_PHASES:
            plan = ServingFaultPlan(
                scripted_writer_crashes={("ds", 7): phase}
            )
            start = time.perf_counter()
            chaos = run(f"crash-{phase}", plan)
            elapsed = time.perf_counter() - start
            recovered = chaos.snapshot("ds")
            assert recovered.version == expected.version, phase
            assert recovered.state_digest() == expected.state_digest(), (
                f"phase {phase!r}: WAL recovery diverged from the "
                f"uninterrupted run"
            )
            status = chaos.writer_status("ds")
            assert not status["writer_down"]
            assert status["recoveries"] >= 1
            recovery_times[phase] = elapsed

        worst = max(recovery_times.values())
        payload = {
            "batches": len(batches),
            "dataset_points": int(base.shape[0]),
            "final_version": int(expected.version),
            "digest": expected.state_digest(),
            "run_seconds_by_phase": {
                phase: round(seconds, 4)
                for phase, seconds in recovery_times.items()
            },
            "worst_run_seconds": round(worst, 4),
        }
        _update_bench("wal_recovery", payload)
        assert worst <= MAX_RECOVERY_SECONDS, (
            f"crash run + recovery took {worst:.3f}s "
            f"(budget {MAX_RECOVERY_SECONDS}s)"
        )
