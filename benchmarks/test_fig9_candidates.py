"""Figure 9: number of skyline candidates per partitioning approach.

Paper shape: the dominance-grouped Z-order pipeline emits far fewer
candidates than Grid (its SZB prefilter + grouping prune dominated
points before the shuffle), and candidate counts grow with input size
for every approach.
"""

from conftest import once

from repro.bench import experiments


def _series(table, plan, y_col="candidates"):
    rows = table.select(plan=plan)
    return dict(zip(rows.column("size_m"), rows.column(y_col)))


class TestFig9:
    def test_candidates_independent(self, benchmark, scale, emit):
        table = once(
            benchmark, lambda: experiments.fig9_candidates("independent")
        )
        emit(table, "fig9_independent")
        zdg = _series(table, "ZDG+ZS")
        naive = _series(table, "Naive-Z+ZS")
        grid = _series(table, "Grid+ZS")
        largest = max(zdg)
        # The whole Z-order family beats Grid on candidate volume.
        assert zdg[largest] < grid[largest]
        assert naive[largest] < grid[largest]
        # Candidate counts grow with input for every approach.
        for plan in experiments.FIG9_PARTITIONERS:
            series = _series(table, plan)
            assert series[largest] >= series[min(series)]

    def test_candidates_anticorrelated(self, benchmark, scale, emit):
        # DIVERGENCE from the paper (recorded in EXPERIMENTS.md): on
        # anti-correlated data our Grid baseline's compact cells prune
        # candidates *more* than the Z-family, so the paper's "ZDG emits
        # 5x fewer candidates than Grid" does not reproduce here.  What
        # does reproduce: only the Z-family prunes input records before
        # the shuffle, and its candidate volume stays within a small
        # factor of Grid's.
        table = once(
            benchmark, lambda: experiments.fig9_candidates("anticorrelated")
        )
        emit(table, "fig9_anticorrelated")
        zdg = _series(table, "ZDG+ZS")
        grid = _series(table, "Grid+ZS")
        zdg_pruned = _series(table, "ZDG+ZS", "pruned_inputs")
        grid_pruned = _series(table, "Grid+ZS", "pruned_inputs")
        largest = max(zdg)
        assert zdg_pruned[largest] > grid_pruned[largest]
        assert zdg[largest] <= grid[largest] * 2.0

    def test_prefilter_prunes_inputs(self, benchmark, scale, emit):
        table = once(
            benchmark,
            lambda: experiments.fig9_candidates(
                "independent", sizes_m=(60,)
            ),
        )
        emit(table, "fig9_pruning_detail")
        zdg_rows = table.select(plan="ZDG+ZS")
        grid_rows = table.select(plan="Grid+ZS")
        # The Z-family prunes input records before the shuffle; Grid
        # cannot (no sample-skyline prefilter).
        assert zdg_rows.column("pruned_inputs")[0] > 0
        assert grid_rows.column("pruned_inputs")[0] == 0
