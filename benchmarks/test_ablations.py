"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from conftest import once

from repro.bench import ablations


class TestPrefilterAblation:
    def test_prefilter_cuts_shuffle(self, benchmark, scale, emit):
        table = once(benchmark, ablations.prefilter_ablation)
        emit(table, "ablation_prefilter")
        rows = {r["prefilter"]: r for r in table.rows}
        # The SZB screen pays its map-side cost back in shuffle volume.
        assert rows[True]["shuffle_records"] < rows[False]["shuffle_records"]
        assert rows[True]["map_cost"] > rows[False]["map_cost"]
        # Same downstream skyline work or less.
        assert rows[True]["candidates"] <= rows[False]["candidates"]


class TestExpansionAblation:
    def test_expansion_tradeoff(self, benchmark, scale, emit):
        table = once(benchmark, ablations.expansion_ablation)
        emit(table, "ablation_expansion")
        by_delta = {r["delta"]: r for r in table.rows}
        # More over-partitioning -> more preprocessing work.
        assert (
            by_delta[8]["preprocess_s"] >= by_delta[1]["preprocess_s"] * 0.5
        )
        # All settings produce a valid grouping near the requested M.
        for row in table.rows:
            assert row["num_groups"] >= 16


class TestBitsAblation:
    def test_resolution_monotone(self, benchmark, scale, emit):
        table = once(benchmark, ablations.bits_ablation)
        emit(table, "ablation_bits")
        by_bits = {r["bits"]: r for r in table.rows}
        # Coarser grids collapse points into fewer distinct cells.
        assert by_bits[4]["distinct_cells"] <= by_bits[16]["distinct_cells"]
        # Coarser grids also collapse the skyline (tied cells absorb
        # near-dominated points); it converges as resolution grows.
        assert by_bits[4]["skyline"] <= by_bits[12]["skyline"]
        assert (
            abs(by_bits[16]["skyline"] - by_bits[12]["skyline"])
            <= 0.05 * by_bits[16]["skyline"]
        )


class TestGroupingSource:
    def test_grouping_helps_any_partitioner(self, benchmark, scale, emit):
        table = once(benchmark, ablations.grouping_source_ablation)
        emit(table, "ablation_grouping_source")
        rows = {r["plan"]: r for r in table.rows}
        # The prefilter+grouping stack never produces more candidates
        # than the plain base partitioner (it screens inputs first).
        assert (
            rows["Grid-Grouped+ZS+ZM"]["candidates"]
            <= rows["Grid+ZS"]["candidates"]
        )
        # All strategies found the same skyline via different routes —
        # sanity anchor for the comparison.
        assert len(table.rows) == 6


class TestLocalAlgorithms:
    def test_centralized_comparison(self, benchmark, scale, emit):
        table = once(benchmark, ablations.local_algorithm_ablation)
        emit(table, "ablation_local_algorithms")
        # All algorithms agree on the skyline size per distribution.
        for distribution in ("correlated", "independent",
                             "anticorrelated"):
            sizes = set(
                table.select(distribution=distribution).column("skyline")
            )
            assert len(sizes) == 1
        # On correlated data the index/pruning algorithms (BBS, ZS)
        # and the early-terminating SaLSa beat plain BNL.
        corr = {
            r["algorithm"]: r["cost"]
            for r in table.select(distribution="correlated").rows
        }
        assert corr["BBS"] < corr["BNL"]
        assert corr["SALSA"] < corr["BNL"]


class TestParallelMerge:
    def test_zmp_parallelises_the_merge(self, benchmark, scale, emit):
        table = once(benchmark, ablations.parallel_merge_ablation)
        emit(table, "ablation_parallel_merge")
        rows = {r["merge"]: r for r in table.rows}
        # Identical result, lower merge makespan.
        assert rows["ZM"]["skyline"] == rows["ZMP"]["skyline"]
        assert rows["ZMP"]["merge_makespan"] < rows["ZM"]["merge_makespan"]


class TestTreeGeometry:
    def test_geometry_does_not_change_result(self, benchmark, scale, emit):
        table = once(benchmark, ablations.tree_geometry_ablation)
        emit(table, "ablation_tree_geometry")
        sizes = set(table.column("skyline"))
        assert len(sizes) == 1
        # Bigger leaves -> shorter tree.
        heights = table.column("height")
        assert heights[0] >= heights[-1]
