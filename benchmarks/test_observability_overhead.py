"""Cost of the observability layer on a Figure-9-style workload.

Two claims, both load-bearing for the tracing design:

* **off is free** — with the default ``NULL_TRACER`` the runtime pays a
  single boolean check per task, so a run with tracing disabled must be
  no slower (within noise) than a fully traced run minus its span cost;
  the assertion bounds the disabled path at 5% of the traced wall time.
* **on is bounded** — enabling tracing + metrics may not blow up the
  run either; the table records the measured ratio so regressions are
  visible in the CSV history.

Min-of-repeats is used on both sides: the minimum is the standard
robust estimator for "how fast can this code go", which is exactly the
quantity an overhead comparison needs.
"""

from conftest import once

from repro.bench.harness import ResultTable, run_plan_measured
from repro.data.synthetic import independent
from repro.observability import Tracer

PLAN = "ZDG+ZS+ZM"
REPEATS = 3


def _fig9_dataset(scale):
    # Figure 9's mid-size point: 60M paper points, d=5, independent.
    return independent(scale.size(60), 5, seed=0)


def _min_wall(dataset, **kwargs):
    reports = [
        run_plan_measured(PLAN, dataset, num_workers=8, **kwargs)
        for _ in range(REPEATS)
    ]
    return min(r.total_seconds for r in reports), reports[-1]


def _run(scale):
    dataset = _fig9_dataset(scale)
    table = ResultTable(
        "observability overhead (fig-9 workload)",
        ["mode", "total_s", "ratio_vs_traced", "spans", "skyline"],
    )

    traced_s, traced_report = _min_wall(dataset, tracer=Tracer())
    off_s, off_report = _min_wall(dataset)

    assert off_report.trace is None
    assert traced_report.trace is not None
    traced_report.trace.validate()
    assert sorted(off_report.skyline.ids) == sorted(
        traced_report.skyline.ids
    )

    table.add(
        mode="tracing-off",
        total_s=round(off_s, 4),
        ratio_vs_traced=round(off_s / traced_s, 3),
        spans=0,
        skyline=off_report.skyline_size,
    )
    table.add(
        mode="tracing-on",
        total_s=round(traced_s, 4),
        ratio_vs_traced=1.0,
        spans=len(traced_report.trace.spans),
        skyline=traced_report.skyline_size,
    )

    # The acceptance bound: with tracing off the instrumented runtime
    # costs at most 5% of the traced run's wall time (25ms absolute
    # slack absorbs scheduler noise on tiny CI-scaled workloads).
    assert off_s <= traced_s * 1.05 + 0.025, (
        f"tracing-off run ({off_s:.4f}s) slower than traced run "
        f"({traced_s:.4f}s) by more than the 5% budget"
    )
    return table


def test_observability_overhead(benchmark, scale, emit):
    table = once(benchmark, lambda: _run(scale))
    emit(table, "observability_overhead")
