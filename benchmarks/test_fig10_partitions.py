"""Figure 10 (inferred from the truncated §6.4: effect of the number of
partitions): sweep the group count M.

Expected shape: more groups means more parallel slack but also more
local skylines, so candidate counts rise with M while per-reducer work
falls; the end-to-end makespan has a sweet spot rather than improving
monotonically.
"""

from conftest import once

from repro.bench import experiments


class TestFig10:
    def test_group_count_sweep(self, benchmark, scale, emit):
        table = once(benchmark, experiments.fig10_partition_count_sweep)
        emit(table, "fig10")
        zdg = table.select(plan="ZDG+ZS+ZM")
        by_m = dict(zip(zdg.column("M"), zdg.column("candidates")))
        # Candidates grow with the number of groups (more local
        # skylines survive).
        assert by_m[128] > by_m[8]

    def test_more_groups_reduce_per_reducer_work(self, benchmark, scale,
                                                 emit):
        table = once(
            benchmark,
            lambda: experiments.fig10_partition_count_sweep(
                plans=("ZDG+ZS+ZM",), group_counts=(8, 64)
            ),
        )
        emit(table, "fig10_reducer_work")
        rows = table.select(plan="ZDG+ZS+ZM")
        by_m = dict(zip(rows.column("M"), rows.column("makespan_cost")))
        # Phase-1 reducer parallelism helps; the merge keeps the total
        # from scaling perfectly, so just require sane behaviour.
        assert by_m[64] < by_m[8] * 3
