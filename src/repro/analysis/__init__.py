"""Workload analysis: the measurements behind the paper's Example 2.

Example 2 studies *where skyline points live* for NBA- and HOU-style
data: that distribution is what motivates partition grouping.  This
package computes skyline distribution histograms over partitions,
dominance-depth statistics, and renders text reports for quick
inspection (no plotting dependencies).
"""

from repro.analysis.cardinality import (
    capture_recapture_estimate,
    harmonic_estimate,
    sample_scaling_estimate,
)
from repro.analysis.distribution import (
    dominance_depth_profile,
    skyline_partition_histogram,
    workload_profile,
)
from repro.analysis.plots import ascii_scatter
from repro.analysis.report import render_histogram, render_profile

__all__ = [
    "ascii_scatter",
    "capture_recapture_estimate",
    "dominance_depth_profile",
    "harmonic_estimate",
    "render_histogram",
    "render_profile",
    "sample_scaling_estimate",
    "skyline_partition_histogram",
    "workload_profile",
]
