"""Skyline cardinality estimation.

Knowing |S| in advance sizes the grouping constraints (the paper's
``scons = |S|/M`` uses the *sample* skyline as the estimator and notes
the difficulty: "the number of skyline points |S| cannot be accurately
estimated").  This module collects the standard estimators so that
choice can be studied:

* the **independence formula** — for d independent continuous
  dimensions, ``E|S| = H(d-1, n)``, the generalized harmonic number,
  i.e. roughly ``(ln n)^(d-1) / (d-1)!``;
* **sample scaling** — compute the sample skyline and scale by the
  power law the independence model implies;
* **capture–recapture** over two disjoint samples.
"""

from __future__ import annotations

import math
import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError
from repro.core.skyline import skyline_indices_oracle
from repro.partitioning.sampling import reservoir_sample_indices


def expected_skyline_size_exact(n: int, dimensions: int) -> float:
    """Exact E|S| for i.i.d. continuous independent dimensions.

    Uses the classic recurrence (Bentley et al. / Godfrey):
    ``S(n, 1) = 1`` and ``S(n, d) = S(n-1, d) + S(n, d-1) / n``.
    O(n * d) time, O(n) space — use for sizing decisions up to a few
    million; :func:`harmonic_estimate` is the O(1) approximation.
    """
    if n <= 0 or dimensions <= 0:
        raise DatasetError("n and dimensions must be positive")
    # S(i, 1) = 1 for all i.
    previous = np.ones(n + 1)
    previous[0] = 0.0
    for _d in range(2, dimensions + 1):
        current = np.empty(n + 1)
        current[0] = 0.0
        running = 0.0
        for i in range(1, n + 1):
            running += previous[i] / i
            current[i] = running
        previous = current
    return float(previous[n])


def harmonic_estimate(n: int, dimensions: int) -> float:
    """Expected skyline size under fully independent dimensions.

    Uses the recurrence ``S(n, 1) = 1`` and
    ``S(n, d) = S(n-1, d) + S(n, d-1) / n`` evaluated via the standard
    log-power approximation ``(ln n)^(d-1) / (d-1)!`` (exact enough for
    sizing decisions; the exact recurrence is O(n·d)).
    """
    if n <= 0 or dimensions <= 0:
        raise DatasetError("n and dimensions must be positive")
    if n == 1:
        return 1.0
    d = dimensions
    return min(
        float(n), (math.log(n) ** (d - 1)) / math.factorial(d - 1)
    )


def sample_scaling_estimate(
    dataset: Dataset, sample_ratio: float = 0.05, seed: int = 0
) -> float:
    """Scale a sample skyline up with the independence power law.

    Under the independence model, ``|S(n)| / |S(m)| ≈
    (ln n / ln m)^(d-1)``; we measure ``|S(m)|`` on a reservoir sample
    of size m and scale.  Exact for the model, a usable upper-ish bound
    for correlated data, an underestimate for anti-correlated data
    (where |S| grows near-linearly).
    """
    if not (0.0 < sample_ratio <= 1.0):
        raise DatasetError("sample_ratio must be in (0, 1]")
    rng = np.random.default_rng(seed)
    m = max(2, int(dataset.size * sample_ratio))
    idx = reservoir_sample_indices(dataset.size, m, rng)
    sample_sky = len(skyline_indices_oracle(dataset.points[idx]))
    if dataset.size <= m:
        return float(sample_sky)
    growth = (
        math.log(dataset.size) / math.log(m)
    ) ** (dataset.dimensions - 1)
    return min(float(dataset.size), sample_sky * growth)


def capture_recapture_estimate(
    dataset: Dataset, sample_ratio: float = 0.05, seed: int = 0
) -> float:
    """Chapman capture–recapture over two disjoint samples.

    Skyline points of the full data appear in a sample's skyline
    whenever sampled; two independent samples' skylines overlap in
    proportion to the true skyline size: ``|S| ≈ (s1+1)(s2+1)/(b+1) - 1``
    where b counts points on both sample skylines *and* the full
    skyline of the union.  Distribution-free, at the price of two
    sample skylines.
    """
    if not (0.0 < sample_ratio <= 0.5):
        raise DatasetError("sample_ratio must be in (0, 0.5]")
    rng = np.random.default_rng(seed)
    m = max(2, int(dataset.size * sample_ratio))
    first = reservoir_sample_indices(dataset.size, 2 * m, rng)
    half_a, half_b = first[:m], first[m : 2 * m]
    sky_a = set(
        half_a[skyline_indices_oracle(dataset.points[half_a])].tolist()
    )
    sky_b = set(
        half_b[skyline_indices_oracle(dataset.points[half_b])].tolist()
    )
    union = np.asarray(sorted(sky_a | sky_b), dtype=np.int64)
    union_sky = set(
        union[skyline_indices_oracle(dataset.points[union])].tolist()
    )
    marked_a = sky_a & union_sky
    marked_b = sky_b & union_sky
    both = len(marked_a & marked_b)
    estimate = (
        (len(marked_a) + 1) * (len(marked_b) + 1) / (both + 1)
    ) - 1
    return min(float(dataset.size), max(estimate, 1.0))
