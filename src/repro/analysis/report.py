"""Plain-text rendering for the analysis statistics."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.analysis.distribution import DominanceDepthProfile

_BAR_WIDTH = 40


def render_histogram(
    histogram: Mapping[int, Dict[str, int]], title: str = "skyline histogram"
) -> str:
    """Render a per-group points/skyline histogram as aligned bars."""
    lines = [f"== {title} =="]
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines)
    top = max(bucket["points"] for bucket in histogram.values()) or 1
    for gid in sorted(histogram):
        bucket = histogram[gid]
        bar = "#" * max(1, round(bucket["points"] / top * _BAR_WIDTH))
        label = "dropped" if gid < 0 else f"group {gid:3d}"
        lines.append(
            f"{label}: {bar:<{_BAR_WIDTH}} "
            f"points={bucket['points']:6d} skyline={bucket['skyline']:5d}"
        )
    return "\n".join(lines)


def render_profile(profile: DominanceDepthProfile) -> str:
    """Render a dominance-depth profile."""
    lines = [
        "== dominance depth profile ==",
        f"skyline size : {profile.skyline_size}",
        f"max depth    : {profile.max_depth}",
        f"mean depth   : {profile.mean_depth:.2f}",
    ]
    shown = sorted(profile.depth_histogram)[:10]
    top = max(profile.depth_histogram.values()) or 1
    for depth in shown:
        count = profile.depth_histogram[depth]
        bar = "#" * max(1, round(count / top * _BAR_WIDTH))
        lines.append(f"depth {depth:4d}: {bar} {count}")
    if len(profile.depth_histogram) > 10:
        lines.append(f"... {len(profile.depth_histogram) - 10} more depths")
    return "\n".join(lines)
