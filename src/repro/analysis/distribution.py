"""Skyline distribution statistics (the measurements behind Example 2
and the straggler discussion of §3.3/§4.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.dataset import Dataset
from repro.core.point import dominance_counts
from repro.core.skyline import skyline_indices_oracle
from repro.partitioning.base import PartitionRule
from repro.zorder.encoding import ZGridCodec


def skyline_partition_histogram(
    dataset: Dataset,
    rule: PartitionRule,
    codec: Optional[ZGridCodec] = None,
) -> Dict[int, Dict[str, int]]:
    """Per-group counts of points and skyline points.

    This is Example 2's measurement: the skyline concentrates in a few
    partitions, which is why the naive equal-count split leaves some
    workers with nearly all the skyline work.  Returns
    ``{gid: {"points": ..., "skyline": ...}}`` (dropped points under
    gid -1).
    """
    zaddresses = None
    if codec is not None:
        zaddresses = codec.encode_grid(dataset.points.astype(np.int64))
    gids = rule.assign_groups(dataset.points, dataset.ids, zaddresses)
    sky_idx = set(skyline_indices_oracle(dataset.points).tolist())
    histogram: Dict[int, Dict[str, int]] = {}
    for position, gid in enumerate(gids):
        bucket = histogram.setdefault(
            int(gid), {"points": 0, "skyline": 0}
        )
        bucket["points"] += 1
        if position in sky_idx:
            bucket["skyline"] += 1
    return histogram


@dataclass
class DominanceDepthProfile:
    """Summary of how deeply points are dominated."""

    skyline_size: int
    max_depth: int
    mean_depth: float
    depth_histogram: Dict[int, int]


def dominance_depth_profile(dataset: Dataset) -> DominanceDepthProfile:
    """How many dominators each point has (depth 0 = skyline).

    Quadratic; intended for analysis-sized samples.  The heavier the
    tail, the more the first MapReduce job can prune (§5.4).
    """
    counts = dominance_counts(dataset.points)
    histogram: Dict[int, int] = {}
    for depth in counts:
        histogram[int(depth)] = histogram.get(int(depth), 0) + 1
    return DominanceDepthProfile(
        skyline_size=int((counts == 0).sum()),
        max_depth=int(counts.max()),
        mean_depth=float(counts.mean()),
        depth_histogram=histogram,
    )


def workload_profile(dataset: Dataset) -> Dict[str, float]:
    """One-line characterisation of a workload.

    ``skyline_fraction`` and ``mean_pairwise_correlation`` place the
    dataset on the correlated <-> anti-correlated spectrum the paper's
    generators span.
    """
    points = dataset.points
    sky = skyline_indices_oracle(points)
    if dataset.dimensions > 1:
        corr = np.corrcoef(points.T)
        off = corr[~np.eye(dataset.dimensions, dtype=bool)]
        mean_corr = float(np.nanmean(off))
    else:
        mean_corr = 1.0
    return {
        "n": float(dataset.size),
        "d": float(dataset.dimensions),
        "skyline_size": float(len(sky)),
        "skyline_fraction": float(len(sky)) / dataset.size,
        "mean_pairwise_correlation": mean_corr,
    }
