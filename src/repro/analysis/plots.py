"""ASCII scatter plots for quick 2-D skyline inspection.

The paper's Figure 1(b) intuition — dominated mass above-right of the
staircase frontier — in a terminal, no plotting dependencies.  Skyline
points render as ``*``, dominated points as ``.``; smaller is better,
so the frontier hugs the lower-left.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.skyline import skyline_indices_oracle


def ascii_scatter(
    points: np.ndarray,
    skyline_indices: Optional[Sequence[int]] = None,
    width: int = 60,
    height: int = 20,
    dims: Sequence[int] = (0, 1),
) -> str:
    """Render two dimensions of a point set as an ASCII scatter plot.

    ``skyline_indices`` defaults to computing the 2-D projection's
    skyline.  The y-axis is drawn increasing upward, so "better" is the
    bottom-left corner.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise DatasetError("need a non-empty (n, d) array")
    if len(dims) != 2:
        raise DatasetError("exactly two dimensions to plot")
    x_dim, y_dim = dims
    if not (0 <= x_dim < pts.shape[1] and 0 <= y_dim < pts.shape[1]):
        raise DatasetError("plot dimensions out of range")
    if width < 2 or height < 2:
        raise DatasetError("width and height must be >= 2")

    plane = pts[:, [x_dim, y_dim]]
    if skyline_indices is None:
        skyline_indices = skyline_indices_oracle(plane).tolist()
    sky_set = set(int(i) for i in skyline_indices)

    lo = plane.min(axis=0)
    hi = plane.max(axis=0)
    span = np.where(hi - lo == 0.0, 1.0, hi - lo)
    cols = np.minimum(
        ((plane[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int),
        width - 1,
    )
    rows = np.minimum(
        ((plane[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int),
        height - 1,
    )

    canvas = [[" "] * width for _ in range(height)]
    # Draw dominated points first so skyline markers win cell conflicts.
    for i in range(plane.shape[0]):
        if i not in sky_set:
            canvas[rows[i]][cols[i]] = "."
    for i in sky_set:
        canvas[rows[i]][cols[i]] = "*"

    lines = [
        f"y: dim {y_dim} (min {lo[1]:.3g}, max {hi[1]:.3g});  "
        f"x: dim {x_dim} (min {lo[0]:.3g}, max {hi[0]:.3g})",
        "+" + "-" * width + "+",
    ]
    for row in reversed(canvas):
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"* skyline ({len(sky_set)})   . dominated")
    return "\n".join(lines)
