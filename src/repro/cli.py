"""Command-line interface.

Examples::

    repro-skyline run --plan ZDG+ZS+ZM --dist anticorrelated -n 20000 -d 5
    repro-skyline experiment fig7a
    repro-skyline experiment all --csv-dir results/
    repro-skyline list

(Equivalently ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional

from repro.bench import experiments
from repro.bench.harness import BenchScale, ResultTable, run_plan_measured
from repro.data.synthetic import generate

#: experiment name -> zero-config callable returning a ResultTable
EXPERIMENTS: Dict[str, Callable[[], ResultTable]] = {
    "fig7a": lambda: experiments.fig7_size_sweep("independent"),
    "fig7b": lambda: experiments.fig7_size_sweep("anticorrelated"),
    "fig7c": lambda: experiments.fig7_dims_sweep("independent"),
    "fig7d": lambda: experiments.fig7_dims_sweep("anticorrelated"),
    "fig8a": lambda: experiments.fig8_merge_size_sweep("independent"),
    "fig8b": lambda: experiments.fig8_merge_size_sweep("anticorrelated"),
    "fig8c": lambda: experiments.fig8_merge_dims_sweep("independent"),
    "fig8d": lambda: experiments.fig8_merge_dims_sweep("anticorrelated"),
    "fig9": lambda: experiments.fig9_candidates("independent"),
    "fig9-anti": lambda: experiments.fig9_candidates("anticorrelated"),
    "fig10": lambda: experiments.fig10_partition_count_sweep(),
    "fig11": lambda: experiments.fig11_realworld(),
    "fig12": lambda: experiments.fig12_scalability(),
    "fig13": lambda: experiments.fig13_sampling(),
    "load-balance": lambda: experiments.load_balance_metrics(),
    "pruning": lambda: experiments.pruning_analysis(),
    "worker-scaling": lambda: experiments.worker_scaling(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description=(
            "Parallel skyline query processing (ICDE 2019 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one plan on a synthetic dataset")
    run.add_argument("--plan", default="ZDG+ZS+ZM")
    run.add_argument(
        "--dist",
        default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    run.add_argument("-n", "--num-points", type=int, default=20_000)
    run.add_argument("-d", "--dimensions", type=int, default=5)
    run.add_argument("--groups", type=int, default=32)
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--sample-ratio", type=float, default=0.02)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--executor",
        default="simulated",
        choices=["simulated", "threaded", "procpool"],
        help=(
            "task executor (threaded = thread-per-worker, "
            "procpool = process-per-worker multicore)"
        ),
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "deterministic fault injection, e.g. "
            "'seed=7,task=0.1,crash=0.2,corrupt=0.05,attempts=5'"
        ),
    )
    run.add_argument(
        "--splits", type=int, default=None, metavar="N",
        help="number of input splits (default: 2x workers)",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist each completed stage to DIR (supervised run)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="resume from the last durable stage in --checkpoint-dir",
    )
    run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="whole-run wall-clock budget (supervised run)",
    )
    run.add_argument(
        "--degraded-ok", action="store_true",
        help=(
            "return a partial, certified-subset skyline instead of "
            "failing when phase-1 groups are terminally lost"
        ),
    )
    run.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export the run's span trace as JSONL (enables tracing)",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="export unified metrics (counters/timers/histograms) as JSONL",
    )

    exp = sub.add_parser(
        "experiment", help="regenerate a paper figure's rows"
    )
    exp.add_argument(
        "name", choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (figure) or 'all'",
    )
    exp.add_argument(
        "--csv-dir", default=None, help="also write each table as CSV here"
    )

    analyze = sub.add_parser(
        "analyze", help="profile a workload and recommend a plan"
    )
    analyze.add_argument(
        "--dist",
        default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    analyze.add_argument("-n", "--num-points", type=int, default=5_000)
    analyze.add_argument("-d", "--dimensions", type=int, default=5)
    analyze.add_argument("--csv", default=None,
                         help="analyze a CSV dataset instead")
    analyze.add_argument("--workers", type=int, default=8)
    analyze.add_argument("--seed", type=int, default=0)

    estimate = sub.add_parser(
        "estimate", help="estimate skyline cardinality without computing it"
    )
    estimate.add_argument(
        "--dist",
        default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    estimate.add_argument("-n", "--num-points", type=int, default=20_000)
    estimate.add_argument("-d", "--dimensions", type=int, default=5)
    estimate.add_argument("--sample-ratio", type=float, default=0.05)
    estimate.add_argument("--seed", type=int, default=0)

    cmp_parser = sub.add_parser(
        "compare", help="run every strategy on one dataset"
    )
    cmp_parser.add_argument(
        "--dist",
        default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    cmp_parser.add_argument("-n", "--num-points", type=int, default=10_000)
    cmp_parser.add_argument("-d", "--dimensions", type=int, default=6)
    cmp_parser.add_argument("--groups", type=int, default=32)
    cmp_parser.add_argument("--workers", type=int, default=8)
    cmp_parser.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve-bench",
        help="replay a seeded mixed workload against the serving layer",
    )
    serve.add_argument(
        "--dist",
        default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    serve.add_argument("-n", "--num-points", type=int, default=5_000)
    serve.add_argument("-d", "--dimensions", type=int, default=5)
    serve.add_argument("--bits", type=int, default=12,
                       help="grid bits per dimension")
    serve.add_argument("--ops", type=int, default=500,
                       help="operations to replay")
    serve.add_argument("--read-fraction", type=float, default=0.9)
    serve.add_argument("--query-pool", type=int, default=8,
                       help="distinct read queries in rotation")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="points per insert/delete batch")
    serve.add_argument("--workers", type=int, default=4,
                       help="read-query worker threads")
    serve.add_argument("--cache-size", type=int, default=512,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--max-deletes", type=int, default=None,
                       help="drift policy: rebuild after this many deletes")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS", help="per-request deadline")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="seeded chaos injection, e.g. "
             "'seed=7,worker=0.05,writer=0.1,cache=0.1,delay=0.05' "
             "(keys: seed, worker, writer, cache, delay, delaysec, "
             "requeues)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve through a sharded scatter-gather router with N "
             "Z-range shards (0 = single service)",
    )
    serve.add_argument(
        "--shard-faults", default=None, metavar="SPEC",
        help="shard-level chaos, merged into --faults, e.g. "
             "'seed=7,crashshard=2:40,shardslow=0.05,heartbeat=0.1' "
             "(keys: crashshard=SID:OP, terminal=SID+SID, shard, "
             "shardslow, shardslowsec, heartbeat)",
    )
    serve.add_argument(
        "--hedge-after-ms", type=float, default=50.0, metavar="MS",
        help="duplicate a shard sub-query not answered within this "
             "many milliseconds (0 disables hedging)",
    )
    serve.add_argument(
        "--heartbeat-every", type=int, default=0, metavar="OPS",
        help="router heartbeat round every OPS operations (0 = off)",
    )
    serve.add_argument(
        "--min-availability", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) when workload availability drops below "
             "this fraction",
    )
    serve.add_argument(
        "--max-read-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) when read p99 latency exceeds this",
    )
    serve.add_argument(
        "--durability-dir", default=None, metavar="DIR",
        help="WAL + checkpoint directory (enables crash recovery; "
             "defaults to a temp dir when --faults injects writer "
             "crashes)",
    )
    serve.add_argument(
        "--pooled-rebuilds", type=int, default=0, metavar="WORKERS",
        help="run drift rebuilds asynchronously on a shared process "
             "pool with WORKERS workers instead of inline in the "
             "writer thread (0 = inline); pairs with --max-deletes",
    )
    serve.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="attempts per operation (1 = no retries); retryable "
             "failures back off with seeded deterministic jitter",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="export per-request span trace as JSONL",
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="export serving metrics (counters/histograms) as JSONL",
    )

    stream = sub.add_parser(
        "stream-bench",
        help="drive CDC ingest through the streaming layer and measure "
             "publish->notify latency under concurrent cached reads",
    )
    stream.add_argument(
        "--dist",
        default="independent",
        choices=["independent", "correlated", "anticorrelated"],
    )
    stream.add_argument("-n", "--num-points", type=int, default=2_000,
                        help="points registered before the stream starts")
    stream.add_argument("-d", "--dimensions", type=int, default=5)
    stream.add_argument("--bits", type=int, default=12,
                        help="grid bits per dimension")
    stream.add_argument("--records", type=int, default=5_000,
                        help="stream records to ingest")
    stream.add_argument("--batch-size", type=int, default=64,
                        help="records per CDC mutation batch")
    stream.add_argument(
        "--window", type=int, default=0, metavar="N",
        help="count window: feed-expire all but the last N ingested "
             "records (0 = unbounded)",
    )
    stream.add_argument(
        "--subscribers", type=int, default=2,
        help="diff subscribers consuming on their own threads",
    )
    stream.add_argument(
        "--slow-subscribers", type=int, default=1,
        help="additional never-draining subscribers (max_pending=1) "
             "exercising coalescing",
    )
    stream.add_argument(
        "--readers", type=int, default=2,
        help="threads issuing cached skyline reads concurrently",
    )
    stream.add_argument(
        "--on-overload", default="block", choices=["shed", "block"],
        help="feed backpressure mode when admission sheds",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--min-ingest-per-sec", type=float, default=None, metavar="RPS",
        help="fail (exit 1) when sustained ingest drops below this "
             "many records/s",
    )
    stream.add_argument(
        "--max-p99-notify-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) when p99 publish->notify latency exceeds "
             "this",
    )
    stream.add_argument(
        "--latency-out", default=None, metavar="FILE",
        help="export per-notification latency samples as JSONL",
    )
    stream.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="export streaming metrics (counters/histograms) as JSONL",
    )

    reproduce = sub.add_parser(
        "reproduce",
        help="run all claim checks and write a reproduction report",
    )
    reproduce.add_argument(
        "--out", default="REPRODUCTION_REPORT.md",
        help="markdown report path",
    )

    sub.add_parser("list", help="list available experiments")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.exceptions import ConfigurationError
    from repro.mapreduce.faults import FaultPlan

    try:
        fault_plan = (
            FaultPlan.parse(args.faults) if args.faults is not None else None
        )
    except ConfigurationError as exc:
        print(f"error: invalid --faults spec: {exc}", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    dataset = generate(
        args.dist, args.num_points, args.dimensions, seed=args.seed
    )
    supervised = (
        args.checkpoint_dir is not None
        or args.deadline is not None
        or args.degraded_ok
    )
    if supervised:
        from repro.pipeline.supervisor import (
            PartialRunReport,
            SupervisorConfig,
            supervised_run,
        )

        from repro.core.exceptions import (
            DeadlineExceededError,
            FaultInjectionError,
        )

        try:
            report = supervised_run(
                args.plan,
                dataset,
                supervisor=SupervisorConfig(
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                    deadline_seconds=args.deadline,
                    degraded_ok=args.degraded_ok,
                ),
                num_groups=args.groups,
                num_workers=args.workers,
                sample_ratio=args.sample_ratio,
                seed=args.seed,
                executor=args.executor,
                fault_plan=fault_plan,
                num_input_splits=args.splits,
                trace_out=args.trace_out,
                metrics_out=args.metrics_out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (DeadlineExceededError, FaultInjectionError) as exc:
            print(f"run failed: {exc}", file=sys.stderr)
            if args.checkpoint_dir:
                print(
                    f"completed stages are durable in "
                    f"{args.checkpoint_dir!r}; rerun with --resume to "
                    "continue from there",
                    file=sys.stderr,
                )
            return 1
    else:
        try:
            report = run_plan_measured(
                args.plan,
                dataset,
                num_groups=args.groups,
                num_workers=args.workers,
                sample_ratio=args.sample_ratio,
                seed=args.seed,
                executor=args.executor,
                fault_plan=fault_plan,
                num_input_splits=args.splits,
                trace_out=args.trace_out,
                metrics_out=args.metrics_out,
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(f"dataset   : {dataset.name}")
    for key, value in report.summary().items():
        print(f"{key:14s}: {value}")
    if fault_plan is not None:
        print(f"faults    : {fault_plan.describe()}")
    for label, path in (
        ("trace", report.details.get("trace_out")),
        ("metrics", report.details.get("metrics_out")),
    ):
        if path:
            print(f"{label:10s}: wrote {path}")
    if supervised:
        resumed = report.details.get("resumed_stages") or []
        if resumed:
            print(f"resumed   : {', '.join(resumed)}")
        quarantined = report.details.get("input", {}).get(
            "quarantined_records", 0
        )
        if quarantined:
            print(f"quarantined: {quarantined} malformed input records")
        if isinstance(report, PartialRunReport):
            detail = report.completeness_detail
            print(
                "DEGRADED  : partial skyline "
                f"(completeness {report.completeness:.2f}, "
                f"candidate coverage "
                f"{detail.get('candidate_coverage', 0.0):.2f})"
            )
            print(
                f"  lost groups {detail.get('groups_lost')} may still "
                "hide skyline points; "
                f"{report.masked_candidates} uncertain candidates masked"
            )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        table = EXPERIMENTS[name]()
        print(table.render())
        print()
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            table.to_csv(os.path.join(args.csv_dir, f"{name}.csv"))
    return 0


def _cmd_list() -> int:
    scale = BenchScale.from_env()
    print(f"bench scale factor: {scale.factor} (REPRO_BENCH_SCALE)")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import workload_profile
    from repro.pipeline.advisor import advise

    if args.csv:
        from repro.data.io import load_csv

        dataset = load_csv(args.csv)
    else:
        dataset = generate(
            args.dist, args.num_points, args.dimensions, seed=args.seed
        )
    print(f"dataset: {dataset.name}")
    for key, value in workload_profile(dataset).items():
        print(f"  {key:26s}: {value:.4f}")
    advice = advise(dataset, num_workers=args.workers, seed=args.seed)
    print(f"\nrecommended plan : {advice.plan_string()}")
    print(f"recommended groups: {advice.num_groups}")
    for line in advice.rationale:
        print(f"  - {line}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.analysis.cardinality import (
        capture_recapture_estimate,
        harmonic_estimate,
        sample_scaling_estimate,
    )

    dataset = generate(
        args.dist, args.num_points, args.dimensions, seed=args.seed
    )
    print(f"dataset: {dataset.name}")
    print(
        f"  independence formula : "
        f"{harmonic_estimate(dataset.size, dataset.dimensions):.0f}"
    )
    print(
        f"  sample scaling       : "
        f"{sample_scaling_estimate(dataset, args.sample_ratio, args.seed):.0f}"
    )
    print(
        f"  capture-recapture    : "
        f"{capture_recapture_estimate(dataset, min(args.sample_ratio, 0.5), args.seed):.0f}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.pipeline.compare import compare_plans

    dataset = generate(
        args.dist, args.num_points, args.dimensions, seed=args.seed
    )
    table = compare_plans(
        dataset,
        num_groups=args.groups,
        num_workers=args.workers,
        seed=args.seed,
    )
    print(table.render())
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import tempfile

    from repro.observability.metrics import MetricsRegistry
    from repro.observability.tracer import NULL_TRACER, Tracer
    from repro.serving import (
        AdmissionConfig,
        DatasetRegistry,
        DriftPolicy,
        RebuildConfig,
        RebuildPool,
        RouterConfig,
        ServiceConfig,
        ServingFaultPlan,
        ShardedSkylineService,
        SkylineService,
        WorkloadSpec,
        replay_workload,
    )

    from repro.core.exceptions import ReproError

    dataset = generate(
        args.dist, args.num_points, args.dimensions, seed=args.seed
    )
    metrics = MetricsRegistry()
    tracer = Tracer() if args.trace_out else NULL_TRACER
    scratch: Optional[tempfile.TemporaryDirectory] = None
    try:
        fault_spec = ",".join(
            spec for spec in (args.faults, args.shard_faults) if spec
        )
        plan = ServingFaultPlan.parse(fault_spec) if fault_spec else None
        durability_dir = args.durability_dir
        if durability_dir is None and plan is not None and (
            plan.writer_crash_rate > 0 or plan.any_shard_faults
        ):
            # Injected writer/shard crashes need a durable home to
            # recover from; keep the artefacts out of the caller's cwd.
            scratch = tempfile.TemporaryDirectory(prefix="repro-wal-")
            durability_dir = scratch.name
        drift = DriftPolicy.bounded(max_deletes=args.max_deletes)
        config = ServiceConfig(
            admission=AdmissionConfig(read_concurrency=args.workers),
            cache_entries=args.cache_size,
            fault_plan=plan,
        )
        pool: Optional[RebuildPool] = None
        rebuild: Optional[RebuildConfig] = None
        if args.pooled_rebuilds > 0:
            pool = RebuildPool(num_workers=args.pooled_rebuilds)
            rebuild = RebuildConfig(
                pooled=True, num_workers=args.pooled_rebuilds
            )
        if args.shards > 0:
            service_cm = ShardedSkylineService.from_dataset(
                "bench",
                dataset,
                bits_per_dim=args.bits,
                config=RouterConfig(
                    num_shards=args.shards,
                    hedge_after_seconds=args.hedge_after_ms / 1e3,
                    heartbeat_every_ops=args.heartbeat_every,
                    service_config=config,
                ),
                metrics=metrics,
                durability_dir=durability_dir,
                fault_plan=plan,
                drift=drift,
                rebuild=rebuild,
                rebuild_pool=pool,
                tracer=tracer,
            )
        else:
            registry = DatasetRegistry(
                metrics=metrics,
                durability_dir=durability_dir,
                fault_plan=plan,
                rebuild_pool=pool,
            )
            registry.register_dataset(
                "bench", dataset, bits_per_dim=args.bits, drift=drift,
                rebuild=rebuild,
            )
            service_cm = SkylineService(
                registry, config=config, metrics=metrics, tracer=tracer
            )
        spec = WorkloadSpec(
            dataset="bench",
            operations=args.ops,
            read_fraction=args.read_fraction,
            query_pool=args.query_pool,
            batch_size=args.batch_size,
            seed=args.seed,
            timeout_seconds=args.timeout,
            retry_attempts=args.retries,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if plan is not None:
        print(f"faults    : {plan.describe()}")
    if args.shards > 0:
        print(f"shards    : {service_cm.num_shards}")
    router_stats: Optional[dict] = None
    rebuild_states: Optional[dict] = None
    try:
        with service_cm as service:
            report = replay_workload(service, spec)
            if pool is not None:
                if args.shards > 0:
                    service.flush_rebuilds()
                    rebuild_states = service.rebuild_status()
                else:
                    service.registry.flush_rebuilds()
                    rebuild_states = {
                        0: service.registry.rebuild_status("bench")
                    }
            if args.shards > 0:
                stats = {}
                shard_states = service.shard_states()
                router_stats = service.stats()
            else:
                stats = service.admission.stats()
                shard_states = None
    finally:
        if pool is not None:
            pool.close()
        if scratch is not None:
            scratch.cleanup()
    print(f"dataset   : {dataset.name}")
    summary = report.summary()
    for key in (
        "operations", "reads", "writes", "shed", "expired",
        "cache_hits", "final_version", "final_skyline_size",
    ):
        print(f"{key:20s}: {summary[key]}")
    print(f"{'cache_hit_rate':20s}: {summary['cache_hit_rate']:.3f}")
    if plan is not None or args.retries > 1:
        print(f"{'availability':20s}: {report.availability:.4f}")
        print(f"{'retries':20s}: {report.retries}")
        print(
            f"{'degraded':20s}: stale={report.degraded_stale} "
            f"partial={report.degraded_partial}"
        )
        if report.failures:
            parts = ", ".join(
                f"{name}={count}"
                for name, count in sorted(report.failures.items())
            )
            print(f"{'failures':20s}: {parts}")
        for counter in (
            "worker_crashes", "worker_respawns", "requeued",
            "writer_crashes", "writer_auto_recoveries",
            "cache_corrupt", "shard_crashes", "shard_failovers",
            "shard_failover_identical", "shard_failover_divergent",
            "shard_queries_partial", "hedged_subqueries", "hedge_wins",
            "heartbeat_lost", "mutations_rejected_shard_down",
        ):
            value = metrics.counter("serving", counter)
            if value:
                print(f"{counter:20s}: {value}")
    print(f"{'elapsed_seconds':20s}: {report.elapsed_seconds:.3f}")
    print(f"{'throughput_ops/s':20s}: {report.throughput:.1f}")
    for which in ("read", "write"):
        pct = report.latency_percentiles(which)
        print(
            f"{which + '_latency_ms':20s}: "
            f"p50={pct['p50'] * 1e3:.2f} p90={pct['p90'] * 1e3:.2f} "
            f"p99={pct['p99'] * 1e3:.2f}"
        )
    wait = report.queue_wait_percentiles()
    print(
        f"{'queue_wait_ms':20s}: "
        f"p50={wait['p50'] * 1e3:.2f} p90={wait['p90'] * 1e3:.2f} "
        f"p99={wait['p99'] * 1e3:.2f}"
    )
    for klass, s in stats.items():
        print(
            f"{klass + ' admission':20s}: {s['admitted']} admitted, "
            f"{s['rejected']} rejected, {s['expired']} expired"
        )
    if shard_states is not None:
        for sid, state in sorted(shard_states.items()):
            print(
                f"{'shard ' + str(sid):20s}: "
                f"{'down' if state['down'] else 'up'} "
                f"breaker={state['breaker']} "
                f"failovers={state['failovers']} "
                f"identical={state['last_failover_identical']}"
            )
        if report.shard_shed_ratios:
            fairness = report.shed_fairness
            shown = "inf" if fairness == float("inf") else f"{fairness:.2f}"
            print(
                f"{'shed_fairness':20s}: {shown} "
                + " ".join(
                    f"s{sid}={ratio:.3f}"
                    for sid, ratio in sorted(
                        report.shard_shed_ratios.items()
                    )
                )
            )
    if router_stats is not None:
        for cache_name in ("merge_cache", "result_cache"):
            cache_stats = router_stats.get(cache_name)
            if cache_stats:
                parts = " ".join(
                    f"{key}={value}"
                    for key, value in sorted(cache_stats.items())
                )
                print(f"{cache_name:20s}: {parts}")
    if rebuild_states is not None:
        for sid, status in sorted(rebuild_states.items()):
            print(
                f"{'rebuilds ' + str(sid):20s}: "
                f"pooled={status['pooled_rebuilds']} "
                f"superseded={status['pooled_superseded']}"
            )
        print(f"{'rebuild_pool':20s}: {pool.stats()}")
    if args.trace_out:
        count = tracer.export_jsonl(args.trace_out)
        print(f"{'trace':20s}: wrote {count} spans to {args.trace_out}")
    if args.metrics_out:
        count = metrics.export_jsonl(args.metrics_out)
        print(
            f"{'metrics':20s}: wrote {count} records to {args.metrics_out}"
        )
    # SLO gates: a CI job (or operator) asserting the run with the
    # exit code rather than by parsing stdout.
    exit_code = 0
    if (
        args.min_availability is not None
        and report.availability < args.min_availability
    ):
        print(
            f"GATE FAILED: availability {report.availability:.4f} < "
            f"{args.min_availability:.4f}",
            file=sys.stderr,
        )
        exit_code = 1
    if args.max_read_p99_ms is not None:
        read_p99_ms = report.latency_percentiles("read")["p99"] * 1e3
        if read_p99_ms > args.max_read_p99_ms:
            print(
                f"GATE FAILED: read p99 {read_p99_ms:.2f}ms > "
                f"{args.max_read_p99_ms:.2f}ms",
                file=sys.stderr,
            )
            exit_code = 1
    return exit_code


def _cmd_stream_bench(args: argparse.Namespace) -> int:
    import json
    import threading
    import time as time_mod

    import numpy as np

    from repro.observability.metrics import MetricsRegistry
    from repro.serving import DatasetRegistry, DriftPolicy, Query, SkylineService
    from repro.streaming import (
        ContinuousQueryManager,
        FeedConfig,
        IngestFeed,
        SubscriptionHub,
        WindowSpec,
        replay,
    )

    dataset = generate(
        args.dist, args.num_points, args.dimensions, seed=args.seed
    )
    metrics = MetricsRegistry()
    registry = DatasetRegistry(metrics=metrics, keep_versions=4)
    registry.register_dataset(
        "stream", dataset, bits_per_dim=args.bits,
        drift=DriftPolicy.never(),
    )
    hub = SubscriptionHub(metrics=metrics).attach(registry)
    manager = ContinuousQueryManager(metrics=metrics).attach(registry)
    window_spec = (
        WindowSpec.count(args.window) if args.window > 0 else None
    )
    if window_spec is not None:
        manager.register("windowed", "stream", window_spec)

    stop = threading.Event()
    latencies: list = []
    latency_lock = threading.Lock()

    def consume(sub):
        while True:
            event = sub.get(timeout=0.2)
            if event is None:
                if stop.is_set() and sub.pending == 0:
                    return
                continue
            if event.published_at:
                sample = time_mod.perf_counter() - event.published_at
                with latency_lock:
                    latencies.append(sample)
                metrics.observe("streaming.notify_latency_seconds", sample)

    read_ok = [0] * max(args.readers, 1)
    read_fail = [0] * max(args.readers, 1)
    read_cached = [0] * max(args.readers, 1)

    def read_loop(idx, service):
        # Paced like a dashboard poller, not a tight loop — the bench
        # asserts reads stay *available* during ingest, not that reads
        # can saturate the GIL against the writer.
        while not stop.is_set():
            try:
                result = service.query(Query.full("stream"))
                read_ok[idx] += 1
                if result.cached:
                    read_cached[idx] += 1
            except Exception:
                read_fail[idx] += 1
            time_mod.sleep(0.002)

    threads = []
    with SkylineService(registry, metrics=metrics) as service:
        subs = [
            hub.subscribe("stream") for _ in range(max(args.subscribers, 1))
        ]
        slow_subs = [
            hub.subscribe("stream", max_pending=1)
            for _ in range(args.slow_subscribers)
        ]
        for sub in subs:
            thread = threading.Thread(
                target=consume, args=(sub,), daemon=True
            )
            thread.start()
            threads.append(thread)
        for idx in range(args.readers):
            thread = threading.Thread(
                target=read_loop, args=(idx, service), daemon=True
            )
            thread.start()
            threads.append(thread)

        feed = IngestFeed(
            registry,
            "stream",
            admission=service.admission,
            config=FeedConfig(
                batch_size=args.batch_size, on_overload=args.on_overload
            ),
            window=window_spec,
            metrics=metrics,
        )
        rng = np.random.default_rng(args.seed)
        top = 2**args.bits
        records = rng.integers(
            0, top, size=(args.records, args.dimensions)
        ).astype(np.float64)
        started = time_mod.perf_counter()
        for row in records:
            feed.append(row)
        feed.flush()
        ingest_seconds = time_mod.perf_counter() - started
        stop.set()
        for thread in threads:
            thread.join(10.0)
    # Soundness: every slow (coalescing) subscriber's surviving events
    # still reconstruct the final skyline id-set exactly.
    final_sky = frozenset(int(i) for i in registry.snapshot("stream").sky_ids)
    sound = True
    for sub in slow_subs:
        events = []
        while True:
            event = sub.get(timeout=0.01)
            if event is None:
                break
            events.append(event)
        got, _ = replay(events, sub.start_sky_ids, sub.start_version)
        sound = sound and got == final_sky

    ingest_rate = args.records / ingest_seconds if ingest_seconds else 0.0
    summary = metrics.histogram_summary("streaming.notify_latency_seconds")
    with latency_lock:
        samples = sorted(latencies)
    p99 = samples[int(0.99 * (len(samples) - 1))] if samples else 0.0
    reads = sum(read_ok)
    fails = sum(read_fail)
    counters = metrics.counters_as_dict().get("streaming", {})
    print(f"records             : {args.records}")
    print(f"batches             : {feed.batches_flushed}")
    print(f"final_version       : {registry.version('stream')}")
    print(f"ingest_seconds      : {ingest_seconds:.3f}")
    print(f"ingest_records_per_s: {ingest_rate:.1f}")
    print(f"notify_p50_ms       : {summary['p50'] * 1e3:.2f}")
    print(f"notify_p99_ms       : {p99 * 1e3:.2f}")
    print(f"notifications       : {len(samples)}")
    print(f"diffs_published     : {counters.get('diffs_published', 0)}")
    print(f"diffs_coalesced     : {counters.get('diffs_coalesced', 0)}")
    print(f"feed_batches_shed   : {counters.get('feed_batches_shed', 0)}")
    print(f"expired_records     : {feed.records_expired}")
    print(f"concurrent_reads    : {reads} ok, {fails} failed, "
          f"{sum(read_cached)} cached")
    print(f"replay_sound        : {sound}")
    if args.latency_out:
        with open(args.latency_out, "w") as handle:
            for i, sample in enumerate(samples):
                handle.write(json.dumps({
                    "sample": i,
                    "notify_latency_ms": sample * 1e3,
                }))
                handle.write("\n")
        print(f"latency             : wrote {len(samples)} samples to "
              f"{args.latency_out}")
    if args.metrics_out:
        count = metrics.export_jsonl(args.metrics_out)
        print(f"metrics             : wrote {count} records to "
              f"{args.metrics_out}")
    exit_code = 0
    if not sound:
        print("GATE FAILED: diff replay did not reconstruct the final "
              "skyline", file=sys.stderr)
        exit_code = 1
    if (
        args.min_ingest_per_sec is not None
        and ingest_rate < args.min_ingest_per_sec
    ):
        print(
            f"GATE FAILED: ingest {ingest_rate:.1f} records/s < "
            f"{args.min_ingest_per_sec:.1f}",
            file=sys.stderr,
        )
        exit_code = 1
    if args.max_p99_notify_ms is not None and samples:
        if p99 * 1e3 > args.max_p99_notify_ms:
            print(
                f"GATE FAILED: notify p99 {p99 * 1e3:.2f}ms > "
                f"{args.max_p99_notify_ms:.2f}ms",
                file=sys.stderr,
            )
            exit_code = 1
    return exit_code


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "estimate":
        return _cmd_estimate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "stream-bench":
        return _cmd_stream_bench(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    return _cmd_list()


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.bench.reproduce import run_reproduction

    report = run_reproduction()
    markdown = report.render_markdown()
    with open(args.out, "w") as handle:
        handle.write(markdown)
    print(markdown)
    print(f"report written to {args.out}")
    return 0 if report.passed == report.total else 1


if __name__ == "__main__":
    sys.exit(main())
