"""Random (round-robin by id) partitioning [18].

Every chunk gets the same distribution as the whole dataset — perfectly
balanced input sizes, but no pruning power at all: each worker's local
skyline is a full skyline of a random subset, so the candidate set is
large and the merge phase does almost all the work.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import PartitionRule, Partitioner
from repro.zorder.encoding import ZGridCodec


class RandomRule(PartitionRule):
    """Routes point ``id`` to group ``id % M`` — deterministic and
    reproducible from the record itself, like a hash partitioner."""

    def __init__(self, num_groups: int) -> None:
        self._num_groups = num_groups

    @property
    def num_groups(self) -> int:
        return self._num_groups

    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        return (np.asarray(ids, dtype=np.int64) % self._num_groups).astype(
            np.int64
        )


class RandomPartitioner(Partitioner):
    """Fits a :class:`RandomRule` (nothing to learn from the sample)."""

    name = "random"

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> RandomRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        return RandomRule(num_groups)
