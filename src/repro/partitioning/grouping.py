"""Heuristic partition grouping — ZHG (Algorithm 1, §4.2).

Naive-Z balances *input* sizes but not *skyline* sizes: partitions near
the dominance frontier carry most skyline points, and the workers that
receive them straggle (local skyline cost is bound by the number of
skyline points).  ZHG therefore:

1. over-partitions the sample into ``M * delta`` Z-ranges (``delta`` is
   the partition expansion factor, > 1);
2. computes the sample skyline and counts skyline points per partition;
3. *redistributes*: partitions holding more than ``|S|/M`` sample skyline
   points are split further at skyline-quantile Z-addresses;
4. scans partitions in decreasing skyline count, greedily packing them
   into groups under two capacity constraints — sample points per group
   (``tcons = |P|/M``) and skyline points per group (``scons = |S|/M``).

The result is a :class:`~repro.partitioning.zcurve.ZCurveRule` whose
group map sends several Z-ranges to each reducer, with both constraints
approximately equalised (Proposition 1).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.algorithms.zs import zs_skyline
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import Partitioner
from repro.partitioning.zcurve import ZCurveRule, equidepth_pivots
from repro.zorder.encoding import ZGridCodec

DEFAULT_EXPANSION = 4


@dataclass
class SamplePartitionStats:
    """Per-partition statistics of the sample used by both grouping
    algorithms: Z-range pivots, sample-point and skyline counts, and the
    bounding box of each partition's sample points (used by ZDG's
    dominance-volume matrix — much tighter than the prefix-aligned
    RZ-region when a Z-range crosses a high curve bit)."""

    pivots: List[int]
    point_counts: np.ndarray
    skyline_counts: np.ndarray
    sample_size: int
    skyline_size: int
    box_min: np.ndarray
    box_max: np.ndarray

    @property
    def num_partitions(self) -> int:
        return len(self.pivots) + 1


def range_counts(sorted_values: Sequence[int], pivots: Sequence[int]) -> np.ndarray:
    """Count sorted values falling into each pivot-delimited range."""
    edges = [bisect.bisect_left(sorted_values, p) for p in pivots]
    edges = [0] + edges + [len(sorted_values)]
    return np.diff(np.asarray(edges, dtype=np.int64))


def compute_sample_stats(
    sample: Dataset, codec: ZGridCodec, parts: int, expand_heavy: bool = True
) -> SamplePartitionStats:
    """Partition the sample along the Z-curve and attach skyline counts.

    When ``expand_heavy`` is set, partitions whose skyline count exceeds
    the per-group budget are split at skyline-quantile Z-addresses (the
    paper's ``redistribute``); the budget here is ``|S| / parts`` scaled
    to the original group count by the caller's choice of ``parts``.
    """
    zlist = codec.encode_grid(sample.points.astype(np.int64))
    sorted_z = sorted(zlist)
    pivots = equidepth_pivots(sorted_z, parts)

    sky_points, _sky_ids = zs_skyline(sample.points, sample.ids, None, codec)
    sky_z = sorted(codec.encode_grid(sky_points.astype(np.int64)))

    if expand_heavy and sky_z:
        # redistribute(): split partitions overloaded with skyline points.
        scons = max(1, math.ceil(len(sky_z) / parts))
        pivots = _split_heavy_partitions(pivots, sky_z, scons, codec)

    point_counts = range_counts(sorted_z, pivots)
    skyline_counts = range_counts(sky_z, pivots)
    box_min, box_max = _partition_boxes(
        sample.points, zlist, pivots, len(point_counts)
    )
    return SamplePartitionStats(
        pivots=pivots,
        point_counts=point_counts,
        skyline_counts=skyline_counts,
        sample_size=sample.size,
        skyline_size=len(sky_z),
        box_min=box_min,
        box_max=box_max,
    )


def _partition_boxes(
    points: np.ndarray,
    zlist: Sequence[int],
    pivots: Sequence[int],
    num_partitions: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-partition bounding boxes of the sample points.

    Empty partitions get an inverted box (``min > max``) that callers
    must treat as "no information".
    """
    d = points.shape[1]
    box_min = np.full((num_partitions, d), np.inf)
    box_max = np.full((num_partitions, d), -np.inf)
    pids = np.fromiter(
        (bisect.bisect_right(pivots, z) for z in zlist),
        dtype=np.int64,
        count=len(zlist),
    )
    for pid in np.unique(pids):
        block = points[pids == pid]
        box_min[pid] = block.min(axis=0)
        box_max[pid] = block.max(axis=0)
    return box_min, box_max


def _split_heavy_partitions(
    pivots: List[int], sky_z: List[int], scons: int, codec: ZGridCodec
) -> List[int]:
    """Insert extra pivots so no partition holds more than ``scons``
    sample skyline points (where distinct Z-addresses allow)."""
    new_pivots = set(pivots)
    bounds = [0] + list(pivots) + [codec.max_zaddress + 1]
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        start = bisect.bisect_left(sky_z, lo)
        end = bisect.bisect_left(sky_z, hi)
        inside = end - start
        if inside <= scons:
            continue
        shards = math.ceil(inside / scons)
        local = sky_z[start:end]
        for extra in equidepth_pivots(local, shards):
            if lo < extra < hi:
                new_pivots.add(extra)
    return sorted(new_pivots)


def greedy_pack(
    order: Sequence[int],
    point_counts: np.ndarray,
    skyline_counts: np.ndarray,
    tcons: int,
    scons: int,
) -> np.ndarray:
    """Sequential greedy packing under the two capacity constraints.

    Scans partitions in the given order, filling one open group; a
    partition that would push the open group past either cap closes it
    and opens the next (Algorithm 1, lines 10-19).  Returns the group id
    per partition.
    """
    group_map = np.full(len(point_counts), -1, dtype=np.int64)
    gid = 0
    tcount = 0
    scount = 0
    opened = False
    for pid in order:
        t = int(point_counts[pid])
        s = int(skyline_counts[pid])
        if opened and (tcount + t > tcons or scount + s > scons):
            gid += 1
            tcount = 0
            scount = 0
        group_map[pid] = gid
        tcount += t
        scount += s
        opened = True
    return group_map


class HeuristicGroupingPartitioner(Partitioner):
    """ZHG: Z-order partitioning + Algorithm 1 heuristic grouping."""

    name = "zhg"

    def __init__(self, expansion: int = DEFAULT_EXPANSION) -> None:
        if expansion < 1:
            raise ConfigurationError("expansion factor delta must be >= 1")
        self.expansion = expansion

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> ZCurveRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        stats = compute_sample_stats(
            sample, codec, parts=num_groups * self.expansion
        )
        tcons = max(1, math.ceil(stats.sample_size / num_groups))
        scons = max(1, math.ceil(max(stats.skyline_size, 1) / num_groups))
        # Decreasing skyline count; ties broken by partition size so big
        # partitions are placed while groups are still empty.
        order = np.lexsort(
            (-stats.point_counts, -stats.skyline_counts)
        )
        group_map = greedy_pack(
            order, stats.point_counts, stats.skyline_counts, tcons, scons
        )
        return ZCurveRule(codec, stats.pivots, group_map=group_map)
