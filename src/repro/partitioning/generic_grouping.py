"""Dominance grouping generalised to arbitrary partitioners.

The paper applies its grouping algorithms to Z-curve partitions, whose
RZ-regions make region reasoning natural.  But the grouping *idea* —
over-partition, then pack partitions that dominate each other into the
same reducer group under size/skyline caps — only needs per-partition
sample statistics (counts and bounding boxes), which any partitioner
can provide.  This module wraps Grid/Angle/any rule with the same
greedy dominance-volume grouping, enabling the ablation "is the win the
Z-curve, the grouping, or both?" (see ``benchmarks/test_ablations.py``).

Unlike ZDG there is no *pruning* of dominated partitions: sample
bounding boxes do not bound unseen points, so dropping would be unsafe.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.zs import zs_skyline
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import PartitionRule, Partitioner, get_partitioner
from repro.partitioning.dominance_grouping import (
    DominanceGroupingPartitioner,
    build_dominance_matrix,
)
from repro.zorder.encoding import ZGridCodec
from repro.zorder.rzregion import RZRegion

DEFAULT_EXPANSION = 4


class GroupedRule(PartitionRule):
    """Wraps a base rule with a partition-to-group map."""

    def __init__(self, base: PartitionRule, group_map: Sequence[int]) -> None:
        self.base = base
        gm = np.asarray(group_map, dtype=np.int64)
        if gm.shape != (base.num_groups,):
            raise ConfigurationError(
                "group_map must have one entry per base partition"
            )
        if gm.min() < 0:
            raise ConfigurationError("generic grouping never drops")
        self._group_map = gm
        self._num_groups = int(gm.max()) + 1

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def group_map(self) -> np.ndarray:
        return self._group_map

    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        pids = self.base.assign_groups(points, ids, zaddresses)
        return self._group_map[pids]

    def describe(self) -> dict:
        return {
            "rule": type(self).__name__,
            "base": type(self.base).__name__,
            "num_partitions": self.base.num_groups,
            "num_groups": self._num_groups,
        }


class GroupedPartitioner(Partitioner):
    """Over-partition with any base partitioner, then dominance-group."""

    def __init__(
        self, base_name: str, expansion: int = DEFAULT_EXPANSION
    ) -> None:
        if expansion < 1:
            raise ConfigurationError("expansion factor must be >= 1")
        self.base_name = base_name
        self.expansion = expansion
        self.name = f"{base_name}-grouped"

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> GroupedRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        base = get_partitioner(self.base_name).fit(
            sample, codec, num_groups * self.expansion, seed=seed
        )
        pids = base.assign_groups(sample.points, sample.ids)
        num_partitions = base.num_groups

        _sky_points, sky_ids = zs_skyline(
            sample.points, sample.ids, None, codec
        )
        point_counts = np.bincount(
            pids[pids >= 0], minlength=num_partitions
        )
        sky_mask = np.isin(sample.ids, sky_ids)
        skyline_counts = np.bincount(
            pids[sky_mask & (pids >= 0)], minlength=num_partitions
        )

        regions = []
        for pid in range(num_partitions):
            block = sample.points[pids == pid]
            if block.shape[0]:
                regions.append(
                    RZRegion.from_corners(
                        0, 0, block.min(axis=0), block.max(axis=0)
                    )
                )
            else:
                zero = np.zeros(sample.dimensions)
                regions.append(RZRegion.from_corners(0, 0, zero, zero))
        dm = build_dominance_matrix(regions)
        # Empty partitions carry no signal; zero their affinities.
        empty = point_counts == 0
        dm[empty, :] = 0.0
        dm[:, empty] = 0.0
        gamma = dm.sum(axis=1)

        tcons = max(1, math.ceil(sample.size / num_groups))
        scons = max(1, math.ceil(max(len(sky_ids), 1) / num_groups))
        group_map = DominanceGroupingPartitioner._greedy_group(
            point_counts,
            skyline_counts,
            dm,
            gamma,
            np.zeros(num_partitions, dtype=bool),
            tcons,
            scons,
        )
        return GroupedRule(base, group_map)
