"""Grid-based partitioning [9], [11].

Normalises the data (projection onto the sample's bounding box, following
the paper's use of the projection-based method of [7]) and overlays an
equal-width grid on a prefix of the dimensions, splitting one dimension at
a time until the number of cells reaches the requested partition count.

This is the scheme whose *load balance degrades with dimensionality* in
the paper's Figure 7: with ``M = 32`` partitions only ``log2(32) = 5``
dimensions can be split once each, and equal-width cells carry very
different point counts under non-uniform data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import PartitionRule, Partitioner
from repro.zorder.encoding import ZGridCodec


def splits_for(num_groups: int, dimensions: int) -> List[int]:
    """Per-dimension split counts whose product is >= ``num_groups``.

    Doubles one dimension's split count at a time, cycling through the
    dimensions, exactly like recursive binary grid division.
    """
    splits = [1] * dimensions
    k = 0
    while int(np.prod(splits)) < num_groups:
        splits[k % dimensions] *= 2
        k += 1
    return splits


class GridRule(PartitionRule):
    """Equal-width grid cells over normalised coordinates."""

    def __init__(
        self, lows: np.ndarray, highs: np.ndarray, splits: Sequence[int]
    ) -> None:
        self._lo = np.asarray(lows, dtype=np.float64)
        span = np.asarray(highs, dtype=np.float64) - self._lo
        span[span == 0.0] = 1.0
        self._span = span
        self._splits = np.asarray(splits, dtype=np.int64)
        # Mixed-radix place values for flattening cell coordinates.
        self._places = np.concatenate(
            [np.cumprod(self._splits[::-1])[-2::-1], [1]]
        ).astype(np.int64)
        self._num_groups = int(np.prod(self._splits))

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def splits(self) -> np.ndarray:
        return self._splits

    def cell_of(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates per point, shape ``(n, d)``."""
        scaled = (points - self._lo) / self._span
        cells = np.floor(scaled * self._splits).astype(np.int64)
        return np.clip(cells, 0, self._splits - 1)

    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        cells = self.cell_of(np.asarray(points, dtype=np.float64))
        return (cells * self._places).sum(axis=1)

    def cell_of_gid(self, gid: int) -> np.ndarray:
        """Inverse of the mixed-radix flattening: group id -> cell coords."""
        coords = np.empty(len(self._splits), dtype=np.int64)
        rest = int(gid)
        for k, place in enumerate(self._places):
            coords[k], rest = divmod(rest, int(place))
        return coords


class GridPartitioner(Partitioner):
    """Learns grid bounds from the sample and splits dimensions binarily."""

    name = "grid"

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> GridRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        lo, hi = sample.bounds()
        # The codec's grid is the true data space; widen the sample box to
        # it so out-of-sample points still land in edge cells.
        lo = np.minimum(lo, 0.0)
        hi = np.maximum(hi, float(codec.cells_per_dim - 1))
        splits = splits_for(num_groups, sample.dimensions)
        return GridRule(lo, hi, splits)
