"""Angle-based partitioning [8], [19].

Transforms points from Cartesian to hyperspherical coordinates and
partitions on the *angles* only: skyline points of typical workloads
cluster around the origin, so slicing by angle spreads them across
workers much more evenly than axis-aligned grids — in low dimensions.

We implement the *dynamic* variant the paper says it used: the angular
boundaries are sample quantiles, so each partition receives the same
number of sample points.  Splits are spread over the angle dimensions the
same mixed-radix way as the grid scheme.

The hyperspherical transform (for minimisation skylines, angles taken
from the origin):

    phi_k = atan2( sqrt(x_{k+1}^2 + ... + x_d^2), x_k ),  k = 1..d-1
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import PartitionRule, Partitioner
from repro.partitioning.grid import splits_for
from repro.zorder.encoding import ZGridCodec


def hyperspherical_angles(points: np.ndarray) -> np.ndarray:
    """Angular coordinates of each point, shape ``(n, d-1)``.

    For 1-D data there are no angles; callers must not ask for angle
    partitioning of 1-D data.
    """
    pts = np.asarray(points, dtype=np.float64)
    d = pts.shape[1]
    squared = pts**2
    # tail_norm[:, k] = sqrt(sum_{j > k} x_j^2)
    tail = np.sqrt(
        np.concatenate(
            [
                np.cumsum(squared[:, ::-1], axis=1)[:, ::-1][:, 1:],
                np.zeros((pts.shape[0], 1)),
            ],
            axis=1,
        )
    )
    angles = np.arctan2(tail[:, : d - 1], pts[:, : d - 1])
    return angles


class AngleRule(PartitionRule):
    """Quantile boundaries over a subset of angle dimensions."""

    def __init__(
        self, boundaries: List[np.ndarray], angle_dims: List[int]
    ) -> None:
        if len(boundaries) != len(angle_dims):
            raise ConfigurationError("one boundary array per split dimension")
        self._boundaries = boundaries
        self._angle_dims = angle_dims
        self._splits = np.asarray(
            [len(b) + 1 for b in boundaries], dtype=np.int64
        )
        self._places = np.concatenate(
            [np.cumprod(self._splits[::-1])[-2::-1], [1]]
        ).astype(np.int64)
        self._num_groups = int(np.prod(self._splits))

    @property
    def num_groups(self) -> int:
        return self._num_groups

    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        angles = hyperspherical_angles(np.asarray(points, dtype=np.float64))
        n = angles.shape[0]
        gids = np.zeros(n, dtype=np.int64)
        for place, dim, bounds in zip(
            self._places, self._angle_dims, self._boundaries
        ):
            cell = np.searchsorted(bounds, angles[:, dim], side="right")
            gids += place * cell
        return gids


class AnglePartitioner(Partitioner):
    """Learns quantile angular boundaries from the sample."""

    name = "angle"

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> AngleRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        if sample.dimensions < 2:
            raise ConfigurationError(
                "angle partitioning needs at least 2 dimensions"
            )
        n_angles = sample.dimensions - 1
        splits = splits_for(num_groups, n_angles)
        angles = hyperspherical_angles(sample.points)
        boundaries: List[np.ndarray] = []
        angle_dims: List[int] = []
        for dim, s in enumerate(splits):
            if s <= 1:
                continue
            qs = np.linspace(0.0, 1.0, s + 1)[1:-1]
            boundaries.append(np.quantile(angles[:, dim], qs))
            angle_dims.append(dim)
        if not boundaries:
            boundaries = [np.empty(0)]
            angle_dims = [0]
        return AngleRule(boundaries, angle_dims)
