"""Partitioner protocol and shared helpers.

A :class:`Partitioner` is fitted on a *sample* dataset (phase 0 runs on
the master node) and yields a :class:`PartitionRule`.  The rule is the
small, serialisable object that the paper ships to every mapper through
the distributed cache; it routes full-data points to *groups* — the unit
of reducer work.  For ungrouped schemes (grid, angle, random, naive-z)
group ids coincide with partition ids.

A group id of ``DROPPED`` (-1) means the point's partition was pruned by
dominance-based grouping (its whole RZ-region is dominated by another
partition, so none of its points can be skyline points) and the mapper
discards it — Algorithm 3's "if m is not NULL" check.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.zorder.encoding import ZGridCodec

DROPPED = -1


class PartitionRule(abc.ABC):
    """A fitted routing rule from points to group ids."""

    @property
    @abc.abstractmethod
    def num_groups(self) -> int:
        """Number of groups (= reducer tasks) the rule routes to."""

    @abc.abstractmethod
    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Group id per point (``DROPPED`` for pruned partitions).

        ``zaddresses`` may be supplied by callers that already encoded the
        points (the phase-1 mapper does) to avoid re-encoding.
        """

    def describe(self) -> Dict[str, object]:
        """Small diagnostic summary for reports."""
        return {"rule": type(self).__name__, "num_groups": self.num_groups}


class Partitioner(abc.ABC):
    """Learns a :class:`PartitionRule` from a sample dataset."""

    #: short name used in plan strings ("grid", "angle", "zdg", ...)
    name: str = "base"

    @abc.abstractmethod
    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> PartitionRule:
        """Learn a routing rule targeting ``num_groups`` reducer tasks.

        ``sample`` must already be grid-snapped with ``codec`` (the
        pipeline quantises once up front).  Grouped strategies may return
        a rule whose actual ``num_groups`` differs slightly from the
        request — the paper's greedy grouping opens a new group whenever a
        capacity constraint trips.
        """


def assignment_counts(gids: np.ndarray, num_groups: int) -> np.ndarray:
    """Histogram of points per group, ignoring dropped points."""
    valid = gids[gids >= 0]
    return np.bincount(valid, minlength=num_groups)


def load_imbalance(gids: np.ndarray, num_groups: int) -> float:
    """Max-to-mean ratio of points per group (1.0 = perfectly balanced).

    This is the skew statistic §6.2 is about: the straggling reducer's
    share relative to the fair share ``|P| / M``.
    """
    counts = assignment_counts(gids, num_groups)
    if counts.size == 0 or counts.sum() == 0:
        return 1.0
    mean = counts.sum() / counts.size
    return float(counts.max() / mean)


def _registry() -> Dict[str, object]:
    import functools

    from repro.partitioning.angle import AnglePartitioner
    from repro.partitioning.dominance_grouping import (
        DominanceGroupingPartitioner,
    )
    from repro.partitioning.generic_grouping import GroupedPartitioner
    from repro.partitioning.grid import GridPartitioner
    from repro.partitioning.kdtree import KDTreePartitioner
    from repro.partitioning.grouping import HeuristicGroupingPartitioner
    from repro.partitioning.random_part import RandomPartitioner
    from repro.partitioning.zcurve import ZCurvePartitioner

    return {
        "random": RandomPartitioner,
        "grid": GridPartitioner,
        "angle": AnglePartitioner,
        "naive-z": ZCurvePartitioner,
        "zhg": HeuristicGroupingPartitioner,
        "zdg": DominanceGroupingPartitioner,
        "kdtree": KDTreePartitioner,
        "grid-grouped": functools.partial(GroupedPartitioner, "grid"),
        "angle-grouped": functools.partial(GroupedPartitioner, "angle"),
        "kdtree-grouped": functools.partial(GroupedPartitioner, "kdtree"),
    }


def get_partitioner(name: str, **kwargs: object) -> Partitioner:
    """Instantiate a partitioner by its paper-style name."""
    key = name.strip().lower()
    registry = _registry()
    if key not in registry:
        raise ConfigurationError(
            f"unknown partitioner {name!r}; choose one of {sorted(registry)}"
        )
    return registry[key](**kwargs)  # type: ignore[no-any-return]


def available_partitioners() -> List[str]:
    """Names accepted by :func:`get_partitioner`."""
    return sorted(_registry())
