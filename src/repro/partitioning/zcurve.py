"""Naive Z-order-curve partitioning (§4.1) and shared Z-rule machinery.

Points are ordered by Z-address; partition boundaries ("pivots") are
equi-depth quantiles of the *sample's* Z-addresses, which minimises the
variance of partition sizes — the paper's data-skew objective
``sum_m (|Pt_m| - |P|/M)^2`` — to the extent the sample reflects the
data.  Every partition is a contiguous Z-address interval and therefore
has a well-defined RZ-region, which is what the grouping algorithms
reason about.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError, PartitioningError
from repro.partitioning.base import DROPPED, PartitionRule, Partitioner
from repro.zorder.encoding import ZGridCodec
from repro.zorder.rzregion import RZRegion


def equidepth_pivots(sorted_z: Sequence[int], parts: int) -> List[int]:
    """Interior pivots splitting a sorted Z-address list into ``parts``
    equal-count ranges.  Duplicates are removed, so fewer than
    ``parts - 1`` pivots may come back for heavily tied data."""
    n = len(sorted_z)
    if parts <= 1 or n == 0:
        return []
    pivots: List[int] = []
    for i in range(1, parts):
        pivots.append(sorted_z[min(n - 1, (i * n) // parts)])
    unique = sorted(set(pivots))
    # A pivot equal to the global minimum would create an empty leading
    # partition; harmless, but drop it for tidiness.
    return [p for p in unique if p > sorted_z[0]]


class ZCurveRule(PartitionRule):
    """Contiguous Z-address ranges, optionally mapped onto groups.

    ``group_map[pid]`` is the group id of partition ``pid`` or
    ``DROPPED`` when dominance grouping pruned the partition outright.
    Without a group map, groups coincide with partitions.
    """

    def __init__(
        self,
        codec: ZGridCodec,
        pivots: Sequence[int],
        group_map: Optional[Sequence[int]] = None,
    ) -> None:
        self.codec = codec
        self.pivots = list(pivots)
        if any(
            self.pivots[i] >= self.pivots[i + 1]
            for i in range(len(self.pivots) - 1)
        ):
            raise PartitioningError("pivots must be strictly increasing")
        self._num_partitions = len(self.pivots) + 1
        # Pivots in the kernel's native form so mapper-side routing can
        # binary-search whole z-batches without touching Python ints.
        kernel = codec.kernel
        if kernel.fast_path:
            self._pivots_native = np.asarray(self.pivots, dtype=np.uint64)
        else:
            self._pivots_native = kernel.from_ints(self.pivots)
        if group_map is None:
            self._group_map = np.arange(self._num_partitions, dtype=np.int64)
            self._num_groups = self._num_partitions
        else:
            gm = np.asarray(group_map, dtype=np.int64)
            if gm.shape != (self._num_partitions,):
                raise PartitioningError(
                    "group_map must have one entry per partition"
                )
            valid = gm[gm >= 0]
            if valid.size == 0:
                raise PartitioningError("group_map drops every partition")
            self._group_map = gm
            self._num_groups = int(valid.max()) + 1

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    @property
    def num_groups(self) -> int:
        return self._num_groups

    @property
    def group_map(self) -> np.ndarray:
        return self._group_map

    def partition_of(self, zaddresses: Union[Sequence[int], np.ndarray]) -> np.ndarray:
        """Partition id per Z-address (binary search over the pivots —
        Algorithm 3's ``searchPT``).

        Accepts Python ints or a native kernel batch; native batches are
        resolved with one vectorised ``searchsorted`` (fast path) or a
        per-pivot lexicographic sweep (wide path) — never a per-address
        Python ``bisect``.
        """
        kernel = self.codec.kernel
        if kernel.is_native(zaddresses):
            if kernel.fast_path:
                return np.searchsorted(
                    self._pivots_native, zaddresses, side="right"
                ).astype(np.int64)
            return self._partition_of_wide(zaddresses)
        pivots = self.pivots
        return np.fromiter(
            (bisect.bisect_right(pivots, z) for z in zaddresses),
            dtype=np.int64,
            count=len(zaddresses),
        )

    def _partition_of_wide(self, zbatch: np.ndarray) -> np.ndarray:
        """``bisect_right`` of packed-byte addresses: count, per row, the
        pivots that are <= the row (rows compare lexicographically)."""
        n = zbatch.shape[0]
        counts = np.zeros(n, dtype=np.int64)
        rows = np.arange(n)
        for pivot_row in self._pivots_native:
            diff = zbatch != pivot_row[None, :]
            has_diff = diff.any(axis=1)
            first = np.argmax(diff, axis=1)
            row_byte = zbatch[rows, first]
            counts += ~has_diff | (row_byte > pivot_row[first])
        return counts

    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Union[Sequence[int], np.ndarray]] = None,
    ) -> np.ndarray:
        if zaddresses is None:
            zaddresses = self.codec.encode_grid_batch(
                np.asarray(points, dtype=np.float64).astype(np.int64)
            )
        pids = self.partition_of(zaddresses)
        return self._group_map[pids]

    def zrange(self, pid: int) -> Tuple[int, int]:
        """Inclusive Z-address interval ``[lo, hi]`` of a partition."""
        if not (0 <= pid < self._num_partitions):
            raise PartitioningError(f"partition id {pid} out of range")
        lo = 0 if pid == 0 else self.pivots[pid - 1]
        hi = (
            self.codec.max_zaddress
            if pid == self._num_partitions - 1
            else self.pivots[pid] - 1
        )
        return lo, hi

    def region(self, pid: int) -> RZRegion:
        """RZ-region covering a partition's Z-address interval."""
        lo, hi = self.zrange(pid)
        return RZRegion(self.codec, lo, hi)

    def regions(self) -> List[RZRegion]:
        """RZ-regions of all partitions in pid order."""
        return [self.region(pid) for pid in range(self._num_partitions)]

    def describe(self) -> dict:
        dropped = int((self._group_map == DROPPED).sum())
        return {
            "rule": type(self).__name__,
            "num_partitions": self._num_partitions,
            "num_groups": self._num_groups,
            "dropped_partitions": dropped,
        }


class ZCurvePartitioner(Partitioner):
    """Naive-Z: equi-depth Z-ranges, one group per partition (§4.1)."""

    name = "naive-z"

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> ZCurveRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        zbatch = codec.encode_grid_batch(sample.points.astype(np.int64))
        sorted_z = codec.kernel.to_int_list(zbatch[codec.kernel.argsort(zbatch)])
        pivots = equidepth_pivots(sorted_z, num_groups)
        return ZCurveRule(codec, pivots)
