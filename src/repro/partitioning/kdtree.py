"""kd-tree (median-split) partitioning.

The paper's §3.3 lists quad-tree-based partitioning [20] among the
schemes that lose balance in high dimensions.  The practical variant —
a kd-tree that repeatedly splits each region at the sample median of
its widest dimension — *is* balanced on the sample by construction, but
like the grid it balances *input counts*, not skyline counts, so it
still exhibits the straggler problem grouping solves.  Included as a
fourth spatial baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import PartitionRule, Partitioner
from repro.zorder.encoding import ZGridCodec


@dataclass
class _Split:
    """Internal node: route by comparing one coordinate to a threshold."""

    dim: int
    threshold: float
    below: "KDNode"
    above: "KDNode"


@dataclass
class _Leaf:
    """Leaf node: a partition id."""

    pid: int


KDNode = Union[_Split, _Leaf]


class KDTreeRule(PartitionRule):
    """A fitted kd-tree of median splits."""

    def __init__(self, root: KDNode, num_groups: int) -> None:
        self._root = root
        self._num_groups = num_groups

    @property
    def num_groups(self) -> int:
        return self._num_groups

    def assign_groups(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        zaddresses: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        out = np.empty(points.shape[0], dtype=np.int64)
        # Iterative vectorised descent: (node, row indices) worklist.
        stack: List = [(self._root, np.arange(points.shape[0]))]
        while stack:
            node, idx = stack.pop()
            if idx.size == 0:
                continue
            if isinstance(node, _Leaf):
                out[idx] = node.pid
                continue
            below = points[idx, node.dim] <= node.threshold
            stack.append((node.below, idx[below]))
            stack.append((node.above, idx[~below]))
        return out

    def depth(self) -> int:
        """Tree depth (root = 0 for a single leaf)."""

        def walk(node: KDNode) -> int:
            if isinstance(node, _Leaf):
                return 0
            return 1 + max(walk(node.below), walk(node.above))

        return walk(self._root)


class KDTreePartitioner(Partitioner):
    """Learns median splits from the sample, widest dimension first."""

    name = "kdtree"

    def fit(
        self,
        sample: Dataset,
        codec: ZGridCodec,
        num_groups: int,
        seed: int = 0,
    ) -> KDTreeRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        next_pid = [0]

        def build(rows: np.ndarray, budget: int) -> KDNode:
            if budget <= 1 or rows.shape[0] <= 1:
                pid = next_pid[0]
                next_pid[0] += 1
                return _Leaf(pid)
            spans = rows.max(axis=0) - rows.min(axis=0)
            dim = int(np.argmax(spans))
            if spans[dim] == 0.0:
                pid = next_pid[0]
                next_pid[0] += 1
                return _Leaf(pid)
            threshold = float(np.median(rows[:, dim]))
            below_mask = rows[:, dim] <= threshold
            # A degenerate median (all rows on one side) cannot split.
            if below_mask.all() or not below_mask.any():
                threshold = float(rows[:, dim].mean())
                below_mask = rows[:, dim] <= threshold
                if below_mask.all() or not below_mask.any():
                    pid = next_pid[0]
                    next_pid[0] += 1
                    return _Leaf(pid)
            below_budget = budget // 2
            above_budget = budget - below_budget
            below = build(rows[below_mask], below_budget)
            above = build(rows[~below_mask], above_budget)
            return _Split(dim, threshold, below, above)

        root = build(sample.points, num_groups)
        return KDTreeRule(root, next_pid[0])
