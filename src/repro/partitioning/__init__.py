"""Data partitioning and partition grouping (the paper's §4).

A *partitioner* learns a :class:`~repro.partitioning.base.PartitionRule`
from a sample of the data (phase 0); the rule then routes every full-data
point to a partition and — for the grouped Z-order strategies — to a
*group*, the unit of reducer work:

* ``random`` — round-robin by id [18];
* ``grid`` — equal-width grid over the first dimensions [9, 11];
* ``angle`` — quantile grid over hyperspherical angles [8];
* ``naive-z`` — equi-depth ranges along the Z-order curve (§4.1);
* ``zhg`` — Naive-Z + heuristic partition grouping (Algorithm 1, §4.2);
* ``zdg`` — Naive-Z + dominance-based grouping (Algorithm 2, §4.3),
  which additionally *prunes* partitions fully dominated by another
  partition's RZ-region.
"""

from repro.partitioning.angle import AnglePartitioner
from repro.partitioning.base import (
    PartitionRule,
    Partitioner,
    assignment_counts,
    get_partitioner,
)
from repro.partitioning.dominance_grouping import DominanceGroupingPartitioner
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.grouping import HeuristicGroupingPartitioner
from repro.partitioning.random_part import RandomPartitioner
from repro.partitioning.sampling import reservoir_sample, reservoir_sample_indices
from repro.partitioning.zcurve import ZCurvePartitioner, ZCurveRule

__all__ = [
    "AnglePartitioner",
    "DominanceGroupingPartitioner",
    "GridPartitioner",
    "HeuristicGroupingPartitioner",
    "PartitionRule",
    "Partitioner",
    "RandomPartitioner",
    "ZCurvePartitioner",
    "ZCurveRule",
    "assignment_counts",
    "get_partitioner",
    "reservoir_sample",
    "reservoir_sample_indices",
]
