"""Reservoir sampling (Vitter's Algorithm R).

The paper's preprocessing step collects its sample with reservoir
sampling, which draws a uniform fixed-size sample in one pass without
knowing the stream length in advance — the natural choice on a DFS where
data arrives block by block.  We implement the classic algorithm
faithfully (it *is* the substrate here, not just `rng.choice`), seeded for
reproducibility.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError


def reservoir_sample_indices(
    n: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Indices of a uniform k-subset of ``range(n)`` via Algorithm R.

    The first ``k`` items fill the reservoir; each later item ``i``
    replaces a uniformly random reservoir slot with probability
    ``k / (i + 1)``.
    """
    if k <= 0:
        raise DatasetError(f"sample size must be positive; got {k}")
    if k >= n:
        return np.arange(n, dtype=np.int64)
    reservoir = np.arange(k, dtype=np.int64)
    # Draw all randomness up front (vectorised) while keeping the exact
    # Algorithm R replacement semantics.
    slots = (rng.random(n - k) * (np.arange(k, n) + 1)).astype(np.int64)
    for offset, slot in enumerate(slots):
        if slot < k:
            reservoir[slot] = k + offset
    return np.sort(reservoir)


def reservoir_sample(
    dataset: Dataset,
    ratio: Optional[float] = None,
    size: Optional[int] = None,
    seed: int = 0,
) -> Dataset:
    """Uniform sample of a dataset by ratio or absolute size.

    Exactly one of ``ratio`` (in ``(0, 1]``) or ``size`` must be given.
    """
    if (ratio is None) == (size is None):
        raise DatasetError("give exactly one of ratio= or size=")
    if ratio is not None:
        if not (0.0 < ratio <= 1.0):
            raise DatasetError(f"ratio must be in (0, 1]; got {ratio}")
        size = max(1, int(round(dataset.size * ratio)))
    assert size is not None
    rng = np.random.default_rng(seed)
    idx = reservoir_sample_indices(dataset.size, size, rng)
    return dataset.select(idx, name=f"{dataset.name}[sample]")
