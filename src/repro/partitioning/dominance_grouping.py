"""Dominance-based partition grouping — ZDG (Algorithm 2, §4.3).

ZHG balances counts but ignores *where* partitions sit relative to each
other: co-locating two mutually incomparable partitions wastes every
cross-partition dominance test.  ZDG instead maximises the summed
*dominance volume* (Definition 5) inside each group, so partitions placed
together stand the best chance of pruning each other's points before the
merge phase, subject to the same two capacity constraints.

Steps (Algorithm 2):

1. over-partition the sample along the Z-curve (``M * delta`` ranges) and
   split skyline-heavy partitions, as in ZHG;
2. build each partition's RZ-region from its Z-address interval and
   *prune* partitions fully dominated by another non-empty partition's
   region (their points can never be skyline points — the mapper drops
   them, Algorithm 3 line 7);
3. build the dominance matrix ``DM[i][j] = V_dom(Pt_i, Pt_j)``
   (Definition 6) and each partition's dominance power ``Gamma``
   (Definition 7);
4. greedily grow groups: seed with the unassigned partition of largest
   ``|Pts_i| * Gamma_i``, then repeatedly add the unassigned partition
   with the largest summed volume against the group (``maxDominate``)
   until a capacity constraint trips.

Numerics: Definition 5 is a product of ``d`` per-dimension gaps; for the
high-dimensional datasets this under/overflows float64, so the matrix is
built in log space and globally rescaled — only *relative* volumes matter
to the greedy objective.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning.base import DROPPED, Partitioner
from repro.partitioning.grouping import (
    DEFAULT_EXPANSION,
    compute_sample_stats,
)
from repro.partitioning.zcurve import ZCurveRule
from repro.zorder.rzregion import RZRegion


def log_dominance_volume(region_i: RZRegion, region_j: RZRegion) -> float:
    """Natural log of the Definition 5 dominance volume (``-inf`` when
    any per-dimension gap is zero, i.e. the volume is zero)."""
    stacked = np.stack(
        [region_i.minpt, region_i.maxpt, region_j.minpt, region_j.maxpt]
    ).astype(np.float64)
    ordered = np.sort(stacked, axis=0)
    gaps = ordered[-1] - ordered[-2]
    if np.any(gaps <= 0.0):
        return -math.inf
    return float(np.log(gaps).sum())


def build_dominance_matrix(regions: List[RZRegion]) -> np.ndarray:
    """Dominance matrix (Definition 6), globally rescaled from log space.

    ``DM[i][j]`` is proportional to ``V_dom(Pt_i, Pt_j)``; the diagonal is
    zero and the matrix is symmetric, matching the stated properties of
    the definition.

    Fully vectorised over all pairs.  Per dimension the gap is between
    the largest and second-largest of the four corner coordinates; with
    ``minpt <= maxpt`` within each region the largest is
    ``max(maxpt_i, maxpt_j)`` and the second largest is
    ``max(min(maxpt_i, maxpt_j), minpt_i, minpt_j)`` — a closed form
    that avoids sorting (m*m*4, d) stacks.
    """
    m = len(regions)
    if m == 0:
        return np.zeros((0, 0))
    minpts = np.stack([r.minpt for r in regions]).astype(np.float64)
    maxpts = np.stack([r.maxpt for r in regions]).astype(np.float64)
    top = np.maximum(maxpts[:, None, :], maxpts[None, :, :])
    second = np.maximum(
        np.minimum(maxpts[:, None, :], maxpts[None, :, :]),
        np.maximum(minpts[:, None, :], minpts[None, :, :]),
    )
    gaps = top - second  # (m, m, d)
    positive = gaps > 0.0
    logs = np.sum(np.log(np.where(positive, gaps, 1.0)), axis=-1)
    logs[~positive.all(axis=-1)] = -math.inf
    np.fill_diagonal(logs, -math.inf)
    finite = logs[np.isfinite(logs)]
    if finite.size == 0:
        return np.zeros((m, m))
    peak = finite.max()
    dm = np.exp(logs - peak)
    dm[~np.isfinite(logs)] = 0.0
    np.fill_diagonal(dm, 0.0)
    return dm


def prune_dominated_partitions(
    regions: List[RZRegion], nonempty: np.ndarray
) -> np.ndarray:
    """Mark partitions whose whole RZ-region is dominated by another
    *non-empty* partition's region.

    Safety: region-level full dominance means every possible point of the
    dominated interval is dominated by every possible point of the
    dominating interval, and a partition holding at least one sample
    point is certainly non-empty in the full data — so dropping the
    dominated partition's points at map time can never lose a skyline
    point (see §5.4's pruning analysis).
    """
    m = len(regions)
    if m == 0:
        return np.zeros(0, dtype=bool)
    minpts = np.stack([r.minpt for r in regions])
    maxpts = np.stack([r.maxpt for r in regions])
    # dom[i, j]: region i fully dominates region j (Lemma 1 case 1 —
    # maxpt_i dominates minpt_j), vectorised over all pairs.
    le = np.all(maxpts[:, None, :] <= minpts[None, :, :], axis=2)
    lt = np.any(maxpts[:, None, :] < minpts[None, :, :], axis=2)
    dom = le & lt
    dom[~np.asarray(nonempty, dtype=bool), :] = False
    np.fill_diagonal(dom, False)
    return dom.any(axis=0)


class DominanceGroupingPartitioner(Partitioner):
    """ZDG: Z-order partitioning + Algorithm 2 dominance grouping."""

    name = "zdg"

    def __init__(self, expansion: int = DEFAULT_EXPANSION) -> None:
        if expansion < 1:
            raise ConfigurationError("expansion factor delta must be >= 1")
        self.expansion = expansion

    def fit(
        self,
        sample: Dataset,
        codec,
        num_groups: int,
        seed: int = 0,
    ) -> ZCurveRule:
        if num_groups <= 0:
            raise ConfigurationError("num_groups must be positive")
        stats = compute_sample_stats(
            sample, codec, parts=num_groups * self.expansion
        )
        rule = ZCurveRule(codec, stats.pivots)
        # Safe pruning must reason about every point a Z-range *could*
        # contain, so it uses the prefix-aligned RZ-regions.
        regions = rule.regions()
        nonempty = stats.point_counts > 0
        pruned = prune_dominated_partitions(regions, nonempty)

        # The volume matrix is a heuristic; the sample bounding boxes are
        # far tighter than RZ-regions whose Z-range crosses a high curve
        # bit (those expand to most of the space and drown the signal).
        volume_regions = [
            RZRegion.from_corners(0, 0, stats.box_min[i], stats.box_max[i])
            if nonempty[i]
            else regions[i]
            for i in range(len(regions))
        ]
        dm = build_dominance_matrix(volume_regions)
        gamma = dm.sum(axis=1)

        tcons = max(1, math.ceil(stats.sample_size / num_groups))
        scons = max(1, math.ceil(max(stats.skyline_size, 1) / num_groups))

        group_map = self._greedy_group(
            stats.point_counts,
            stats.skyline_counts,
            dm,
            gamma,
            pruned,
            tcons,
            scons,
        )
        return ZCurveRule(codec, stats.pivots, group_map=group_map)

    @staticmethod
    def _greedy_group(
        point_counts: np.ndarray,
        skyline_counts: np.ndarray,
        dm: np.ndarray,
        gamma: np.ndarray,
        pruned: np.ndarray,
        tcons: int,
        scons: int,
    ) -> np.ndarray:
        m = len(point_counts)
        group_map = np.full(m, DROPPED, dtype=np.int64)
        unassigned = [pid for pid in range(m) if not pruned[pid]]
        # Seed priority: |Pts_i| * Gamma_i, ties by skyline count then
        # size (Algorithm 2's sort()).
        priority = skyline_counts.astype(np.float64) * gamma
        unassigned.sort(
            key=lambda pid: (
                priority[pid],
                skyline_counts[pid],
                point_counts[pid],
            ),
            reverse=True,
        )
        gid = 0
        while unassigned:
            seed_pid = unassigned.pop(0)
            group_map[seed_pid] = gid
            tcount = int(point_counts[seed_pid])
            scount = int(skyline_counts[seed_pid])
            # Summed volume of each candidate against the growing group
            # (maxDominate), maintained incrementally.
            affinity = dm[seed_pid].copy()
            while unassigned:
                best_pos = max(
                    range(len(unassigned)),
                    key=lambda pos: affinity[unassigned[pos]],
                )
                pid = unassigned[best_pos]
                t = int(point_counts[pid])
                s = int(skyline_counts[pid])
                if tcount + t > tcons or scount + s > scons:
                    break
                unassigned.pop(best_pos)
                group_map[pid] = gid
                tcount += t
                scount += s
                affinity += dm[pid]
            gid += 1
        return group_map
