"""repro — parallel skyline query processing for high-dimensional data.

A faithful, pure-Python reproduction of Tang et al., *Efficient Parallel
Skyline Query Processing for High-Dimensional Data* (ICDE 2019): Z-order
partitioning with heuristic (ZHG) and dominance-based (ZDG) partition
grouping, SZB-tree mapper prefiltering, and ZB-tree Z-merge candidate
merging, over a simulated share-nothing MapReduce platform — plus the
Grid, Angle, Random and MR-GPMRS baselines the paper compares against,
an R-tree/BBS substrate, incremental skyline maintenance, and query
extensions (k-dominant, ranking, subspace skylines).

Quickstart::

    from repro import run_plan
    from repro.data import anticorrelated

    report = run_plan("ZDG+ZS+ZM", anticorrelated(20_000, 5, seed=1))
    print(report.skyline_size, report.summary())

See DESIGN.md for the system inventory, EXPERIMENTS.md for the
figure-by-figure reproduction record, and docs/API.md for the full API
tour.
"""

from repro.core.dataset import Dataset
from repro.core.point import DominanceRelation, compare, dominates
from repro.core.skyline import skyline_oracle
from repro.maintenance import SkylineMaintainer
from repro.mapreduce.faults import FaultPlan
from repro.observability import MetricsRegistry, Tracer
from repro.pipeline.advisor import Advice, advise
from repro.pipeline.driver import (
    EngineConfig,
    RunReport,
    SkylineEngine,
    run_plan,
)
from repro.pipeline.gpmrs import run_gpmrs
from repro.pipeline.plans import PlanConfig, parse_plan

__version__ = "1.1.0"

__all__ = [
    "Advice",
    "Dataset",
    "DominanceRelation",
    "EngineConfig",
    "FaultPlan",
    "MetricsRegistry",
    "PlanConfig",
    "RunReport",
    "SkylineEngine",
    "SkylineMaintainer",
    "Tracer",
    "advise",
    "compare",
    "dominates",
    "parse_plan",
    "run_gpmrs",
    "run_plan",
    "skyline_oracle",
    "__version__",
]
