"""Unified observability: span tracing, metrics registry, JSONL export.

The paper's evaluation is entirely observational (per-worker load
balance, dominance-test counts, shuffled records, per-group candidate
counts); this package is the single subsystem those quantities flow
through.  ``Tracer`` records the span tree of a run, ``MetricsRegistry``
unifies counters/timers/histograms, and both export JSONL that a
benchmark row can be regenerated from (``--trace-out`` /
``--metrics-out`` on the CLI).
"""

from repro.observability.metrics import (
    MetricsRegistry,
    load_metrics_jsonl,
    registry_from_rows,
)
from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    SUPERSEDED,
    NullTracer,
    Span,
    Tracer,
    aggregate_trace_rows,
    load_trace_jsonl,
)

__all__ = [
    "MetricsRegistry",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "SUPERSEDED",
    "Span",
    "Tracer",
    "aggregate_trace_rows",
    "load_metrics_jsonl",
    "load_trace_jsonl",
    "registry_from_rows",
]
