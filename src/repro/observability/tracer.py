"""Span tracing: the structural record of one pipeline run.

A :class:`Tracer` collects a tree of :class:`Span` objects — run →
preprocess → phase-1 map/shuffle/reduce (one span per task/group) →
partial-merge → final z-merge — each with monotonic timestamps
(``time.perf_counter``), a parent id, and a free-form attribute dict
(records in/out, bytes shuffled, dominance tests, faults
injected/recovered).  The JSONL export is the ground truth a benchmark
row can be regenerated from: aggregating span attributes reproduces the
job ``Counters`` totals exactly (see :meth:`Tracer.totals`).

Tracing defaults to **off**: the module-level :data:`NULL_TRACER`
answers the whole API with shared no-op singletons, and the runtime
guards its per-task instrumentation on :attr:`Tracer.enabled`, so a
disabled run pays one boolean check per task
(``benchmarks/test_observability_overhead.py`` keeps that honest).

Thread-safety: span-id allocation and span registration are locked, so
tasks on a :class:`~repro.mapreduce.parallel.ThreadedCluster` may start
spans concurrently.  Each task mutates only its own span's attributes.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.exceptions import ConfigurationError

#: attribute marking a span whose work was discarded (e.g. a map task
#: whose output died with its worker and was re-executed); aggregation
#: skips these so trace totals match the only-successful-attempt
#: counter semantics
SUPERSEDED = "superseded"


class Span:
    """One timed node of the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attributes")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})

    # -- attributes ----------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Set one attribute."""
        self.attributes[key] = value

    def update(self, **attributes: Any) -> None:
        """Set several attributes at once."""
        self.attributes.update(attributes)

    # -- lifecycle -----------------------------------------------------
    def finish(self) -> None:
        """Stamp the end time (idempotent: the first call wins)."""
        if self.end is None:
            self.end = time.perf_counter()

    @property
    def duration(self) -> Optional[float]:
        """Seconds between start and finish; ``None`` while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"Span(id={self.span_id}, name={self.name!r}, "
            f"parent={self.parent_id}, attrs={self.attributes!r})"
        )


class _NullSpan:
    """Shared do-nothing span: the zero-overhead disabled path."""

    __slots__ = ()

    span_id = 0
    parent_id = None
    name = "null"
    start = 0.0
    end = 0.0
    duration = 0.0
    attributes: Dict[str, Any] = {}

    def set(self, key: str, value: Any) -> None:
        pass

    def update(self, **attributes: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: the one null span every disabled call site shares
NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing.

    Every ``start_span`` returns :data:`NULL_SPAN`; call sites that
    need true zero overhead (per-task hot paths) should additionally
    guard on :attr:`enabled`.
    """

    enabled = False

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> _NullSpan:
        return NULL_SPAN

    #: ``with tracer.span("x"):`` works because NULL_SPAN is a
    #: context manager
    span = start_span

    @property
    def spans(self) -> Tuple[()]:
        return ()

    def totals(self, *names: str) -> Dict[str, float]:
        return {name: 0 for name in names}

    def export_jsonl(self, path: str) -> int:
        """Nothing to export; no file is written."""
        return 0


#: module-level singleton: the default tracer everywhere
NULL_TRACER = NullTracer()


class Tracer:
    """Collects the span tree of a run (thread-safe)."""

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._next_id = 1

    # -- recording -----------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span; it is registered immediately (even if the task
        that owns it later dies, the trace keeps the evidence)."""
        parent_id = None
        if parent is not None and parent is not NULL_SPAN:
            parent_id = parent.span_id
        start = time.perf_counter()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(span_id, parent_id, name, start, attributes)
            self._spans.append(span)
        return span

    #: alias reading naturally in ``with tracer.span(...) as s:`` form
    span = start_span

    # -- inspection ----------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Snapshot of every recorded span, in creation order."""
        with self._lock:
            return list(self._spans)

    def named(self, name: str) -> List[Span]:
        """All spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def totals(
        self, *names: str, include_superseded: bool = False
    ) -> Dict[str, float]:
        """Sum numeric span attributes across the tree.

        Spans marked :data:`SUPERSEDED` are skipped by default so the
        totals reproduce the only-successful-attempt ``Counters``
        semantics: a re-executed map task contributes once.
        """
        out: Dict[str, float] = {name: 0 for name in names}
        for span in self.spans:
            if not include_superseded and span.attributes.get(SUPERSEDED):
                continue
            for name in names:
                value = span.attributes.get(name)
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    out[name] += value
        return out

    def validate(self) -> None:
        """Structural invariants of the finished tree.

        Raises :class:`~repro.core.exceptions.ConfigurationError` when a
        parent id is dangling, a finished span has negative duration, or
        a span never finished.
        """
        spans = self.spans
        ids = {span.span_id for span in spans}
        for span in spans:
            if span.parent_id is not None and span.parent_id not in ids:
                raise ConfigurationError(
                    f"span {span.span_id} ({span.name!r}) has dangling "
                    f"parent {span.parent_id}"
                )
            if span.end is None:
                raise ConfigurationError(
                    f"span {span.span_id} ({span.name!r}) never finished"
                )
            if span.end < span.start:
                raise ConfigurationError(
                    f"span {span.span_id} ({span.name!r}) has negative "
                    f"duration"
                )

    # -- export --------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per span; returns the span count."""
        rows = self.to_dicts()
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        return len(rows)


def load_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read an exported trace back (for offline analysis/tests)."""
    rows: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def aggregate_trace_rows(
    rows: Iterable[Dict[str, Any]], *names: str
) -> Dict[str, float]:
    """:meth:`Tracer.totals` over exported JSONL rows."""
    out: Dict[str, float] = {name: 0 for name in names}
    for row in rows:
        attributes = row.get("attributes", {})
        if attributes.get(SUPERSEDED):
            continue
        for name in names:
            value = attributes.get(name)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                out[name] += value
    return out
