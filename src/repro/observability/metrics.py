"""One registry for every measured quantity: counters, timers, histograms.

Before this module the run's observables were scattered: Hadoop-style
:class:`~repro.mapreduce.counters.Counters` per job, ad-hoc
``perf_counter`` timers in the drivers, and per-worker ledgers on
:class:`~repro.mapreduce.cluster.ClusterMetrics`.  The
:class:`MetricsRegistry` unifies them behind one thread-safe API:

* **counters** — the same ``group/name -> int`` model as ``Counters``
  (and :meth:`absorb_counters` folds an existing job counter set in);
* **timers** — named accumulated wall seconds with call counts;
* **histograms** — named sample lists with summary statistics (the
  paper's per-group candidate counts and per-worker wall seconds).

:meth:`merge` aggregates registries across jobs/runs, replacing the
hand-rolled dict summing the drivers used to do, and
:meth:`export_jsonl` writes one self-describing JSON object per metric
so a benchmark row can be regenerated from the file alone.
"""

from __future__ import annotations

import json
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Tuple

if TYPE_CHECKING:  # runtime import would cycle through repro.mapreduce
    from repro.mapreduce.counters import Counters


def _percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile over a sorted copy (no numpy needed)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return float(ordered[rank])


class MetricsRegistry:
    """Thread-safe counters + timers + histograms."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, str], int] = defaultdict(int)
        #: name -> [calls, total_seconds]
        self._timers: Dict[str, List[float]] = {}
        self._histograms: Dict[str, List[float]] = defaultdict(list)
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------
    def inc(self, group: str, name: str, amount: int = 1) -> None:
        """Increment counter ``group/name``."""
        with self._lock:
            self._counters[(group, name)] += int(amount)

    def counter(self, group: str, name: str) -> int:
        """Current counter value (0 if never incremented)."""
        with self._lock:
            return self._counters.get((group, name), 0)

    def counters_as_dict(self) -> Dict[str, Dict[str, int]]:
        """Nested ``group -> name -> value`` snapshot."""
        with self._lock:
            out: Dict[str, Dict[str, int]] = {}
            for (group, name), value in self._counters.items():
                out.setdefault(group, {})[name] = value
            return out

    def absorb_counters(self, counters: "Counters") -> None:
        """Fold a Hadoop-style job counter set into the registry."""
        for group, names in counters.as_dict().items():
            for name, value in names.items():
                self.inc(group, name, value)

    @classmethod
    def from_counters(cls, counters: "Counters") -> "MetricsRegistry":
        registry = cls()
        registry.absorb_counters(counters)
        return registry

    # -- timers --------------------------------------------------------
    def record_time(self, name: str, seconds: float) -> None:
        """Add one observation to a named timer."""
        with self._lock:
            entry = self._timers.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += float(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the named timer."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - started)

    def timer_seconds(self, name: str) -> float:
        with self._lock:
            entry = self._timers.get(name)
            return float(entry[1]) if entry else 0.0

    def timers_as_dict(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return {
                name: {"calls": int(entry[0]), "seconds": float(entry[1])}
                for name, entry in self._timers.items()
            }

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Add one sample to a named histogram."""
        with self._lock:
            self._histograms[name].append(float(value))

    def histogram(self, name: str) -> List[float]:
        """Copy of a histogram's raw samples (empty if absent)."""
        with self._lock:
            return list(self._histograms.get(name, ()))

    def histogram_summary(self, name: str) -> Dict[str, float]:
        """count/min/max/mean/total/p50/p95 of one histogram."""
        samples = self.histogram(name)
        if not samples:
            return {
                "count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                "total": 0.0, "p50": 0.0, "p95": 0.0,
            }
        total = float(sum(samples))
        return {
            "count": len(samples),
            "min": float(min(samples)),
            "max": float(max(samples)),
            "mean": total / len(samples),
            "total": total,
            "p50": _percentile(samples, 0.50),
            "p95": _percentile(samples, 0.95),
        }

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry into this one (cross-job /
        cross-run aggregation)."""
        with other._lock:
            counters = dict(other._counters)
            timers = {k: list(v) for k, v in other._timers.items()}
            histograms = {
                k: list(v) for k, v in other._histograms.items()
            }
        with self._lock:
            for key, value in counters.items():
                self._counters[key] += value
            for name, (calls, seconds) in timers.items():
                entry = self._timers.setdefault(name, [0, 0.0])
                entry[0] += calls
                entry[1] += seconds
            for name, samples in histograms.items():
                self._histograms[name].extend(samples)

    # -- export --------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": self.counters_as_dict(),
            "timers": self.timers_as_dict(),
            "histograms": {
                name: self.histogram_summary(name)
                for name in sorted(self._snapshot_histogram_names())
            },
        }

    def _snapshot_histogram_names(self) -> List[str]:
        with self._lock:
            return list(self._histograms)

    def to_rows(self) -> List[Dict[str, Any]]:
        """One self-describing dict per metric (the JSONL lines)."""
        rows: List[Dict[str, Any]] = []
        for group, names in sorted(self.counters_as_dict().items()):
            for name, value in sorted(names.items()):
                rows.append({
                    "kind": "counter",
                    "group": group,
                    "name": name,
                    "value": value,
                })
        for name, entry in sorted(self.timers_as_dict().items()):
            rows.append({
                "kind": "timer",
                "name": name,
                "calls": entry["calls"],
                "seconds": entry["seconds"],
            })
        for name in sorted(self._snapshot_histogram_names()):
            rows.append({
                "kind": "histogram",
                "name": name,
                "summary": self.histogram_summary(name),
                "samples": self.histogram(name),
            })
        return rows

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per metric; returns the row count."""
        rows = self.to_rows()
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        return len(rows)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"timers={len(self._timers)}, "
                f"histograms={len(self._histograms)})"
            )


def load_metrics_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read an exported metrics file back."""
    rows: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def registry_from_rows(rows: List[Dict[str, Any]]) -> MetricsRegistry:
    """Rebuild a registry from exported JSONL rows (round-trip)."""
    registry = MetricsRegistry()
    for row in rows:
        kind = row.get("kind")
        if kind == "counter":
            registry.inc(row["group"], row["name"], row["value"])
        elif kind == "timer":
            entry = registry._timers.setdefault(row["name"], [0, 0.0])
            entry[0] += int(row["calls"])
            entry[1] += float(row["seconds"])
        elif kind == "histogram":
            for sample in row.get("samples", ()):
                registry.observe(row["name"], sample)
    return registry


__all__ = [
    "MetricsRegistry",
    "load_metrics_jsonl",
    "registry_from_rows",
]
