"""In-memory distributed file system with I/O accounting.

Job outputs (phase-1 skyline candidates, the final skyline) are "written
to HDFS" here; the byte counters let benchmarks report the intermediate
I/O volume that the paper's candidate-pruning analysis (§5.4) is about.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.exceptions import MapReduceError
from repro.mapreduce.types import Block


class InMemoryDFS:
    """Path -> list-of-blocks store with read/write byte counters."""

    def __init__(self) -> None:
        self._files: Dict[str, List[Block]] = {}
        self._checksums: Dict[str, List[int]] = {}
        self.bytes_written = 0
        self.bytes_read = 0
        self.records_written = 0
        self.records_read = 0

    def write(
        self, path: str, blocks: List[Block], overwrite: bool = False
    ) -> None:
        """Create a file; overwriting is an error unless ``overwrite``
        (HDFS files are immutable once closed, but a retried/resumed job
        may legitimately replace its own earlier attempt's output).
        Block checksums are recorded at write time so later integrity
        audits (:meth:`verify`) can detect corruption, mirroring HDFS's
        per-block CRC files."""
        if path in self._files and not overwrite:
            raise MapReduceError(f"DFS path {path!r} already exists")
        self._files[path] = list(blocks)
        self._checksums[path] = [block.checksum() for block in blocks]
        for block in blocks:
            self.bytes_written += block.nbytes
            self.records_written += block.size

    def read(self, path: str) -> List[Block]:
        """Read a file's blocks (accounted)."""
        if path not in self._files:
            raise MapReduceError(f"DFS path {path!r} does not exist")
        blocks = self._files[path]
        for block in blocks:
            self.bytes_read += block.nbytes
            self.records_read += block.size
        return list(blocks)

    def exists(self, path: str) -> bool:
        return path in self._files

    def latest_path(self, path: str) -> str:
        """Resolve the newest attempt of an output path.

        A retried/resumed job writes to ``<path>/attempt-<k>`` (the
        base path is attempt 0), so a reader naively opening ``path``
        sees the *stale first attempt*.  This returns the concrete path
        of the highest attempt that exists — the file a resumed reader
        actually wants.
        """
        prefix = f"{path}/attempt-"
        best_attempt = 0 if path in self._files else None
        best_path = path
        for candidate in self._files:
            if not candidate.startswith(prefix):
                continue
            suffix = candidate[len(prefix):]
            if not suffix.isdigit():
                continue
            attempt = int(suffix)
            if best_attempt is None or attempt > best_attempt:
                best_attempt = attempt
                best_path = candidate
        if best_attempt is None:
            raise MapReduceError(f"DFS path {path!r} does not exist")
        return best_path

    def latest(self, path: str) -> List[Block]:
        """Read the newest attempt of ``path`` (accounted like
        :meth:`read`)."""
        return self.read(self.latest_path(path))

    def verify(self, path: str) -> bool:
        """Recompute a file's block checksums against the write-time
        record; ``True`` when the payload is intact."""
        if path not in self._files:
            raise MapReduceError(f"DFS path {path!r} does not exist")
        return [
            block.checksum() for block in self._files[path]
        ] == self._checksums[path]

    def delete(self, path: str) -> None:
        """Remove a file (missing path is an error)."""
        if path not in self._files:
            raise MapReduceError(f"DFS path {path!r} does not exist")
        del self._files[path]
        del self._checksums[path]

    def listdir(self) -> List[str]:
        """All stored paths, sorted."""
        return sorted(self._files)
