"""Process-pool task execution: true multicore parallelism.

:class:`ProcessPoolCluster` is the third executor.  Where the threaded
cluster relies on numpy releasing the GIL, this one ships each worker's
task queue to a real worker *process*, so Python-level work parallelises
too.  The model is share-nothing, Hadoop-style:

* the distributed cache is pickled once per pool and installed in every
  worker by the pool initializer (:func:`publish_cache`);
* task payloads must be **picklable** — the runtime sends small payload
  objects (see ``MapReduceRuntime``'s remote dispatch path) instead of
  closures;
* large Block arrays ride a per-round ``multiprocessing.shared_memory``
  segment as zero-copy views (:mod:`repro.mapreduce.shm`) instead of the
  pickle pipe;
* results come back as plain data: each task's counters, metric
  observations, and kernel-stats deltas travel explicitly and are merged
  coordinator-side — nothing depends on shared mutable state.

Determinism: seeded :class:`~repro.mapreduce.faults.FaultPlan` draws are
keyed and order-independent, so the coordinator resolves every task's
fault schedule *before* dispatch — injected failures strike before the
task body runs, exactly like the other executors — and only the
surviving attempts cross the process boundary.  Cost accounting and
counters therefore match the simulated cluster bit for bit; only the
measured wall seconds differ.

Straggler injection (slowdown factors, pre-declared failed workers,
speculation) is rejected, as on the threaded cluster.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.exceptions import (
    ConfigurationError,
    FaultInjectionError,
    MapReduceError,
)
from repro.mapreduce.cluster import (
    ClusterMetrics,
    LostTask,
    SimulatedCluster,
)
from repro.mapreduce.faults import FaultPlan, TransientTaskError
from repro.mapreduce.shm import pack_blocks


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------
_WORKER_CACHE = None


def _init_worker(cache_bytes: Optional[bytes]) -> None:
    global _WORKER_CACHE
    _WORKER_CACHE = None if cache_bytes is None else pickle.loads(cache_bytes)


def worker_cache():
    """The :class:`~repro.mapreduce.cache.DistributedCache` installed in
    this pool worker (raises when the pool was built without one)."""
    if _WORKER_CACHE is None:
        raise MapReduceError(
            "no distributed cache was published to this pool worker"
        )
    return _WORKER_CACHE


def _process_cpu_seconds() -> float:
    """User + system CPU seconds consumed by this process so far."""
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        return float(usage.ru_utime + usage.ru_stime)
    except ImportError:  # pragma: no cover - non-Unix
        times = os.times()
        return float(times.user + times.system)


def _drain_worker(
    phase: str, worker_id: int, items: List[Tuple[int, object]]
) -> List[Tuple[int, str, object, float, float]]:
    """Run one worker's task queue serially inside a pool process.

    Mirrors ``ThreadedCluster``'s drain: one task's failure must not
    abort the rest of the queue, so each task is isolated and errors
    come back as data (exceptions must cross the pickle boundary, so
    context is folded into the message instead of ``__cause__``).

    Each surviving task carries two clocks home: wall-clock ``elapsed``
    and the process's *CPU* delta (``getrusage``) across the task body.
    The queue is drained serially in a dedicated process, so the delta
    is attributable to the task; it is what lets the fig-7 load-balance
    bench compare the simulated cost model against real core-seconds.
    """
    out: List[Tuple[int, str, object, float, float]] = []
    for index, task in items:
        start = time.perf_counter()
        cpu_start = _process_cpu_seconds()
        try:
            result, cost = task()
        except Exception as exc:  # noqa: BLE001 — isolation point
            if isinstance(exc, MapReduceError):
                wrapped = exc
            else:
                wrapped = MapReduceError(
                    f"task {index} in phase {phase!r} failed "
                    f"on worker {worker_id}: {exc!r}"
                )
            out.append((index, "error", wrapped, 0.0, 0.0))
            continue
        elapsed = time.perf_counter() - start
        cpu = max(0.0, _process_cpu_seconds() - cpu_start)
        if hasattr(result, "cpu_seconds"):
            result.cpu_seconds = cpu
        out.append((index, "ok", (result, int(cost)), elapsed, cpu))
    return out


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
class ProcessPoolCluster(SimulatedCluster):
    """A cluster whose workers are real processes."""

    def __init__(
        self,
        num_workers: int,
        fault_plan: Optional[FaultPlan] = None,
        use_shm: bool = True,
    ) -> None:
        super().__init__(num_workers, fault_plan=fault_plan)
        self.remote = True
        self.use_shm = use_shm
        self._pool: Optional[ProcessPoolExecutor] = None
        self._cache_bytes: Optional[bytes] = None

    # -- pool lifecycle ------------------------------------------------
    def publish_cache(self, cache) -> None:
        """Install a distributed cache in every pool worker.

        The cache is forced through ``pickle`` here — the same bytes a
        real cluster would ship — and handed to each worker's
        initializer.  Re-publishing identical bytes is a no-op; new
        bytes retire the current pool so the next round starts workers
        with the new cache.
        """
        payload = pickle.dumps(cache, protocol=pickle.HIGHEST_PROTOCOL)
        if payload != self._cache_bytes:
            self.shutdown()
            self._cache_bytes = payload

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._cache_bytes,),
            )
        return self._pool

    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.shutdown()
        except Exception:
            pass

    # -- fault resolution ----------------------------------------------
    def _resolve_faults(
        self, phase: str, index: int, lenient: bool
    ) -> Tuple[Optional[FaultInjectionError], int, float]:
        """Replay the retry loop of ``_run_attempts`` without a body.

        Keyed draws are order-independent, so resolving them up front
        yields the same schedule the in-process executors compute
        mid-run.  Returns ``(exhaustion_error_or_None, failed_attempts,
        backoff_seconds)``.
        """
        plan = self.fault_plan
        if plan is None:
            return None, 0, 0.0
        failures = 0
        backoff = 0.0
        attempt = 1
        while plan.task_attempt_fails(phase, index, attempt):
            failures += 1
            backoff += plan.backoff_seconds(attempt)
            if attempt >= plan.max_attempts:
                error = FaultInjectionError(
                    f"task {index} in phase {phase!r} exhausted "
                    f"{plan.max_attempts} attempts"
                )
                error.__cause__ = TransientTaskError(
                    f"injected failure on attempt {attempt}"
                )
                return error, failures, backoff
            attempt += 1
        return None, failures, backoff

    # -- execution -----------------------------------------------------
    def _check_unsupported(self) -> None:
        unsupported = []
        if any(f != 1.0 for f in self.slowdown_factors):
            unsupported.append("slowdown_factors")
        if self.failed_workers:
            unsupported.append("failed_workers")
        if self.speculative:
            unsupported.append("speculative")
        if unsupported:
            raise ConfigurationError(
                f"ProcessPoolCluster does not support "
                f"{', '.join(unsupported)}; use SimulatedCluster for "
                f"straggler/failed-worker studies"
            )

    def _externalize(self, tasks: Sequence) -> Tuple[List, Optional[object]]:
        """Swap each task's Blocks for shared-memory descriptors.

        Returns shipping copies (originals keep their inline Blocks so a
        later re-dispatch — e.g. lineage recovery — can re-pack into a
        fresh segment) plus the round's segment handle, if one was
        worth creating.
        """
        shipping = list(tasks)
        if not self.use_shm:
            return shipping, None
        blocks: List = []
        spans: List[Optional[Tuple[int, int]]] = []
        for task in tasks:
            getter = getattr(task, "shm_payload_blocks", None)
            if getter is None:
                spans.append(None)
                continue
            task_blocks = getter()
            spans.append((len(blocks), len(task_blocks)))
            blocks.extend(task_blocks)
        if not blocks:
            return shipping, None
        segment, refs = pack_blocks(blocks)
        if segment is None:
            return shipping, None
        for position, task in enumerate(tasks):
            span = spans[position]
            if span is None:
                continue
            start, count = span
            shipping[position] = task.with_shm_blocks(
                refs[start:start + count]
            )
        return shipping, segment

    def run_round(
        self,
        phase: str,
        tasks: Sequence,
        placement: Optional[Sequence[int]] = None,
        lenient: bool = False,
    ) -> List:
        self._check_unsupported()
        if placement is None:
            placement = [i % self.num_workers for i in range(len(tasks))]
        elif len(placement) != len(tasks):
            raise MapReduceError("placement must have one entry per task")
        for worker in placement:
            if not (0 <= worker < self.num_workers):
                raise MapReduceError(f"worker id {worker} out of range")

        results: List = [None] * len(tasks)
        errors: List[Tuple[int, MapReduceError]] = []
        # (worker, elapsed, cost, failures, backoff) per surviving task —
        # the same execution tuples the simulated cluster ledgers.
        executions: List[Tuple[int, float, int, int, float]] = []
        fault_of = {}
        queues: List[List[Tuple[int, object]]] = [
            [] for _ in range(self.num_workers)
        ]
        shipping, segment = self._externalize(tasks)
        try:
            for index, worker in enumerate(placement):
                error, failures, backoff = self._resolve_faults(
                    phase, index, lenient
                )
                fault_of[index] = (failures, backoff)
                if error is not None:
                    if lenient:
                        results[index] = LostTask(index, error)
                        executions.append((worker, 0.0, 0, failures, backoff))
                    else:
                        errors.append((index, error))
                    continue
                queues[worker].append((index, shipping[index]))

            pool = self._ensure_pool()
            futures = [
                pool.submit(_drain_worker, phase, worker_id, queue)
                for worker_id, queue in enumerate(queues)
                if queue
            ]
            for future in futures:
                for index, status, payload, elapsed, cpu in future.result():
                    worker = placement[index]
                    if status == "error":
                        errors.append((index, payload))
                        continue
                    result, cost = payload
                    failures, backoff = fault_of[index]
                    executions.append(
                        (worker, elapsed, cost, failures, backoff)
                    )
                    results[index] = result
                    if self.observer is not None:
                        self.observer.observe("cluster.task_seconds", elapsed)
                        self.observer.observe(
                            "cluster.task_cpu_seconds", cpu
                        )
        finally:
            if segment is not None:
                segment.close()

        metrics = ClusterMetrics(
            phase=phase,
            ledgers=self._build_ledgers(executions),
            placements=list(placement),
        )
        self.history.append(metrics)
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return results


class SharedProcessPoolCluster(ProcessPoolCluster):
    """A process pool that survives the engine's per-run ``shutdown()``.

    ``SkylineEngine.run`` tears its cluster down in a ``finally`` —
    correct for per-run ownership, wasteful for a pool shared across
    many runs (the serving registry's rebuild pool).  Here
    :meth:`shutdown` is a no-op and the owner calls :meth:`close` when
    it is done; worker processes and their installed distributed cache
    persist between runs.  Publishing *different* cache bytes still
    retires the current workers (they hold the stale cache), so the
    next round starts fresh ones — correctness over reuse.
    """

    def publish_cache(self, cache) -> None:
        payload = pickle.dumps(cache, protocol=pickle.HIGHEST_PROTOCOL)
        if payload != self._cache_bytes:
            super().shutdown()
            self._cache_bytes = payload

    def shutdown(self) -> None:
        """No-op: per-run teardown must not kill a shared pool."""

    def close(self) -> None:
        """Really terminate the worker processes (owner-only)."""
        super().shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


__all__ = ["ProcessPoolCluster", "SharedProcessPoolCluster", "worker_cache"]
