"""Record batches moved through the simulated platform.

A :class:`Block` is a batch of ``(id, point)`` records.  Mappers receive
and emit blocks rather than single records — the numpy-friendly
equivalent of Hadoop's ``mapPartitions`` — which keeps the simulation's
constant factors representative (per-record Python dispatch would swamp
the algorithmic costs the benchmarks measure).
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import MapReduceError

_BYTES_PER_VALUE = 8
_BYTES_PER_ID = 8


class Block:
    """An immutable batch of identified points.

    ``zaddresses`` optionally carries the points' already-computed
    Z-addresses as a native kernel batch — a ``(n,)`` uint64 array
    (fast path) or a ``(n, W)`` packed-byte matrix (wide path).  Both
    forms index on axis 0, so blocks never need to know which path
    produced them.  The field rides along through shuffles and
    checkpoints so phase 2 never re-encodes candidates; it is dropped
    silently when unavailable (``None``) and excluded from checksums
    (it is derived data, recomputable from the points).
    """

    __slots__ = ("ids", "points", "zaddresses")

    def __init__(
        self,
        ids: np.ndarray,
        points: np.ndarray,
        zaddresses: Optional[np.ndarray] = None,
    ) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise MapReduceError(f"points must be 2-D; got shape {points.shape}")
        if ids.shape != (points.shape[0],):
            raise MapReduceError(
                f"ids shape {ids.shape} does not match {points.shape[0]} points"
            )
        if zaddresses is not None and zaddresses.shape[0] != points.shape[0]:
            raise MapReduceError(
                f"zaddresses length {zaddresses.shape[0]} does not match "
                f"{points.shape[0]} points"
            )
        self.ids = ids
        self.points = points
        self.zaddresses = zaddresses

    @property
    def size(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimensions(self) -> int:
        return int(self.points.shape[1])

    @property
    def nbytes(self) -> int:
        """Serialized size estimate used by the I/O accounting."""
        return self.size * (self.dimensions * _BYTES_PER_VALUE + _BYTES_PER_ID)

    def checksum(self) -> int:
        """CRC32 over the serialized payload (ids then points).

        What a sender records before a transfer and a receiver verifies
        after it: any bit flip in either array changes the value, which
        is how the shuffle detects corrupted fetches.
        """
        return zlib.crc32(
            self.points.tobytes(), zlib.crc32(self.ids.tobytes())
        )

    def select(self, mask_or_indices: np.ndarray) -> "Block":
        """Sub-block by boolean mask or integer positions."""
        z = self.zaddresses
        return Block(
            self.ids[mask_or_indices],
            self.points[mask_or_indices],
            zaddresses=None if z is None else z[mask_or_indices],
        )

    def __repr__(self) -> str:
        return f"Block(n={self.size}, d={self.dimensions})"

    @staticmethod
    def empty(dimensions: int) -> "Block":
        return Block(
            np.empty(0, dtype=np.int64), np.empty((0, dimensions))
        )

    @staticmethod
    def concat(blocks: Sequence["Block"]) -> "Block":
        """Concatenate blocks (at least one required).

        Z-addresses are propagated only when every input carries them
        (a single missing batch would silently misalign the rest).
        """
        if not blocks:
            raise MapReduceError("cannot concatenate zero blocks")
        if len(blocks) == 1:
            return blocks[0]
        zaddresses = None
        if all(b.zaddresses is not None for b in blocks):
            zaddresses = np.concatenate(
                [b.zaddresses for b in blocks], axis=0
            )
        return Block(
            np.concatenate([b.ids for b in blocks]),
            np.vstack([b.points for b in blocks]),
            zaddresses=zaddresses,
        )

    @staticmethod
    def from_dataset(dataset: Dataset) -> "Block":
        return Block(dataset.ids, dataset.points)


def split_dataset(dataset: Dataset, num_splits: int) -> List[Block]:
    """Cut a dataset into contiguous input splits (like DFS blocks)."""
    if num_splits <= 0:
        raise MapReduceError("num_splits must be positive")
    num_splits = min(num_splits, dataset.size)
    edges = np.linspace(0, dataset.size, num_splits + 1).astype(np.int64)
    return [
        Block(dataset.ids[a:b], dataset.points[a:b])
        for a, b in zip(edges[:-1], edges[1:])
        if b > a
    ]
