"""Threaded task execution for real wall-clock parallelism.

The default :class:`~repro.mapreduce.cluster.SimulatedCluster` executes
tasks sequentially and *attributes* them to workers — deterministic and
ideal for the figure benchmarks.  :class:`ThreadedCluster` additionally
runs each worker's task queue on its own thread: numpy releases the GIL
inside the vectorised dominance kernels, so the phases genuinely
overlap.  Cost accounting is identical (and still deterministic); only
the measured wall times change.

Straggler *injection* is not supported here — slowdown factors would
have to actually sleep; use the simulated cluster for those studies.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.exceptions import MapReduceError
from repro.mapreduce.cluster import (
    ClusterMetrics,
    SimulatedCluster,
    WorkerLedger,
)


class ThreadedCluster(SimulatedCluster):
    """A cluster whose workers are real threads."""

    def __init__(self, num_workers: int) -> None:
        super().__init__(num_workers)

    def run_round(
        self,
        phase: str,
        tasks: Sequence,
        placement: Optional[Sequence[int]] = None,
    ) -> List:
        if placement is None:
            placement = [i % self.num_workers for i in range(len(tasks))]
        elif len(placement) != len(tasks):
            raise MapReduceError("placement must have one entry per task")
        for worker in placement:
            if not (0 <= worker < self.num_workers):
                raise MapReduceError(f"worker id {worker} out of range")

        # One queue per worker preserves the deterministic attribution.
        queues: List[List[Tuple[int, object]]] = [
            [] for _ in range(self.num_workers)
        ]
        for index, (task, worker) in enumerate(zip(tasks, placement)):
            queues[worker].append((index, task))

        results: List = [None] * len(tasks)
        ledgers = [WorkerLedger(w) for w in range(self.num_workers)]

        def drain(worker_id: int) -> None:
            ledger = ledgers[worker_id]
            for index, task in queues[worker_id]:
                start = time.perf_counter()
                result, cost = task()
                ledger.wall_seconds += time.perf_counter() - start
                ledger.tasks += 1
                ledger.cost_units += int(cost)
                results[index] = result

        if tasks:
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                futures = [
                    pool.submit(drain, worker_id)
                    for worker_id in range(self.num_workers)
                    if queues[worker_id]
                ]
                for future in futures:
                    future.result()  # re-raise task exceptions
        metrics = ClusterMetrics(phase=phase, ledgers=ledgers)
        self.history.append(metrics)
        return results
