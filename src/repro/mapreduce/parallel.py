"""Threaded task execution for real wall-clock parallelism.

The default :class:`~repro.mapreduce.cluster.SimulatedCluster` executes
tasks sequentially and *attributes* them to workers — deterministic and
ideal for the figure benchmarks.  :class:`ThreadedCluster` additionally
runs each worker's task queue on its own thread: numpy releases the GIL
inside the vectorised dominance kernels, so the phases genuinely
overlap.  Cost accounting is identical (and still deterministic); only
the measured wall times change.

Straggler *injection* (slowdown factors, pre-declared failed workers,
speculation) is not supported here — slowdown factors would have to
actually sleep; use the simulated cluster for those studies.  Seeded
:class:`~repro.mapreduce.faults.FaultPlan` injection *is* supported:
its decisions are keyed draws independent of execution order, so the
fault schedule stays deterministic even under thread racing.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError, MapReduceError
from repro.mapreduce.cluster import (
    ClusterMetrics,
    SimulatedCluster,
    WorkerLedger,
)
from repro.mapreduce.faults import FaultPlan


class ThreadedCluster(SimulatedCluster):
    """A cluster whose workers are real threads."""

    def __init__(
        self, num_workers: int, fault_plan: Optional[FaultPlan] = None
    ) -> None:
        super().__init__(num_workers, fault_plan=fault_plan)

    def _check_unsupported(self) -> None:
        """Simulation-only knobs must not be silently ignored.

        The inherited ``slowdown_factors`` / ``failed_workers`` /
        ``speculative`` attributes can be set on an instance directly;
        honouring them here is impossible (they model time, and threads
        measure it), so producing metrics that quietly ignore them would
        be wrong.  Fail loudly instead.
        """
        unsupported = []
        if any(f != 1.0 for f in self.slowdown_factors):
            unsupported.append("slowdown_factors")
        if self.failed_workers:
            unsupported.append("failed_workers")
        if self.speculative:
            unsupported.append("speculative")
        if unsupported:
            raise ConfigurationError(
                f"ThreadedCluster does not support {', '.join(unsupported)}; "
                f"use SimulatedCluster for straggler/failed-worker studies"
            )

    def run_round(
        self,
        phase: str,
        tasks: Sequence,
        placement: Optional[Sequence[int]] = None,
        lenient: bool = False,
    ) -> List:
        self._check_unsupported()
        if placement is None:
            placement = [i % self.num_workers for i in range(len(tasks))]
        elif len(placement) != len(tasks):
            raise MapReduceError("placement must have one entry per task")
        for worker in placement:
            if not (0 <= worker < self.num_workers):
                raise MapReduceError(f"worker id {worker} out of range")

        # One queue per worker preserves the deterministic attribution.
        queues: List[List[Tuple[int, object]]] = [
            [] for _ in range(self.num_workers)
        ]
        for index, (task, worker) in enumerate(zip(tasks, placement)):
            queues[worker].append((index, task))

        results: List = [None] * len(tasks)
        ledgers = [WorkerLedger(w) for w in range(self.num_workers)]
        errors: List[Tuple[int, MapReduceError]] = []
        errors_lock = threading.Lock()

        def drain(worker_id: int) -> None:
            # One task's failure must not abort the rest of this
            # worker's queue: isolate per task, wrap with phase/task
            # context, keep draining.
            ledger = ledgers[worker_id]
            for index, task in queues[worker_id]:
                try:
                    result, cost, elapsed, failures, backoff = (
                        self._run_attempts(phase, index, task, lenient=lenient)
                    )
                except Exception as exc:  # noqa: BLE001 — isolation point
                    if isinstance(exc, MapReduceError):
                        wrapped = exc
                    else:
                        wrapped = MapReduceError(
                            f"task {index} in phase {phase!r} failed "
                            f"on worker {worker_id}: {exc!r}"
                        )
                        wrapped.__cause__ = exc
                    with errors_lock:
                        errors.append((index, wrapped))
                    continue
                ledger.wall_seconds += elapsed + backoff
                ledger.tasks += 1
                ledger.cost_units += cost
                ledger.failed_attempts += failures
                ledger.backoff_seconds += backoff
                results[index] = result
                # The registry is thread-safe; worker threads observe
                # concurrently without coordination.
                if self.observer is not None:
                    self.observer.observe("cluster.task_seconds", elapsed)

        if tasks:
            with ThreadPoolExecutor(max_workers=self.num_workers) as pool:
                futures = [
                    pool.submit(drain, worker_id)
                    for worker_id in range(self.num_workers)
                    if queues[worker_id]
                ]
                for future in futures:
                    future.result()  # re-raise drain-level failures
        metrics = ClusterMetrics(
            phase=phase, ledgers=ledgers, placements=list(placement)
        )
        self.history.append(metrics)
        if errors:
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return results
