"""A simulated share-nothing MapReduce platform.

The paper runs on Hadoop; its claims are about *relative* work
distribution — input skew, straggling reducers, shuffle volume, candidate
counts — all of which are observable in-process.  This package provides:

* :mod:`repro.mapreduce.types` — the :class:`Block` record batch (our
  splits are numpy blocks, so mappers/combiners/reducers stay
  vectorised; the API is Hadoop's ``mapPartitions`` shape);
* :mod:`repro.mapreduce.counters` — Hadoop-style counter groups;
* :mod:`repro.mapreduce.hdfs` — an in-memory DFS with I/O accounting;
* :mod:`repro.mapreduce.cache` — the distributed cache (read-only side
  data shipped to every mapper: pivots, sample skyline, PGmap);
* :mod:`repro.mapreduce.cluster` — workers with per-task wall-clock and
  abstract-cost ledgers, makespan/skew metrics, and optional straggler
  fault injection;
* :mod:`repro.mapreduce.faults` — seeded, deterministic fault
  injection (:class:`FaultPlan`): transient task failures with retry +
  backoff, mid-round worker crashes that lose completed map output,
  and checksum-detected shuffle corruption;
* :mod:`repro.mapreduce.job` / :mod:`repro.mapreduce.runtime` — job
  specification and the engine that executes map → combine → shuffle →
  reduce rounds over the simulated cluster, including lineage-based
  re-execution of lost map tasks and shuffle re-fetch;
* :mod:`repro.mapreduce.parallel` / :mod:`repro.mapreduce.procpool` —
  drop-in executors that run the same rounds on real threads
  (:class:`ThreadedCluster`) or real worker processes
  (:class:`ProcessPoolCluster`, with shared-memory Block transport via
  :mod:`repro.mapreduce.shm`).
"""

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterMetrics, SimulatedCluster, WorkerLedger
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan, TransientTaskError
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import JobResult, MapReduceJob, TaskContext
from repro.mapreduce.parallel import ThreadedCluster
from repro.mapreduce.procpool import ProcessPoolCluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block

__all__ = [
    "Block",
    "ClusterMetrics",
    "Counters",
    "DistributedCache",
    "FaultPlan",
    "InMemoryDFS",
    "JobResult",
    "MapReduceJob",
    "MapReduceRuntime",
    "ProcessPoolCluster",
    "SimulatedCluster",
    "TaskContext",
    "ThreadedCluster",
    "TransientTaskError",
    "WorkerLedger",
]
