"""MapReduce job specification and task context.

A job is three callables over :class:`~repro.mapreduce.types.Block`
batches:

* ``mapper(block, ctx) -> iterable of (key, Block)``
* ``combiner(key, blocks, ctx) -> list of Block``   (optional)
* ``reducer(key, blocks, ctx) -> anything``

Keys are the integer group ids produced by the partition rule.  The
:class:`TaskContext` hands tasks the distributed cache, the job counters,
and an :class:`~repro.zorder.zbtree.OpCounter` whose total becomes the
task's abstract cost on the worker ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.core.exceptions import MapReduceError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.observability.metrics import MetricsRegistry
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterMetrics
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import Block
from repro.zorder.zbtree import OpCounter

Mapper = Callable[[Block, "TaskContext"], Iterable[Tuple[int, Block]]]
Combiner = Callable[[int, List[Block], "TaskContext"], List[Block]]
Reducer = Callable[[int, List[Block], "TaskContext"], Any]


class TaskContext:
    """Per-task execution context.

    ``metrics`` (optional) is the run's
    :class:`~repro.observability.metrics.MetricsRegistry`; ``span`` is
    the task's trace span — both are ``None`` on untraced runs, and
    :meth:`observe` degrades to a no-op so job code never branches.
    """

    def __init__(
        self,
        cache: DistributedCache,
        counters: Counters,
        metrics: Optional["MetricsRegistry"] = None,
        span: Optional[Any] = None,
    ) -> None:
        self.cache = cache
        self.counters = counters
        self.ops = OpCounter()
        self.metrics = metrics
        self.span = span

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample (no-op when metrics are off)."""
        if self.metrics is not None:
            self.metrics.observe(name, value)

    def cost_units(self, records: int = 0) -> int:
        """Abstract cost of the task: records touched + dominance work."""
        return int(records) + self.ops.total()


@dataclass
class MapReduceJob:
    """Declarative job: wire the three phases together."""

    name: str
    mapper: Mapper
    reducer: Reducer
    combiner: Optional[Combiner] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise MapReduceError("job needs a non-empty name")


#: the ``group -> name`` counters that describe recovery activity
FAULT_COUNTER_KEYS: "tuple" = (
    ("map", "failed_attempts"),
    ("map", "worker_crashes"),
    ("map", "lost_map_outputs"),
    ("map", "reexecuted_tasks"),
    ("reduce", "failed_attempts"),
    ("reduce", "retries"),
    ("reduce", "lost_tasks"),
    ("shuffle", "corrupt_blocks"),
    ("shuffle", "refetched_bytes"),
    ("dfs", "skipped_outputs"),
)


@dataclass
class JobResult:
    """Everything a driver learns from one executed job."""

    job_name: str
    outputs: Dict[int, Any]
    counters: Counters
    map_metrics: ClusterMetrics
    reduce_metrics: ClusterMetrics
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    elapsed_seconds: float = 0.0
    extras: Dict[str, Any] = field(default_factory=dict)
    #: metrics of the map re-execution round after a worker crash lost
    #: completed map output (None when no recovery round ran)
    recovery_metrics: Optional[ClusterMetrics] = None
    #: whole-job execution attempt (a supervisor-level retry runs the
    #: same job under attempt 1, 2, ...); 0 on a first execution
    attempt: int = 0

    @property
    def tagged_name(self) -> str:
        """Job name carrying the attempt tag — ``phase1@2`` — so a
        retried job is distinguishable in reports and fault summaries."""
        if self.attempt == 0:
            return self.job_name
        return f"{self.job_name}@{self.attempt}"

    def fault_summary(self) -> Dict[str, int]:
        """Flat ``"group.name" -> value`` view of the failure counters
        (all keys present, zero when the fault never fired), plus the
        job's execution attempt under ``"job.attempt"``."""
        out = {
            f"{group}.{name}": self.counters.get(group, name)
            for group, name in FAULT_COUNTER_KEYS
        }
        out["job.attempt"] = self.attempt
        return out

    @property
    def recovery_cost(self) -> int:
        """Abstract cost spent re-executing lost map tasks."""
        if self.recovery_metrics is None:
            return 0
        return self.recovery_metrics.total_cost
