"""Simulated cluster: workers, task placement, and cost ledgers.

Tasks are executed in-process but *attributed* to workers, giving two
complementary views of each job phase:

* **wall cost** — measured ``perf_counter`` seconds per task, optionally
  inflated by a per-worker slowdown factor (straggler fault injection:
  "faulty disk, server failure" from §1 become a deterministic multiplier
  on one worker's ledger);
* **abstract cost** — records processed plus dominance tests executed
  (from :class:`~repro.zorder.zbtree.OpCounter`), which is deterministic
  across hosts and is what the figure benchmarks report.

The *makespan* of a phase is the maximum per-worker total — the quantity
that degrades under data skew and stragglers, since a phase finishes only
when its slowest worker does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.core.exceptions import FaultInjectionError, MapReduceError
from repro.mapreduce.faults import FaultPlan, TransientTaskError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.observability.metrics import MetricsRegistry

T = TypeVar("T")

#: a task returns (result, abstract_cost_units)
Task = Callable[[], Tuple[T, int]]


@dataclass(frozen=True)
class LostTask:
    """Sentinel result for a task terminally lost in a *lenient* round.

    Hadoop's ``mapreduce.reduce.failures.maxpercent`` knob lets a job
    succeed despite a bounded fraction of failed reduce tasks; lenient
    rounds are that semantics: instead of aborting the round, the
    exhausted task's slot holds this sentinel and the caller decides
    what losing it means (the pipeline supervisor turns lost phase-1
    groups into a degraded partial skyline).
    """

    index: int
    error: MapReduceError


@dataclass
class WorkerLedger:
    """Accrued work of one worker within one phase."""

    worker_id: int
    tasks: int = 0
    wall_seconds: float = 0.0
    cost_units: int = 0
    speculative_copies: int = 0
    failed_attempts: int = 0
    backoff_seconds: float = 0.0


@dataclass
class ClusterMetrics:
    """Summary of one executed phase."""

    phase: str
    ledgers: List[WorkerLedger] = field(default_factory=list)
    #: effective worker id per task (after failed-worker rerouting) —
    #: the lineage the runtime uses to re-execute lost map output
    placements: Optional[List[int]] = None

    @property
    def makespan_seconds(self) -> float:
        """Wall-clock makespan: the slowest worker's total."""
        return max((w.wall_seconds for w in self.ledgers), default=0.0)

    @property
    def total_seconds(self) -> float:
        return sum(w.wall_seconds for w in self.ledgers)

    @property
    def makespan_cost(self) -> int:
        """Abstract-cost makespan (deterministic skew/straggler view)."""
        return max((w.cost_units for w in self.ledgers), default=0)

    @property
    def total_cost(self) -> int:
        return sum(w.cost_units for w in self.ledgers)

    def cost_skew(self) -> float:
        """Max-to-mean abstract cost over workers that did any work."""
        costs = np.asarray(
            [w.cost_units for w in self.ledgers if w.tasks > 0], dtype=np.float64
        )
        if costs.size == 0 or costs.mean() == 0:
            return 1.0
        return float(costs.max() / costs.mean())

    @property
    def speculative_copies(self) -> int:
        """Total speculative task re-executions in this phase."""
        return sum(w.speculative_copies for w in self.ledgers)

    @property
    def failed_attempts(self) -> int:
        """Total transient task-attempt failures (injected faults)."""
        return sum(w.failed_attempts for w in self.ledgers)

    @property
    def backoff_seconds(self) -> float:
        """Total accounted retry backoff across workers."""
        return sum(w.backoff_seconds for w in self.ledgers)

    def active_ledgers(self) -> List[WorkerLedger]:
        """Ledgers of workers that actually ran tasks this phase (the
        population the per-worker load-balance histograms are over)."""
        return [w for w in self.ledgers if w.tasks > 0]


class SimulatedCluster:
    """A fixed pool of workers executing task rounds.

    Parameters
    ----------
    num_workers:
        Worker pool size (the paper's reducer slots).
    slowdown_factors:
        Optional per-worker wall-time multipliers for straggler
        injection; length must equal ``num_workers``.
    fault_plan:
        Optional :class:`~repro.mapreduce.faults.FaultPlan`; injects
        transient per-attempt task failures, retried with
        exponential-backoff accounting up to ``max_attempts``.
    """

    def __init__(
        self,
        num_workers: int,
        slowdown_factors: Optional[Sequence[float]] = None,
        speculative: bool = False,
        speculation_threshold: float = 1.5,
        failed_workers: Optional[Sequence[int]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if num_workers <= 0:
            raise MapReduceError("num_workers must be positive")
        if slowdown_factors is not None:
            factors = list(slowdown_factors)
            if len(factors) != num_workers:
                raise MapReduceError(
                    "slowdown_factors must have one entry per worker"
                )
            if any(f <= 0 for f in factors):
                raise MapReduceError("slowdown factors must be positive")
        else:
            factors = [1.0] * num_workers
        if speculation_threshold <= 1.0:
            raise MapReduceError("speculation_threshold must be > 1")
        failed = set(int(w) for w in failed_workers or ())
        if any(not (0 <= w < num_workers) for w in failed):
            raise MapReduceError("failed worker id out of range")
        if len(failed) >= num_workers:
            raise MapReduceError("at least one worker must survive")
        self.num_workers = num_workers
        self.slowdown_factors = factors
        #: class marker: remote executors ship tasks across a process
        #: boundary, so the runtime must send picklable task payloads
        #: instead of closures (see ``MapReduceRuntime``)
        self.remote = False
        self.speculative = speculative
        self.speculation_threshold = speculation_threshold
        self.failed_workers = failed
        self.fault_plan = fault_plan
        self.history: List[ClusterMetrics] = []
        #: optional :class:`~repro.observability.metrics.MetricsRegistry`
        #: receiving live per-task wall-second samples; None (default)
        #: keeps the execution path observation-free
        self.observer: Optional["MetricsRegistry"] = None

    def run_round(
        self,
        phase: str,
        tasks: Sequence[Task],
        placement: Optional[Sequence[int]] = None,
        lenient: bool = False,
    ) -> List[T]:
        """Execute a round of tasks, attributing each to a worker.

        ``placement[i]`` pins task ``i`` to a worker; by default tasks go
        round-robin, which is how Hadoop spreads splits/reduce keys when
        counts exceed slots.  Returns task results in task order and
        appends a :class:`ClusterMetrics` entry to :attr:`history`.

        With ``lenient=True`` a task that exhausts its retry budget does
        not abort the round: its result slot holds a :class:`LostTask`
        and the remaining tasks still run.
        """
        if placement is None:
            placement = [i % self.num_workers for i in range(len(tasks))]
        elif len(placement) != len(tasks):
            raise MapReduceError("placement must have one entry per task")
        placement = self._reroute_failures(list(placement))
        executions: List[Tuple[int, float, int, int, float]] = []
        results: List[T] = []
        for index, (task, worker) in enumerate(zip(tasks, placement)):
            if not (0 <= worker < self.num_workers):
                raise MapReduceError(f"worker id {worker} out of range")
            result, cost, elapsed, failures, backoff = self._run_attempts(
                phase, index, task, lenient=lenient
            )
            if self.observer is not None:
                self.observer.observe("cluster.task_seconds", elapsed)
            executions.append((worker, elapsed, cost, failures, backoff))
            results.append(result)
        ledgers = self._build_ledgers(executions)
        if self.speculative:
            self._apply_speculation(ledgers, executions)
        metrics = ClusterMetrics(
            phase=phase, ledgers=ledgers, placements=list(placement)
        )
        self.history.append(metrics)
        return results

    def _run_attempts(
        self, phase: str, index: int, task: Task, lenient: bool = False
    ) -> Tuple[T, int, float, int, float]:
        """Run one task under the fault plan's retry loop.

        Injected failures strike *before* the task body runs (the
        attempt dies on startup), so a retried task never double-counts
        job counters or abstract cost.  Returns ``(result, cost,
        elapsed_seconds, failed_attempts, backoff_seconds)``.  In
        lenient mode budget exhaustion yields a :class:`LostTask`
        result (cost 0) instead of raising.
        """
        plan = self.fault_plan
        failures = 0
        backoff = 0.0
        attempt = 1
        while True:
            if plan is not None and plan.task_attempt_fails(
                phase, index, attempt
            ):
                failures += 1
                backoff += plan.backoff_seconds(attempt)
                if attempt >= plan.max_attempts:
                    error = FaultInjectionError(
                        f"task {index} in phase {phase!r} exhausted "
                        f"{plan.max_attempts} attempts"
                    )
                    error.__cause__ = TransientTaskError(
                        f"injected failure on attempt {attempt}"
                    )
                    if lenient:
                        return (
                            LostTask(index, error),  # type: ignore[return-value]
                            0,
                            0.0,
                            failures,
                            backoff,
                        )
                    raise error
                attempt += 1
                continue
            start = time.perf_counter()
            result, cost = task()
            elapsed = time.perf_counter() - start
            return result, int(cost), elapsed, failures, backoff

    def _reroute_failures(self, placement: List[int]) -> List[int]:
        """Worker-crash fault injection: tasks placed on failed workers
        are retried on the surviving ones (round-robin), modelling the
        paper's "server failure" straggler cause with Hadoop's
        re-execution semantics.  Retries are counted on the ledger via
        the surviving worker's task count (the lost attempt costs
        nothing in our model: the crash happens before the attempt)."""
        if not self.failed_workers:
            return placement
        survivors = [
            w for w in range(self.num_workers)
            if w not in self.failed_workers
        ]
        cursor = 0
        rerouted = []
        for worker in placement:
            if worker in self.failed_workers:
                rerouted.append(survivors[cursor % len(survivors)])
                cursor += 1
            else:
                rerouted.append(worker)
        return rerouted

    def _build_ledgers(
        self, executions: List[Tuple[int, float, int, int, float]]
    ) -> List[WorkerLedger]:
        ledgers = [WorkerLedger(w) for w in range(self.num_workers)]
        for worker, elapsed, cost, failures, backoff in executions:
            ledger = ledgers[worker]
            ledger.tasks += 1
            # Backoff is retry *waiting*, not compute: it is not scaled
            # by the worker's slowdown factor.
            ledger.wall_seconds += (
                elapsed * self.slowdown_factors[worker] + backoff
            )
            ledger.cost_units += cost
            ledger.failed_attempts += failures
            ledger.backoff_seconds += backoff
        return ledgers

    def _apply_speculation(
        self,
        ledgers: List[WorkerLedger],
        executions: List[Tuple[int, float, int, int, float]],
    ) -> None:
        """Speculative task re-execution (Hadoop's straggler cure).

        Deterministic model: while one worker's wall time exceeds
        ``speculation_threshold`` times the mean, its largest task is
        re-executed on the currently fastest worker; the backup copy
        wins, the original attempt is killed halfway (half its time is
        still wasted on the slow worker).  This cures *environmental*
        stragglers (slow machines) but not *algorithmic* skew — a huge
        task is huge on every worker — which is exactly the distinction
        the paper's grouping is motivated by.
        """
        # Remaining task queues by worker (intrinsic seconds).
        queues: List[List[float]] = [[] for _ in range(self.num_workers)]
        for worker, elapsed, _cost, _failures, _backoff in executions:
            queues[worker].append(elapsed)
        for _round in range(len(executions)):
            walls = [w.wall_seconds for w in ledgers]
            mean = sum(walls) / len(walls)
            slowest = max(range(len(walls)), key=lambda w: walls[w])
            if mean == 0 or walls[slowest] <= self.speculation_threshold * mean:
                break
            if not queues[slowest]:
                break
            backup = min(range(len(walls)), key=lambda w: walls[w])
            if backup == slowest:
                break
            base = max(queues[slowest])
            saved = base * self.slowdown_factors[slowest]
            added = base * self.slowdown_factors[backup]
            # Only speculate when the backup genuinely finishes earlier.
            if walls[backup] + added >= walls[slowest]:
                break
            queues[slowest].remove(base)
            ledgers[slowest].wall_seconds -= saved / 2.0  # killed halfway
            ledgers[backup].wall_seconds += added
            ledgers[backup].speculative_copies += 1

    def shutdown(self) -> None:
        """Release executor resources (no-op for in-process clusters)."""

    def metrics_for(self, phase: str) -> ClusterMetrics:
        """Most recent metrics entry for a phase name."""
        for metrics in reversed(self.history):
            if metrics.phase == phase:
                return metrics
        raise MapReduceError(f"no executed phase named {phase!r}")
