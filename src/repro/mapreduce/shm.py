"""Shared-memory Block transport for the process-pool executor.

Pickling a :class:`~repro.mapreduce.types.Block` copies its arrays
through the pool's result pipe byte by byte.  For the task *inputs* —
the large side of the traffic: input splits and shuffled candidate
blocks — the coordinator instead packs every outbound array into one
``multiprocessing.shared_memory`` segment per round and ships tiny
picklable :class:`ShmBlockRef` descriptors.  A worker resolves a
descriptor to zero-copy, read-only numpy views over the mapped segment.

Layout: arrays are laid out back to back at 64-byte-aligned offsets
(ids, points, then the packed z-batch when present, block after block).
A descriptor carries ``(segment, offset, shape, dtype)`` per array —
enough to reconstruct the view without touching the data.

Lifecycle: the coordinator creates the segment before dispatch and
unlinks it right after the round's results arrive (POSIX keeps the
mapping alive for workers that still hold views).  Workers cache one
attachment per segment name and close stale attachments on the next
round's first resolve.  Attachments are explicitly unregistered from
``resource_tracker`` — the *coordinator* owns the segment's lifetime,
and letting each worker's tracker also try to unlink it would double
-free the name at interpreter shutdown.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mapreduce.types import Block

#: alignment for each packed array (cache-line friendly, and safe for
#: any numpy dtype's alignment requirement)
_ALIGN = 64

#: rounds whose total payload is smaller than this go inline through the
#: pickle pipe — mapping a segment costs more than copying a few KB
MIN_SHM_BYTES = 64 * 1024


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ShmArrayRef:
    """Picklable descriptor of one array inside a shared segment."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str

    def resolve(self, buf: memoryview) -> np.ndarray:
        view = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype), buffer=buf,
            offset=self.offset,
        )
        view.flags.writeable = False
        return view


@dataclass(frozen=True)
class ShmBlockRef:
    """Picklable stand-in for a Block whose arrays live in a segment."""

    ids: ShmArrayRef
    points: ShmArrayRef
    zaddresses: Optional[ShmArrayRef] = None

    def resolve(self) -> Block:
        buf = attach(self.ids.segment).buf
        z = None if self.zaddresses is None else self.zaddresses.resolve(buf)
        return Block(
            self.ids.resolve(buf), self.points.resolve(buf), zaddresses=z
        )


def resolve_block(block: object) -> Block:
    """A Block passes through; a ShmBlockRef resolves to its views."""
    if isinstance(block, ShmBlockRef):
        return block.resolve()
    assert isinstance(block, Block)
    return block


@dataclass
class RoundSegment:
    """Coordinator-side handle on one round's packed segment."""

    shm: shared_memory.SharedMemory
    nbytes: int = 0

    def close(self) -> None:
        """Release the coordinator's mapping and unlink the name.

        Workers that still hold views keep their mappings; the kernel
        frees the memory once the last mapping goes away.
        """
        try:
            self.shm.close()
        finally:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass


def _payload_arrays(block: Block) -> List[np.ndarray]:
    arrays = [block.ids, block.points]
    if block.zaddresses is not None:
        arrays.append(block.zaddresses)
    return arrays


def pack_blocks(
    blocks: Sequence[Block], *, min_bytes: int = MIN_SHM_BYTES
) -> Tuple[Optional[RoundSegment], List[object]]:
    """Pack blocks into one fresh segment; return (segment, stand-ins).

    The stand-in list is positionally aligned with ``blocks``.  Rounds
    whose total payload is under ``min_bytes`` return ``(None, blocks)``
    unchanged — small payloads ride the pickle pipe.
    """
    plan: List[List[Tuple[int, np.ndarray]]] = []
    cursor = 0
    for block in blocks:
        placed = []
        for array in _payload_arrays(block):
            array = np.ascontiguousarray(array)
            cursor = _aligned(cursor)
            placed.append((cursor, array))
            cursor += array.nbytes
        plan.append(placed)
    if cursor < min_bytes:
        return None, list(blocks)

    shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
    refs: List[object] = []
    for block, placed in zip(blocks, plan):
        array_refs = []
        for offset, array in placed:
            dest = np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
            )
            dest[...] = array
            array_refs.append(
                ShmArrayRef(shm.name, offset, array.shape, array.dtype.str)
            )
        z_ref = array_refs[2] if len(array_refs) == 3 else None
        refs.append(ShmBlockRef(array_refs[0], array_refs[1], z_ref))
    return RoundSegment(shm, nbytes=cursor), refs


# ----------------------------------------------------------------------
# worker-side attachment cache
# ----------------------------------------------------------------------
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}

#: fork-capable platforms share one resource-tracker process between the
#: coordinator and its pool workers; its name set deduplicates the
#: worker's attach-time registration, and the coordinator's unlink
#: removes the name exactly once.  Only spawn-style pools (per-process
#: trackers) need the attach side to disown the registration, or each
#: worker's tracker would try to unlink the coordinator's segment at
#: exit.
_SHARED_TRACKER = "fork" in multiprocessing.get_all_start_methods()


def attach(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment by name, caching one mapping per name.

    Stale mappings (other names) are closed opportunistically — a close
    can fail with ``BufferError`` while a task-result view still
    references the buffer, in which case it is retried on the next
    attach.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached
    for stale in [n for n in _ATTACHED if n != name]:
        try:
            _ATTACHED[stale].close()
        except BufferError:
            continue
        del _ATTACHED[stale]
    shm = shared_memory.SharedMemory(name=name)
    # The coordinator owns unlinking; without this, a spawn worker's own
    # resource tracker would try to unlink the same name at exit.
    if not _SHARED_TRACKER:  # pragma: no cover - spawn-only platforms
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    _ATTACHED[name] = shm
    return shm


__all__ = [
    "MIN_SHM_BYTES",
    "RoundSegment",
    "ShmArrayRef",
    "ShmBlockRef",
    "attach",
    "pack_blocks",
    "resolve_block",
]
