"""Hadoop-style counter groups.

Counters are how the benchmarks observe the quantities the paper plots:
records shuffled between the phases, skyline candidates emitted, bytes
written to the DFS, dominance tests executed.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Dict


class Counters:
    """Nested ``group -> name -> int`` counters.

    Thread-safe: tasks on a :class:`~repro.mapreduce.parallel.ThreadedCluster`
    increment shared job counters concurrently.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._lock = threading.Lock()

    def inc(self, group: str, name: str, amount: int = 1) -> None:
        """Increment ``group/name`` by ``amount``."""
        with self._lock:
            self._data[group][name] += int(amount)

    def get(self, group: str, name: str) -> int:
        """Current value (0 if never incremented)."""
        with self._lock:
            return self._data.get(group, {}).get(name, 0)

    def group(self, group: str) -> Dict[str, int]:
        """Snapshot of one counter group (empty dict if absent)."""
        with self._lock:
            return dict(self._data.get(group, {}))

    def update_from_dict(self, data: Dict[str, Dict[str, int]]) -> None:
        """Accumulate a nested ``group -> name -> value`` dict (the
        inverse of :meth:`as_dict`; used when counters round-trip
        through a checkpoint or metrics export)."""
        with self._lock:
            for group, names in data.items():
                for name, value in names.items():
                    self._data[group][name] += int(value)

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, int]]) -> "Counters":
        counters = cls()
        counters.update_from_dict(data)
        return counters

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter set into this one."""
        with other._lock:
            snapshot = {
                g: dict(names) for g, names in other._data.items()
            }
        with self._lock:
            for group, names in snapshot.items():
                for name, value in names.items():
                    self._data[group][name] += value

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict snapshot (for reports and assertions)."""
        with self._lock:
            return {g: dict(names) for g, names in self._data.items()}

    def __getstate__(self) -> Dict[str, Dict[str, int]]:
        # The lock cannot cross a pickle boundary and the nested
        # lambda-defaultdict pickles poorly; ship a plain-dict snapshot
        # so counters survive the process-pool boundary losslessly.
        return self.as_dict()

    def __setstate__(self, state: Dict[str, Dict[str, int]]) -> None:
        self._data = defaultdict(lambda: defaultdict(int))
        self._lock = threading.Lock()
        self.update_from_dict(state)

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"
