"""Deterministic fault injection for the MapReduce runtime.

The paper motivates its grouping design with straggler causes — "faulty
disk, server failure" (§1) — and the engine's headline guarantee is that
the skyline is *identical* under any fault schedule.  This module makes
that schedule a first-class, seeded object:

* **transient task failures** — an attempt raises before the task body
  runs; the cluster retries with exponential-backoff accounting up to
  ``max_attempts``;
* **worker crashes** — a worker dies at the end of a map round, *losing
  its already-completed map output*; the runtime re-executes exactly the
  lost map tasks on the survivors before shuffling (Hadoop's lineage
  semantics);
* **block corruption** — a shuffled block arrives bit-flipped; the
  receiver detects the checksum mismatch and re-fetches from the mapper
  output.

Every decision is a *keyed draw*: a BLAKE2 hash of
``(seed, kind, phase, index, attempt)`` mapped to ``[0, 1)``.  No RNG
state is consumed sequentially, so the schedule is independent of task
execution order — the same plan produces the same faults on the
sequential :class:`~repro.mapreduce.cluster.SimulatedCluster` and the
thread-racing :class:`~repro.mapreduce.parallel.ThreadedCluster`, across
processes and hosts (no dependence on ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.core.exceptions import ConfigurationError, MapReduceError
from repro.mapreduce.types import Block

__all__ = ["FaultPlan", "TransientTaskError", "keyed_draw"]


class TransientTaskError(MapReduceError):
    """The injected, retryable failure of one task attempt."""


_DRAW_DENOM = float(2 ** 64)


def keyed_draw(seed: int, *key: object) -> float:
    """Uniform [0, 1) draw keyed by ``(seed, *key)``.

    The backbone of every deterministic fault schedule in the repo
    (this module's :class:`FaultPlan` and the serving tier's
    :class:`~repro.serving.faults.ServingFaultPlan`): a BLAKE2 hash of
    the key material mapped to the unit interval.  No RNG state is
    consumed sequentially, so draws are independent of evaluation
    order, stable across threads, processes, and hosts (no dependence
    on ``PYTHONHASHSEED``).
    """
    material = ":".join(str(part) for part in (seed,) + key)
    digest = hashlib.blake2b(material.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / _DRAW_DENOM


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of failures.

    Parameters
    ----------
    seed:
        Keys every draw; same seed → identical fault schedule.
    task_failure_rate:
        Probability that one task *attempt* raises
        :class:`TransientTaskError` (drawn per attempt, so a task can
        fail several times before succeeding).
    worker_crash_rate:
        Probability that a worker crashes at the end of a map round,
        losing the map output it produced in that round.
    corruption_rate:
        Probability that one shuffled block arrives corrupted and must
        be re-fetched after the checksum mismatch.
    max_attempts:
        Retry budget per task (includes the final successful attempt);
        exhausting it raises
        :class:`~repro.core.exceptions.FaultInjectionError`.
    backoff_base:
        Accounted (not slept) retry delay: attempt ``k`` adds
        ``backoff_base * 2**(k-1)`` seconds to the worker's wall ledger.
    scripted_failures:
        Exact schedules for tests: ``{(phase, task_index): n}`` makes the
        first ``n`` attempts of that task fail, independent of
        ``task_failure_rate``.
    """

    seed: int = 0
    task_failure_rate: float = 0.0
    worker_crash_rate: float = 0.0
    corruption_rate: float = 0.0
    max_attempts: int = 4
    backoff_base: float = 0.05
    scripted_failures: Mapping[Tuple[str, int], int] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for name in ("task_failure_rate", "worker_crash_rate",
                     "corruption_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate < 1.0):
                raise ConfigurationError(
                    f"{name} must be in [0, 1); got {rate!r}"
                )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")

    # ------------------------------------------------------------------
    # keyed draws
    # ------------------------------------------------------------------
    def _draw(self, *key: object) -> float:
        """Uniform [0, 1) draw keyed by (seed, *key) — order-independent
        of when it is evaluated, stable across processes."""
        return keyed_draw(self.seed, *key)

    # ------------------------------------------------------------------
    # the three fault kinds
    # ------------------------------------------------------------------
    def task_attempt_fails(self, phase: str, index: int, attempt: int) -> bool:
        """Does attempt ``attempt`` (1-based) of task ``index`` fail?"""
        scripted = self.scripted_failures.get((phase, index))
        if scripted is not None:
            return attempt <= scripted
        if self.task_failure_rate <= 0.0:
            return False
        return self._draw("task", phase, index, attempt) < self.task_failure_rate

    def backoff_seconds(self, attempt: int) -> float:
        """Accounted retry delay after a failed attempt (1-based)."""
        return self.backoff_base * (2.0 ** (attempt - 1))

    def crashed_workers(self, phase: str, num_workers: int) -> List[int]:
        """Workers that crash at the end of ``phase``; at least one
        worker always survives (the one with the largest draw is spared
        if every draw lands under the rate)."""
        if self.worker_crash_rate <= 0.0 or num_workers <= 0:
            return []
        draws = {
            w: self._draw("crash", phase, w) for w in range(num_workers)
        }
        crashed = [w for w, u in draws.items() if u < self.worker_crash_rate]
        if len(crashed) == num_workers:
            crashed.remove(max(crashed, key=lambda w: draws[w]))
        return crashed

    def corrupts(self, phase: str, key: int, fetch_index: int) -> bool:
        """Is the ``fetch_index``-th block fetched for reduce ``key``
        corrupted in flight?"""
        if self.corruption_rate <= 0.0:
            return False
        return (
            self._draw("corrupt", phase, key, fetch_index)
            < self.corruption_rate
        )

    @staticmethod
    def corrupt_copy(block: Block) -> Block:
        """A bit-flipped copy of ``block`` (what the wire delivered).

        Empty blocks have nothing to flip and are returned unchanged
        (their checksum still matches, i.e. empty transfers cannot be
        corrupted — there are no payload bytes on the wire).
        """
        if block.size == 0:
            return block
        points = block.points.copy()
        points[0, 0] += 1.0
        return Block(block.ids.copy(), points)

    # ------------------------------------------------------------------
    # CLI spec parsing
    # ------------------------------------------------------------------
    # plain (unannotated) class attribute so the dataclass machinery
    # does not mistake it for a field
    _SPEC_KEYS = {
        "seed": ("seed", int),
        "task": ("task_failure_rate", float),
        "crash": ("worker_crash_rate", float),
        "corrupt": ("corruption_rate", float),
        "attempts": ("max_attempts", int),
        "backoff": ("backoff_base", float),
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=7,task=0.1,crash=0.2,corrupt=0.05"`` specs.

        Keys: ``seed``, ``task`` (failure rate), ``crash``, ``corrupt``,
        ``attempts``, ``backoff``.
        """
        kwargs: Dict[str, object] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ConfigurationError(
                    f"fault spec token {token!r} must look like key=value"
                )
            key, _, raw = token.partition("=")
            key = key.strip().lower()
            if key not in cls._SPEC_KEYS:
                raise ConfigurationError(
                    f"unknown fault spec key {key!r}; "
                    f"choose from {sorted(cls._SPEC_KEYS)}"
                )
            attr, cast = cls._SPEC_KEYS[key]
            try:
                kwargs[attr] = cast(raw.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad value {raw.strip()!r} for fault spec key {key!r}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Compact one-line summary (CLI/report headers)."""
        return (
            f"seed={self.seed} task={self.task_failure_rate} "
            f"crash={self.worker_crash_rate} corrupt={self.corruption_rate} "
            f"attempts={self.max_attempts} backoff={self.backoff_base}"
        )
