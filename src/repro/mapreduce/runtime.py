"""The engine: executes a job's map → combine → shuffle → reduce rounds.

Execution model (matching Hadoop's semantics at block granularity):

1. one **map task** per input split; its emitted ``(key, Block)`` pairs
   are grouped per task and run through the **combiner** before leaving
   the mapper (this is where the paper's local-skyline combiners cut the
   shuffle volume);
2. the **shuffle** gathers combiner outputs by key across all map tasks,
   accounting records and bytes moved;
3. one **reduce task** per key, placed round-robin over workers (keys
   are group ids, so reducer load mirrors the grouping quality).

Fault tolerance (active when a
:class:`~repro.mapreduce.faults.FaultPlan` is attached):

* transient task-attempt failures are retried by the cluster itself
  (see :meth:`SimulatedCluster._run_attempts`);
* a worker crashing at the end of the map round loses its completed map
  output; the runtime keeps a **lineage map** from input split to the
  worker that produced its output, so only the lost map tasks re-run
  (on the survivors) before the shuffle — Hadoop's re-execution
  semantics;
* every shuffled block is **checksum-verified**; a corrupted fetch is
  detected and re-fetched from the retained map output.

Counters follow Hadoop's only-successful-attempts rule: map tasks
accumulate into per-attempt counter sets that are merged into the job
counters only for the attempt whose output actually survives, so a
faulted run reports the same ``map.*``/``phase1.*`` record counts as a
clean one.  The recovery work itself is observable through
``map.failed_attempts``, ``map.worker_crashes``, ``map.lost_map_outputs``,
``reduce.retries``, and ``shuffle.corrupt_blocks``.

Observability: when a :class:`~repro.observability.tracer.Tracer` is
attached, the runtime emits a span per job, per phase (map / shuffle /
reduce), and per task, with records in/out, dominance-test counts, and
shuffle volume as span attributes.  A map task whose output is lost to
a worker crash has its span marked superseded when the re-execution
replaces it, so aggregating non-superseded span attributes reproduces
the job counters exactly.  The default tracer is the shared no-op
(:data:`~repro.observability.tracer.NULL_TRACER`) and per-task
instrumentation is guarded on ``tracer.enabled`` — a disabled run pays
one boolean test per task.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DeadlineExceededError, MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterMetrics, LostTask, SimulatedCluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import (
    Combiner,
    JobResult,
    MapReduceJob,
    Mapper,
    Reducer,
    TaskContext,
)
from repro.mapreduce.types import Block
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, SUPERSEDED, Span, Tracer


@dataclass(frozen=True)
class ReducePolicy:
    """How the reduce phase treats terminal task loss and deadlines.

    lenient:
        A reduce task that exhausts its retry budget
        (:class:`~repro.core.exceptions.FaultInjectionError`) loses its
        key instead of aborting the job — Hadoop's
        ``mapreduce.reduce.failures.maxpercent`` semantics.  Lost keys
        are reported in ``JobResult.extras`` (see below) so a caller
        can degrade gracefully.
    deadline:
        Optional ``time.monotonic()`` timestamp.  A reduce task that
        has not *started* by the deadline raises
        :class:`~repro.core.exceptions.DeadlineExceededError` (strict)
        or loses its key (lenient).

    With ``lenient=True`` the job result's ``extras`` carry:

    * ``"lost_keys"`` — sorted lost reduce keys;
    * ``"lost_reasons"`` — ``{key: str(error)}``;
    * ``"lost_floors"`` — ``{key: per-dimension minimum}`` over the
      blocks shuffled for that key (Hadoop retains map-output index
      metadata even when a reducer dies; the componentwise floor is the
      cheap sound bound a degraded merge needs to certify that a
      surviving point cannot be dominated by anything the lost key
      held);
    * ``"reduce_input_records"`` — ``{key: shuffled records}`` for
      coverage accounting.
    """

    lenient: bool = False
    deadline: Optional[float] = None


# ----------------------------------------------------------------------
# remote task payloads (the process-pool dispatch path)
# ----------------------------------------------------------------------
# A remote executor (``cluster.remote``) cannot run the closure tasks the
# in-process path builds — they close over the tracer, the coordinator's
# cache, and shared counters.  Instead the runtime ships small picklable
# payload objects and gets back :class:`RemoteTaskResult` plain data:
# per-task counters, span attributes, metric observations, and the
# kernel-stats delta the task accrued (``KernelStats`` deliberately
# pickles empty, so the delta must travel explicitly) — all merged
# coordinator-side in deterministic task order.


class _ObservationBuffer:
    """Worker-side stand-in for the metrics registry: collects
    ``ctx.observe`` samples to replay into the coordinator's registry."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[Tuple[str, float]] = []

    def observe(self, name: str, value: float) -> None:
        self.samples.append((name, float(value)))


def _kernel_stats_objects(cache: DistributedCache) -> List:
    """Distinct ``KernelStats`` objects reachable from cache entries
    (deterministic key order, deduplicated by identity — the codec is
    typically referenced by several entries)."""
    found: List = []
    for key in sorted(cache):
        stats = getattr(cache.get(key), "kernel_stats", None)
        if stats is not None and all(stats is not seen for seen in found):
            found.append(stats)
    return found


def _collect_kernel_delta(stats_objects: List) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for stats in stats_objects:
        for name, value in stats.snapshot().items():
            merged[name] = merged.get(name, 0) + int(value)
    return merged


@dataclass
class RemoteTaskResult:
    """Everything one remote task sends back across the pool boundary."""

    payload: object
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    span_attrs: Dict[str, object] = field(default_factory=dict)
    kernel_stats: Dict[str, int] = field(default_factory=dict)
    observations: List[Tuple[str, float]] = field(default_factory=list)
    #: real CPU seconds the task body consumed in its worker process,
    #: stamped by the pool's drain loop (stays 0.0 off the pool).  The
    #: cluster also emits it as the ``cluster.task_cpu_seconds``
    #: histogram — this field is per-task provenance, not re-observed
    #: coordinator-side (that would double-count).
    cpu_seconds: float = 0.0


@dataclass
class RemoteMapTask:
    """Picklable map task: mapper + combiner over one input block.

    ``block`` may be an inline :class:`Block` or a shared-memory
    descriptor — the cluster swaps one for the other via the
    ``shm_payload_blocks`` / ``with_shm_blocks`` protocol.
    """

    mapper: Mapper
    combiner: Optional[Combiner]
    index: int
    block: object

    def shm_payload_blocks(self) -> List[Block]:
        return [self.block] if isinstance(self.block, Block) else []

    def with_shm_blocks(self, refs: List[object]) -> "RemoteMapTask":
        return replace(self, block=refs[0]) if refs else self

    def __call__(self) -> Tuple[RemoteTaskResult, int]:
        from repro.mapreduce.procpool import worker_cache
        from repro.mapreduce.shm import resolve_block

        cache = worker_cache()
        stats_objects = _kernel_stats_objects(cache)
        for stats in stats_objects:
            # Tasks run serially within a worker process, so the delta
            # is simply reset-before / snapshot-after around the body.
            stats.reset()
        block = resolve_block(self.block)
        task_counters = Counters()
        buffer = _ObservationBuffer()
        ctx = TaskContext(cache, task_counters, metrics=buffer)
        task_counters.inc("map", "input_records", block.size)
        emitted: Dict[int, List[Block]] = defaultdict(list)
        for key, out_block in self.mapper(block, ctx):
            emitted[int(key)].append(out_block)
        if self.combiner is not None:
            emitted = {
                key: list(self.combiner(key, blocks, ctx))
                for key, blocks in emitted.items()
            }
        out_records = sum(
            b.size for blocks in emitted.values() for b in blocks
        )
        task_counters.inc("map", "output_records", out_records)
        MapReduceRuntime._count_dominance(task_counters, ctx)
        result = RemoteTaskResult(
            payload=dict(emitted),
            counters=task_counters.as_dict(),
            span_attrs={
                "records_in": block.size,
                "records_out": out_records,
                "dominance_point_tests": ctx.ops.point_tests,
                "dominance_region_tests": ctx.ops.region_tests,
            },
            kernel_stats=_collect_kernel_delta(stats_objects),
            observations=buffer.samples,
        )
        return result, ctx.cost_units(records=block.size)


@dataclass
class RemoteReduceTask:
    """Picklable reduce task: one key's blocks through the reducer."""

    job_name: str
    reducer: Reducer
    key: int
    index: int
    blocks: List[object]
    lenient: bool = False
    deadline: Optional[float] = None

    def shm_payload_blocks(self) -> List[Block]:
        return [b for b in self.blocks if isinstance(b, Block)]

    def with_shm_blocks(self, refs: List[object]) -> "RemoteReduceTask":
        return replace(self, blocks=list(refs)) if refs else self

    def __call__(self) -> Tuple[RemoteTaskResult, int]:
        from repro.mapreduce.procpool import worker_cache
        from repro.mapreduce.shm import resolve_block

        # CLOCK_MONOTONIC is system-wide on the platforms the pool runs
        # on, so the coordinator's deadline timestamp is comparable here.
        if self.deadline is not None and time.monotonic() >= self.deadline:
            error = DeadlineExceededError(
                f"reduce key {self.key} of {self.job_name!r} not started "
                f"before the deadline"
            )
            if self.lenient:
                return RemoteTaskResult(LostTask(self.index, error)), 0
            raise error
        cache = worker_cache()
        stats_objects = _kernel_stats_objects(cache)
        for stats in stats_objects:
            stats.reset()
        blocks = [resolve_block(b) for b in self.blocks]
        task_counters = Counters()
        buffer = _ObservationBuffer()
        ctx = TaskContext(cache, task_counters, metrics=buffer)
        in_records = sum(b.size for b in blocks)
        task_counters.inc("reduce", "input_records", in_records)
        result = self.reducer(self.key, blocks, ctx)
        out_records = result.size if isinstance(result, Block) else 0
        if isinstance(result, Block):
            task_counters.inc("reduce", "output_records", result.size)
        MapReduceRuntime._count_dominance(task_counters, ctx)
        remote_result = RemoteTaskResult(
            payload=result,
            counters=task_counters.as_dict(),
            span_attrs={
                "records_in": in_records,
                "records_out": out_records,
                "dominance_point_tests": ctx.ops.point_tests,
                "dominance_region_tests": ctx.ops.region_tests,
            },
            kernel_stats=_collect_kernel_delta(stats_objects),
            observations=buffer.samples,
        )
        return remote_result, ctx.cost_units(records=in_records)


class MapReduceRuntime:
    """Runs :class:`~repro.mapreduce.job.MapReduceJob` instances."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        dfs: Optional[InMemoryDFS] = None,
        cache: Optional[DistributedCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs if dfs is not None else InMemoryDFS()
        self.cache = cache if cache is not None else DistributedCache()
        #: runtime-level fault schedule (crash/corruption); defaults to
        #: the cluster's plan so one knob drives the whole stack
        self.fault_plan = (
            fault_plan
            if fault_plan is not None
            else getattr(cluster, "fault_plan", None)
        )
        #: span tracer (the shared no-op unless a run enables tracing)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: unified metrics registry shared by this runtime's tasks
        #: (``ctx.observe`` histograms); None disables live observation
        self.metrics = metrics
        #: reruns of the same output path get attempt-scoped paths so a
        #: retried/resumed job never collides with its earlier output
        self._output_attempts: Dict[str, int] = {}

    def run(
        self,
        job: MapReduceJob,
        input_blocks: Sequence[Block],
        output_path: Optional[str] = None,
        reduce_policy: Optional[ReducePolicy] = None,
        attempt: int = 0,
        parent_span: Optional[Span] = None,
    ) -> JobResult:
        """Execute ``job`` over the given input splits.

        When ``output_path`` is given and the reduce outputs are blocks,
        they are also written to the DFS (accounted); non-block outputs
        are skipped and counted under ``dfs.skipped_outputs``.  Re-runs
        against the same path write to an attempt-scoped path
        (``<path>/attempt-<k>``) instead of crashing on the immutable
        DFS file; :meth:`InMemoryDFS.latest` resolves the newest one.

        ``attempt`` tags the whole job execution (phase names become
        ``<job>@<attempt>:map`` etc. for ``attempt > 0``): a
        supervisor-level whole-job retry draws a fresh fault schedule
        rather than deterministically replaying the one that killed it.
        The attempt is carried on the returned
        :class:`~repro.mapreduce.job.JobResult` so retried jobs stay
        distinguishable downstream.

        ``parent_span`` roots this job's span subtree in a caller's
        trace (the pipeline drivers pass their stage spans).
        """
        if not input_blocks:
            raise MapReduceError("job needs at least one input split")
        started = time.perf_counter()
        counters = Counters()
        job_tag = job.name if attempt == 0 else f"{job.name}@{attempt}"
        job_span = self.tracer.start_span(
            "job", parent=parent_span, job=job.name, attempt=attempt,
            tag=job_tag,
        )

        map_outputs, map_metrics, recovery_metrics = self._map_phase(
            job, job_tag, input_blocks, counters, job_span
        )
        grouped, shuffle_records, shuffle_bytes = self._shuffle(
            job_tag, map_outputs, counters, job_span
        )
        outputs, lost = self._reduce_phase(
            job, job_tag, grouped, counters, reduce_policy, job_span
        )

        if output_path is not None:
            block_outputs = []
            skipped = 0
            for value in outputs.values():
                if isinstance(value, Block):
                    block_outputs.append(value)
                else:
                    skipped += 1
            if skipped:
                counters.inc("dfs", "skipped_outputs", skipped)
            rerun = self._output_attempts.get(output_path, 0)
            self._output_attempts[output_path] = rerun + 1
            actual_path = (
                output_path if rerun == 0
                else f"{output_path}/attempt-{rerun}"
            )
            self.dfs.write(actual_path, block_outputs)
            job_span.set("output_path", actual_path)

        elapsed = time.perf_counter() - started
        job_span.update(
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            faults_injected=(
                map_metrics.failed_attempts
                + counters.get("reduce", "failed_attempts")
                + counters.get("shuffle", "corrupt_blocks")
            ),
            faults_recovered=(
                counters.get("map", "reexecuted_tasks")
                + counters.get("shuffle", "corrupt_blocks")
            ),
        )
        job_span.finish()
        result = JobResult(
            job_name=job.name,
            outputs=outputs,
            counters=counters,
            map_metrics=map_metrics,
            reduce_metrics=self.cluster.metrics_for(f"{job_tag}:reduce"),
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            elapsed_seconds=elapsed,
            recovery_metrics=recovery_metrics,
            attempt=attempt,
        )
        if lost is not None:
            result.extras.update(lost)
        return result

    # ------------------------------------------------------------------
    def _map_phase(
        self,
        job: MapReduceJob,
        job_tag: str,
        input_blocks: Sequence[Block],
        counters: Counters,
        job_span: Span,
    ) -> Tuple[
        List[Dict[int, List[Block]]],
        ClusterMetrics,
        Optional[ClusterMetrics],
    ]:
        phase = f"{job_tag}:map"
        tracer = self.tracer
        traced = tracer.enabled
        phase_span = tracer.start_span("map", parent=job_span, phase=phase)

        def make_task(index: int, block: Block):
            def task() -> Tuple[
                Tuple[Dict[int, List[Block]], Counters, Optional[Span]], int
            ]:
                # Per-attempt counters: merged into the job counters
                # only if this attempt's output survives (Hadoop counts
                # successful attempts once, even after re-execution).
                task_span = (
                    tracer.start_span(
                        "map.task", parent=phase_span, phase=phase,
                        task=index,
                    )
                    if traced
                    else None
                )
                attempt_counters = Counters()
                ctx = TaskContext(
                    self.cache, attempt_counters,
                    metrics=self.metrics, span=task_span,
                )
                attempt_counters.inc("map", "input_records", block.size)
                emitted: Dict[int, List[Block]] = defaultdict(list)
                for key, out_block in job.mapper(block, ctx):
                    emitted[int(key)].append(out_block)
                if job.combiner is not None:
                    combined: Dict[int, List[Block]] = {}
                    for key, blocks in emitted.items():
                        combined[key] = list(job.combiner(key, blocks, ctx))
                    emitted = combined  # type: ignore[assignment]
                out_records = sum(
                    b.size for blocks in emitted.values() for b in blocks
                )
                attempt_counters.inc("map", "output_records", out_records)
                self._count_dominance(attempt_counters, ctx)
                if task_span is not None:
                    task_span.update(
                        records_in=block.size,
                        records_out=out_records,
                        dominance_point_tests=ctx.ops.point_tests,
                        dominance_region_tests=ctx.ops.region_tests,
                    )
                    task_span.finish()
                return (
                    (dict(emitted), attempt_counters, task_span),
                    ctx.cost_units(records=block.size),
                )

            return task

        if getattr(self.cluster, "remote", False):
            self._publish_pool_cache()
            tasks: List = [
                RemoteMapTask(
                    mapper=job.mapper, combiner=job.combiner,
                    index=index, block=block,
                )
                for index, block in enumerate(input_blocks)
            ]
            raw = self.cluster.run_round(phase, tasks)
            map_metrics = self.cluster.metrics_for(phase)
            recovery_metrics = self._recover_lost_map_output(
                phase, tasks, raw, map_metrics, counters
            )
            attempts = [
                self._materialize_map_attempt(remote, index, phase, phase_span)
                for index, remote in enumerate(raw)
            ]
        else:
            tasks = [
                make_task(index, block)
                for index, block in enumerate(input_blocks)
            ]
            attempts = self.cluster.run_round(phase, tasks)
            map_metrics = self.cluster.metrics_for(phase)
            recovery_metrics = self._recover_lost_map_output(
                phase, tasks, attempts, map_metrics, counters
            )

        map_outputs: List[Dict[int, List[Block]]] = []
        for emitted, attempt_counters, _task_span in attempts:
            counters.merge(attempt_counters)
            map_outputs.append(emitted)

        failed = map_metrics.failed_attempts + (
            recovery_metrics.failed_attempts
            if recovery_metrics is not None
            else 0
        )
        if failed:
            counters.inc("map", "failed_attempts", failed)
        phase_span.update(
            tasks=len(tasks),
            failed_attempts=failed,
            reexecuted_tasks=counters.get("map", "reexecuted_tasks"),
        )
        phase_span.finish()
        return map_outputs, map_metrics, recovery_metrics

    def _publish_pool_cache(self) -> None:
        """Ship the distributed cache to a remote executor's workers
        (no-op for executors without a ``publish_cache`` hook)."""
        publish = getattr(self.cluster, "publish_cache", None)
        if publish is not None:
            publish(self.cache)

    def _absorb_remote(self, remote: RemoteTaskResult) -> None:
        """Merge one remote task's side data into coordinator state:
        kernel-stats deltas into the cache codec's stats object, metric
        observations into the registry."""
        if remote.kernel_stats:
            targets = _kernel_stats_objects(self.cache)
            if targets:
                targets[0].merge_snapshot(remote.kernel_stats)
        if self.metrics is not None:
            for name, value in remote.observations:
                self.metrics.observe(name, value)

    def _materialize_map_attempt(
        self,
        remote: RemoteTaskResult,
        index: int,
        phase: str,
        phase_span: Span,
    ) -> Tuple[Dict[int, List[Block]], Counters, Optional[Span]]:
        """Turn a remote map result into the in-process attempt shape.

        Spans are materialised post-hoc from the shipped attributes, so
        aggregating non-superseded span attributes still reproduces the
        job counters (the timing, unlike the attributes, is coordinator
        wall clock — remote spans describe *what* ran, not when).
        """
        self._absorb_remote(remote)
        task_span = None
        if self.tracer.enabled:
            task_span = self.tracer.start_span(
                "map.task", parent=phase_span, phase=phase, task=index
            )
            task_span.update(**remote.span_attrs)
            task_span.finish()
        return remote.payload, Counters.from_dict(remote.counters), task_span

    @staticmethod
    def _count_dominance(counters: Counters, ctx: TaskContext) -> None:
        """Fold the task's dominance-test counts into its counter set
        (the quantity the paper's §5.4 pruning analysis reports)."""
        if ctx.ops.point_tests:
            counters.inc("dominance", "point_tests", ctx.ops.point_tests)
        if ctx.ops.region_tests:
            counters.inc("dominance", "region_tests", ctx.ops.region_tests)

    def _recover_lost_map_output(
        self,
        phase: str,
        tasks: List,
        attempts: List,
        map_metrics: ClusterMetrics,
        counters: Counters,
    ) -> Optional[ClusterMetrics]:
        """Re-execute map tasks whose worker crashed after the round.

        The crash strikes *after* completion — exactly the Hadoop case
        where a node dies between map and shuffle and its local map
        output becomes unreachable.  The lineage (``placements`` on the
        round's metrics) tells us which splits were materialised where,
        so only those tasks re-run, on the surviving workers.
        """
        plan = self.fault_plan
        if plan is None or plan.worker_crash_rate <= 0.0:
            return None
        crashed = set(
            plan.crashed_workers(phase, self.cluster.num_workers)
        )
        if not crashed:
            return None
        counters.inc("map", "worker_crashes", len(crashed))
        placements = map_metrics.placements or []
        lost = [
            index
            for index, worker in enumerate(placements)
            if worker in crashed
        ]
        if not lost:
            return None
        counters.inc("map", "lost_map_outputs", len(lost))
        counters.inc("map", "reexecuted_tasks", len(lost))
        survivors = [
            w for w in range(self.cluster.num_workers) if w not in crashed
        ]
        recovery_placement = [
            survivors[i % len(survivors)] for i in range(len(lost))
        ]
        recovered = self.cluster.run_round(
            f"{phase}:recovery",
            [tasks[index] for index in lost],
            placement=recovery_placement,
        )
        for slot, attempt in zip(lost, recovered):
            # The crashed worker's span describes work whose output was
            # lost: mark it so trace aggregation, like the counters,
            # credits only the surviving re-execution.  (On the remote
            # path attempts are RemoteTaskResult objects whose spans are
            # only materialised for the surviving attempt, so there is
            # nothing to mark.)
            entry = attempts[slot]
            lost_span = entry[2] if isinstance(entry, tuple) else None
            if lost_span is not None:
                lost_span.set(SUPERSEDED, True)
            attempts[slot] = attempt
        return self.cluster.metrics_for(f"{phase}:recovery")

    def _shuffle(
        self,
        job_name: str,
        map_outputs: List[Dict[int, List[Block]]],
        counters: Counters,
        job_span: Span,
    ) -> Tuple[Dict[int, List[Block]], int, int]:
        plan = self.fault_plan
        inject = plan is not None and plan.corruption_rate > 0.0
        shuffle_span = self.tracer.start_span(
            "shuffle", parent=job_span, phase=f"{job_name}:shuffle"
        )
        grouped: Dict[int, List[Block]] = defaultdict(list)
        records = 0
        nbytes = 0
        fetches: Dict[int, int] = defaultdict(int)
        for task_output in map_outputs:
            for key, blocks in task_output.items():
                for block in blocks:
                    if inject:
                        block = self._fetch_verified(
                            job_name, key, fetches[key], block, counters
                        )
                        fetches[key] += 1
                    grouped[key].append(block)
                    records += block.size
                    nbytes += block.nbytes
        counters.inc("shuffle", "records", records)
        counters.inc("shuffle", "bytes", nbytes)
        shuffle_span.update(
            records=records,
            bytes=nbytes,
            keys=len(grouped),
            corrupt_blocks=counters.get("shuffle", "corrupt_blocks"),
            refetched_bytes=counters.get("shuffle", "refetched_bytes"),
        )
        shuffle_span.finish()
        return grouped, records, nbytes

    def _fetch_verified(
        self,
        job_name: str,
        key: int,
        fetch_index: int,
        block: Block,
        counters: Counters,
    ) -> Block:
        """Simulate one shuffle fetch with checksum verification.

        The sender's checksum is recorded before the transfer; if the
        fault plan corrupts the copy in flight, the receiver's checksum
        disagrees and the block is re-fetched from the retained map
        output (which the lineage guarantees is still available).
        """
        plan = self.fault_plan
        assert plan is not None
        expected = block.checksum()
        delivered = block
        if plan.corrupts(f"{job_name}:shuffle", key, fetch_index):
            delivered = plan.corrupt_copy(block)
        if delivered.checksum() != expected:
            counters.inc("shuffle", "corrupt_blocks")
            counters.inc("shuffle", "refetched_bytes", block.nbytes)
            delivered = block  # re-fetch: second transfer arrives clean
        return delivered

    def _reduce_phase(
        self,
        job: MapReduceJob,
        job_tag: str,
        grouped: Dict[int, List[Block]],
        counters: Counters,
        policy: Optional[ReducePolicy] = None,
        job_span: Optional[Span] = None,
    ) -> Tuple[Dict[int, object], Optional[Dict[str, object]]]:
        phase = f"{job_tag}:reduce"
        keys = sorted(grouped)
        lenient = policy is not None and policy.lenient
        deadline = policy.deadline if policy is not None else None
        tracer = self.tracer
        traced = tracer.enabled
        phase_span = tracer.start_span(
            "reduce", parent=job_span, phase=phase
        )

        def make_task(key: int, index: int):
            def task() -> Tuple[object, int]:
                if deadline is not None and time.monotonic() >= deadline:
                    error = DeadlineExceededError(
                        f"reduce key {key} of {job.name!r} not started "
                        f"before the deadline"
                    )
                    if lenient:
                        return LostTask(index, error), 0
                    raise error
                task_span = (
                    tracer.start_span(
                        "reduce.task", parent=phase_span, phase=phase,
                        task=index, key=key,
                    )
                    if traced
                    else None
                )
                ctx = TaskContext(
                    self.cache, counters,
                    metrics=self.metrics, span=task_span,
                )
                blocks = grouped[key]
                in_records = sum(b.size for b in blocks)
                counters.inc("reduce", "input_records", in_records)
                result = job.reducer(key, blocks, ctx)
                out_records = (
                    result.size if isinstance(result, Block) else 0
                )
                if isinstance(result, Block):
                    counters.inc("reduce", "output_records", result.size)
                self._count_dominance(counters, ctx)
                if task_span is not None:
                    task_span.update(
                        records_in=in_records,
                        records_out=out_records,
                        dominance_point_tests=ctx.ops.point_tests,
                        dominance_region_tests=ctx.ops.region_tests,
                    )
                    task_span.finish()
                return result, ctx.cost_units(records=in_records)

            return task

        if getattr(self.cluster, "remote", False):
            self._publish_pool_cache()
            tasks: List = [
                RemoteReduceTask(
                    job_name=job.name, reducer=job.reducer, key=key,
                    index=index, blocks=list(grouped[key]),
                    lenient=lenient, deadline=deadline,
                )
                for index, key in enumerate(keys)
            ]
            raw = self.cluster.run_round(phase, tasks, lenient=lenient)
            results: List = []
            for index, (key, remote) in enumerate(zip(keys, raw)):
                if isinstance(remote, LostTask):
                    # Injected exhaustion, resolved coordinator-side.
                    results.append(remote)
                    continue
                if isinstance(remote.payload, LostTask):
                    # Deadline loss inside the worker.
                    results.append(remote.payload)
                    continue
                self._absorb_remote(remote)
                counters.update_from_dict(remote.counters)
                if traced:
                    task_span = tracer.start_span(
                        "reduce.task", parent=phase_span, phase=phase,
                        task=index, key=key,
                    )
                    task_span.update(**remote.span_attrs)
                    task_span.finish()
                results.append(remote.payload)
        else:
            tasks = [make_task(key, index) for index, key in enumerate(keys)]
            results = self.cluster.run_round(phase, tasks, lenient=lenient)
        failed = self.cluster.metrics_for(phase).failed_attempts
        if failed:
            counters.inc("reduce", "failed_attempts", failed)
            counters.inc("reduce", "retries", failed)

        outputs: Dict[int, object] = {}
        lost_keys: List[int] = []
        lost_reasons: Dict[int, str] = {}
        lost_floors: Dict[int, List[float]] = {}
        for key, result in zip(keys, results):
            if isinstance(result, LostTask):
                lost_keys.append(key)
                lost_reasons[key] = str(result.error)
                floor = self._key_floor(grouped[key])
                if floor is not None:
                    lost_floors[key] = floor
                continue
            outputs[key] = result
        if lost_keys:
            counters.inc("reduce", "lost_tasks", len(lost_keys))
        phase_span.update(
            tasks=len(tasks),
            failed_attempts=failed,
            lost_tasks=len(lost_keys),
        )
        phase_span.finish()
        if not lenient:
            return outputs, None
        return outputs, {
            "lost_keys": lost_keys,
            "lost_reasons": lost_reasons,
            "lost_floors": lost_floors,
            "reduce_input_records": {
                key: sum(b.size for b in grouped[key]) for key in keys
            },
        }

    @staticmethod
    def _key_floor(blocks: List[Block]) -> Optional[List[float]]:
        """Componentwise minimum over a key's shuffled blocks.

        Any record the lost reducer held is ``>=`` this corner in every
        dimension, so a point the corner does not dominate cannot be
        dominated by anything the key held — the certificate the
        degraded merge filters with.
        """
        mins = [b.points.min(axis=0) for b in blocks if b.size > 0]
        if not mins:
            return None
        return [float(v) for v in np.minimum.reduce(mins)]
