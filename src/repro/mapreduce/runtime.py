"""The engine: executes a job's map → combine → shuffle → reduce rounds.

Execution model (matching Hadoop's semantics at block granularity):

1. one **map task** per input split; its emitted ``(key, Block)`` pairs
   are grouped per task and run through the **combiner** before leaving
   the mapper (this is where the paper's local-skyline combiners cut the
   shuffle volume);
2. the **shuffle** gathers combiner outputs by key across all map tasks,
   accounting records and bytes moved;
3. one **reduce task** per key, placed round-robin over workers (keys
   are group ids, so reducer load mirrors the grouping quality).
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import JobResult, MapReduceJob, TaskContext
from repro.mapreduce.types import Block


class MapReduceRuntime:
    """Runs :class:`~repro.mapreduce.job.MapReduceJob` instances."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        dfs: Optional[InMemoryDFS] = None,
        cache: Optional[DistributedCache] = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs if dfs is not None else InMemoryDFS()
        self.cache = cache if cache is not None else DistributedCache()

    def run(
        self,
        job: MapReduceJob,
        input_blocks: Sequence[Block],
        output_path: Optional[str] = None,
    ) -> JobResult:
        """Execute ``job`` over the given input splits.

        When ``output_path`` is given and the reduce outputs are blocks,
        they are also written to the DFS (accounted).
        """
        if not input_blocks:
            raise MapReduceError("job needs at least one input split")
        started = time.perf_counter()
        counters = Counters()

        map_outputs = self._map_phase(job, input_blocks, counters)
        grouped, shuffle_records, shuffle_bytes = self._shuffle(
            map_outputs, counters
        )
        outputs = self._reduce_phase(job, grouped, counters)

        if output_path is not None:
            block_outputs = [
                value for value in outputs.values() if isinstance(value, Block)
            ]
            self.dfs.write(output_path, block_outputs)

        elapsed = time.perf_counter() - started
        return JobResult(
            job_name=job.name,
            outputs=outputs,
            counters=counters,
            map_metrics=self.cluster.metrics_for(f"{job.name}:map"),
            reduce_metrics=self.cluster.metrics_for(f"{job.name}:reduce"),
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def _map_phase(
        self,
        job: MapReduceJob,
        input_blocks: Sequence[Block],
        counters: Counters,
    ) -> List[Dict[int, List[Block]]]:
        def make_task(block: Block):
            def task() -> Tuple[Dict[int, List[Block]], int]:
                ctx = TaskContext(self.cache, counters)
                counters.inc("map", "input_records", block.size)
                emitted: Dict[int, List[Block]] = defaultdict(list)
                for key, out_block in job.mapper(block, ctx):
                    emitted[int(key)].append(out_block)
                if job.combiner is not None:
                    combined: Dict[int, List[Block]] = {}
                    for key, blocks in emitted.items():
                        combined[key] = list(job.combiner(key, blocks, ctx))
                    emitted = combined  # type: ignore[assignment]
                out_records = sum(
                    b.size for blocks in emitted.values() for b in blocks
                )
                counters.inc("map", "output_records", out_records)
                return dict(emitted), ctx.cost_units(records=block.size)

            return task

        tasks = [make_task(block) for block in input_blocks]
        return self.cluster.run_round(f"{job.name}:map", tasks)

    def _shuffle(
        self,
        map_outputs: List[Dict[int, List[Block]]],
        counters: Counters,
    ) -> Tuple[Dict[int, List[Block]], int, int]:
        grouped: Dict[int, List[Block]] = defaultdict(list)
        records = 0
        nbytes = 0
        for task_output in map_outputs:
            for key, blocks in task_output.items():
                for block in blocks:
                    grouped[key].append(block)
                    records += block.size
                    nbytes += block.nbytes
        counters.inc("shuffle", "records", records)
        counters.inc("shuffle", "bytes", nbytes)
        return grouped, records, nbytes

    def _reduce_phase(
        self,
        job: MapReduceJob,
        grouped: Dict[int, List[Block]],
        counters: Counters,
    ) -> Dict[int, object]:
        keys = sorted(grouped)

        def make_task(key: int):
            def task() -> Tuple[object, int]:
                ctx = TaskContext(self.cache, counters)
                blocks = grouped[key]
                in_records = sum(b.size for b in blocks)
                counters.inc("reduce", "input_records", in_records)
                result = job.reducer(key, blocks, ctx)
                if isinstance(result, Block):
                    counters.inc("reduce", "output_records", result.size)
                return result, ctx.cost_units(records=in_records)

            return task

        tasks = [make_task(key) for key in keys]
        results = self.cluster.run_round(f"{job.name}:reduce", tasks)
        return dict(zip(keys, results))
