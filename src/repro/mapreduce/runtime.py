"""The engine: executes a job's map → combine → shuffle → reduce rounds.

Execution model (matching Hadoop's semantics at block granularity):

1. one **map task** per input split; its emitted ``(key, Block)`` pairs
   are grouped per task and run through the **combiner** before leaving
   the mapper (this is where the paper's local-skyline combiners cut the
   shuffle volume);
2. the **shuffle** gathers combiner outputs by key across all map tasks,
   accounting records and bytes moved;
3. one **reduce task** per key, placed round-robin over workers (keys
   are group ids, so reducer load mirrors the grouping quality).

Fault tolerance (active when a
:class:`~repro.mapreduce.faults.FaultPlan` is attached):

* transient task-attempt failures are retried by the cluster itself
  (see :meth:`SimulatedCluster._run_attempts`);
* a worker crashing at the end of the map round loses its completed map
  output; the runtime keeps a **lineage map** from input split to the
  worker that produced its output, so only the lost map tasks re-run
  (on the survivors) before the shuffle — Hadoop's re-execution
  semantics;
* every shuffled block is **checksum-verified**; a corrupted fetch is
  detected and re-fetched from the retained map output.

Counters follow Hadoop's only-successful-attempts rule: map tasks
accumulate into per-attempt counter sets that are merged into the job
counters only for the attempt whose output actually survives, so a
faulted run reports the same ``map.*``/``phase1.*`` record counts as a
clean one.  The recovery work itself is observable through
``map.failed_attempts``, ``map.worker_crashes``, ``map.lost_map_outputs``,
``reduce.retries``, and ``shuffle.corrupt_blocks``.

Observability: when a :class:`~repro.observability.tracer.Tracer` is
attached, the runtime emits a span per job, per phase (map / shuffle /
reduce), and per task, with records in/out, dominance-test counts, and
shuffle volume as span attributes.  A map task whose output is lost to
a worker crash has its span marked superseded when the re-execution
replaces it, so aggregating non-superseded span attributes reproduces
the job counters exactly.  The default tracer is the shared no-op
(:data:`~repro.observability.tracer.NULL_TRACER`) and per-task
instrumentation is guarded on ``tracer.enabled`` — a disabled run pays
one boolean test per task.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DeadlineExceededError, MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterMetrics, LostTask, SimulatedCluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import JobResult, MapReduceJob, TaskContext
from repro.mapreduce.types import Block
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, SUPERSEDED, Span, Tracer


@dataclass(frozen=True)
class ReducePolicy:
    """How the reduce phase treats terminal task loss and deadlines.

    lenient:
        A reduce task that exhausts its retry budget
        (:class:`~repro.core.exceptions.FaultInjectionError`) loses its
        key instead of aborting the job — Hadoop's
        ``mapreduce.reduce.failures.maxpercent`` semantics.  Lost keys
        are reported in ``JobResult.extras`` (see below) so a caller
        can degrade gracefully.
    deadline:
        Optional ``time.monotonic()`` timestamp.  A reduce task that
        has not *started* by the deadline raises
        :class:`~repro.core.exceptions.DeadlineExceededError` (strict)
        or loses its key (lenient).

    With ``lenient=True`` the job result's ``extras`` carry:

    * ``"lost_keys"`` — sorted lost reduce keys;
    * ``"lost_reasons"`` — ``{key: str(error)}``;
    * ``"lost_floors"`` — ``{key: per-dimension minimum}`` over the
      blocks shuffled for that key (Hadoop retains map-output index
      metadata even when a reducer dies; the componentwise floor is the
      cheap sound bound a degraded merge needs to certify that a
      surviving point cannot be dominated by anything the lost key
      held);
    * ``"reduce_input_records"`` — ``{key: shuffled records}`` for
      coverage accounting.
    """

    lenient: bool = False
    deadline: Optional[float] = None


class MapReduceRuntime:
    """Runs :class:`~repro.mapreduce.job.MapReduceJob` instances."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        dfs: Optional[InMemoryDFS] = None,
        cache: Optional[DistributedCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cluster = cluster
        self.dfs = dfs if dfs is not None else InMemoryDFS()
        self.cache = cache if cache is not None else DistributedCache()
        #: runtime-level fault schedule (crash/corruption); defaults to
        #: the cluster's plan so one knob drives the whole stack
        self.fault_plan = (
            fault_plan
            if fault_plan is not None
            else getattr(cluster, "fault_plan", None)
        )
        #: span tracer (the shared no-op unless a run enables tracing)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: unified metrics registry shared by this runtime's tasks
        #: (``ctx.observe`` histograms); None disables live observation
        self.metrics = metrics
        #: reruns of the same output path get attempt-scoped paths so a
        #: retried/resumed job never collides with its earlier output
        self._output_attempts: Dict[str, int] = {}

    def run(
        self,
        job: MapReduceJob,
        input_blocks: Sequence[Block],
        output_path: Optional[str] = None,
        reduce_policy: Optional[ReducePolicy] = None,
        attempt: int = 0,
        parent_span: Optional[Span] = None,
    ) -> JobResult:
        """Execute ``job`` over the given input splits.

        When ``output_path`` is given and the reduce outputs are blocks,
        they are also written to the DFS (accounted); non-block outputs
        are skipped and counted under ``dfs.skipped_outputs``.  Re-runs
        against the same path write to an attempt-scoped path
        (``<path>/attempt-<k>``) instead of crashing on the immutable
        DFS file; :meth:`InMemoryDFS.latest` resolves the newest one.

        ``attempt`` tags the whole job execution (phase names become
        ``<job>@<attempt>:map`` etc. for ``attempt > 0``): a
        supervisor-level whole-job retry draws a fresh fault schedule
        rather than deterministically replaying the one that killed it.
        The attempt is carried on the returned
        :class:`~repro.mapreduce.job.JobResult` so retried jobs stay
        distinguishable downstream.

        ``parent_span`` roots this job's span subtree in a caller's
        trace (the pipeline drivers pass their stage spans).
        """
        if not input_blocks:
            raise MapReduceError("job needs at least one input split")
        started = time.perf_counter()
        counters = Counters()
        job_tag = job.name if attempt == 0 else f"{job.name}@{attempt}"
        job_span = self.tracer.start_span(
            "job", parent=parent_span, job=job.name, attempt=attempt,
            tag=job_tag,
        )

        map_outputs, map_metrics, recovery_metrics = self._map_phase(
            job, job_tag, input_blocks, counters, job_span
        )
        grouped, shuffle_records, shuffle_bytes = self._shuffle(
            job_tag, map_outputs, counters, job_span
        )
        outputs, lost = self._reduce_phase(
            job, job_tag, grouped, counters, reduce_policy, job_span
        )

        if output_path is not None:
            block_outputs = []
            skipped = 0
            for value in outputs.values():
                if isinstance(value, Block):
                    block_outputs.append(value)
                else:
                    skipped += 1
            if skipped:
                counters.inc("dfs", "skipped_outputs", skipped)
            rerun = self._output_attempts.get(output_path, 0)
            self._output_attempts[output_path] = rerun + 1
            actual_path = (
                output_path if rerun == 0
                else f"{output_path}/attempt-{rerun}"
            )
            self.dfs.write(actual_path, block_outputs)
            job_span.set("output_path", actual_path)

        elapsed = time.perf_counter() - started
        job_span.update(
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            faults_injected=(
                map_metrics.failed_attempts
                + counters.get("reduce", "failed_attempts")
                + counters.get("shuffle", "corrupt_blocks")
            ),
            faults_recovered=(
                counters.get("map", "reexecuted_tasks")
                + counters.get("shuffle", "corrupt_blocks")
            ),
        )
        job_span.finish()
        result = JobResult(
            job_name=job.name,
            outputs=outputs,
            counters=counters,
            map_metrics=map_metrics,
            reduce_metrics=self.cluster.metrics_for(f"{job_tag}:reduce"),
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            elapsed_seconds=elapsed,
            recovery_metrics=recovery_metrics,
            attempt=attempt,
        )
        if lost is not None:
            result.extras.update(lost)
        return result

    # ------------------------------------------------------------------
    def _map_phase(
        self,
        job: MapReduceJob,
        job_tag: str,
        input_blocks: Sequence[Block],
        counters: Counters,
        job_span: Span,
    ) -> Tuple[
        List[Dict[int, List[Block]]],
        ClusterMetrics,
        Optional[ClusterMetrics],
    ]:
        phase = f"{job_tag}:map"
        tracer = self.tracer
        traced = tracer.enabled
        phase_span = tracer.start_span("map", parent=job_span, phase=phase)

        def make_task(index: int, block: Block):
            def task() -> Tuple[
                Tuple[Dict[int, List[Block]], Counters, Optional[Span]], int
            ]:
                # Per-attempt counters: merged into the job counters
                # only if this attempt's output survives (Hadoop counts
                # successful attempts once, even after re-execution).
                task_span = (
                    tracer.start_span(
                        "map.task", parent=phase_span, phase=phase,
                        task=index,
                    )
                    if traced
                    else None
                )
                attempt_counters = Counters()
                ctx = TaskContext(
                    self.cache, attempt_counters,
                    metrics=self.metrics, span=task_span,
                )
                attempt_counters.inc("map", "input_records", block.size)
                emitted: Dict[int, List[Block]] = defaultdict(list)
                for key, out_block in job.mapper(block, ctx):
                    emitted[int(key)].append(out_block)
                if job.combiner is not None:
                    combined: Dict[int, List[Block]] = {}
                    for key, blocks in emitted.items():
                        combined[key] = list(job.combiner(key, blocks, ctx))
                    emitted = combined  # type: ignore[assignment]
                out_records = sum(
                    b.size for blocks in emitted.values() for b in blocks
                )
                attempt_counters.inc("map", "output_records", out_records)
                self._count_dominance(attempt_counters, ctx)
                if task_span is not None:
                    task_span.update(
                        records_in=block.size,
                        records_out=out_records,
                        dominance_point_tests=ctx.ops.point_tests,
                        dominance_region_tests=ctx.ops.region_tests,
                    )
                    task_span.finish()
                return (
                    (dict(emitted), attempt_counters, task_span),
                    ctx.cost_units(records=block.size),
                )

            return task

        tasks = [
            make_task(index, block)
            for index, block in enumerate(input_blocks)
        ]
        attempts = self.cluster.run_round(phase, tasks)
        map_metrics = self.cluster.metrics_for(phase)
        recovery_metrics = self._recover_lost_map_output(
            phase, tasks, attempts, map_metrics, counters
        )

        map_outputs: List[Dict[int, List[Block]]] = []
        for emitted, attempt_counters, _task_span in attempts:
            counters.merge(attempt_counters)
            map_outputs.append(emitted)

        failed = map_metrics.failed_attempts + (
            recovery_metrics.failed_attempts
            if recovery_metrics is not None
            else 0
        )
        if failed:
            counters.inc("map", "failed_attempts", failed)
        phase_span.update(
            tasks=len(tasks),
            failed_attempts=failed,
            reexecuted_tasks=counters.get("map", "reexecuted_tasks"),
        )
        phase_span.finish()
        return map_outputs, map_metrics, recovery_metrics

    @staticmethod
    def _count_dominance(counters: Counters, ctx: TaskContext) -> None:
        """Fold the task's dominance-test counts into its counter set
        (the quantity the paper's §5.4 pruning analysis reports)."""
        if ctx.ops.point_tests:
            counters.inc("dominance", "point_tests", ctx.ops.point_tests)
        if ctx.ops.region_tests:
            counters.inc("dominance", "region_tests", ctx.ops.region_tests)

    def _recover_lost_map_output(
        self,
        phase: str,
        tasks: List,
        attempts: List,
        map_metrics: ClusterMetrics,
        counters: Counters,
    ) -> Optional[ClusterMetrics]:
        """Re-execute map tasks whose worker crashed after the round.

        The crash strikes *after* completion — exactly the Hadoop case
        where a node dies between map and shuffle and its local map
        output becomes unreachable.  The lineage (``placements`` on the
        round's metrics) tells us which splits were materialised where,
        so only those tasks re-run, on the surviving workers.
        """
        plan = self.fault_plan
        if plan is None or plan.worker_crash_rate <= 0.0:
            return None
        crashed = set(
            plan.crashed_workers(phase, self.cluster.num_workers)
        )
        if not crashed:
            return None
        counters.inc("map", "worker_crashes", len(crashed))
        placements = map_metrics.placements or []
        lost = [
            index
            for index, worker in enumerate(placements)
            if worker in crashed
        ]
        if not lost:
            return None
        counters.inc("map", "lost_map_outputs", len(lost))
        counters.inc("map", "reexecuted_tasks", len(lost))
        survivors = [
            w for w in range(self.cluster.num_workers) if w not in crashed
        ]
        recovery_placement = [
            survivors[i % len(survivors)] for i in range(len(lost))
        ]
        recovered = self.cluster.run_round(
            f"{phase}:recovery",
            [tasks[index] for index in lost],
            placement=recovery_placement,
        )
        for slot, attempt in zip(lost, recovered):
            # The crashed worker's span describes work whose output was
            # lost: mark it so trace aggregation, like the counters,
            # credits only the surviving re-execution.
            lost_span = attempts[slot][2]
            if lost_span is not None:
                lost_span.set(SUPERSEDED, True)
            attempts[slot] = attempt
        return self.cluster.metrics_for(f"{phase}:recovery")

    def _shuffle(
        self,
        job_name: str,
        map_outputs: List[Dict[int, List[Block]]],
        counters: Counters,
        job_span: Span,
    ) -> Tuple[Dict[int, List[Block]], int, int]:
        plan = self.fault_plan
        inject = plan is not None and plan.corruption_rate > 0.0
        shuffle_span = self.tracer.start_span(
            "shuffle", parent=job_span, phase=f"{job_name}:shuffle"
        )
        grouped: Dict[int, List[Block]] = defaultdict(list)
        records = 0
        nbytes = 0
        fetches: Dict[int, int] = defaultdict(int)
        for task_output in map_outputs:
            for key, blocks in task_output.items():
                for block in blocks:
                    if inject:
                        block = self._fetch_verified(
                            job_name, key, fetches[key], block, counters
                        )
                        fetches[key] += 1
                    grouped[key].append(block)
                    records += block.size
                    nbytes += block.nbytes
        counters.inc("shuffle", "records", records)
        counters.inc("shuffle", "bytes", nbytes)
        shuffle_span.update(
            records=records,
            bytes=nbytes,
            keys=len(grouped),
            corrupt_blocks=counters.get("shuffle", "corrupt_blocks"),
            refetched_bytes=counters.get("shuffle", "refetched_bytes"),
        )
        shuffle_span.finish()
        return grouped, records, nbytes

    def _fetch_verified(
        self,
        job_name: str,
        key: int,
        fetch_index: int,
        block: Block,
        counters: Counters,
    ) -> Block:
        """Simulate one shuffle fetch with checksum verification.

        The sender's checksum is recorded before the transfer; if the
        fault plan corrupts the copy in flight, the receiver's checksum
        disagrees and the block is re-fetched from the retained map
        output (which the lineage guarantees is still available).
        """
        plan = self.fault_plan
        assert plan is not None
        expected = block.checksum()
        delivered = block
        if plan.corrupts(f"{job_name}:shuffle", key, fetch_index):
            delivered = plan.corrupt_copy(block)
        if delivered.checksum() != expected:
            counters.inc("shuffle", "corrupt_blocks")
            counters.inc("shuffle", "refetched_bytes", block.nbytes)
            delivered = block  # re-fetch: second transfer arrives clean
        return delivered

    def _reduce_phase(
        self,
        job: MapReduceJob,
        job_tag: str,
        grouped: Dict[int, List[Block]],
        counters: Counters,
        policy: Optional[ReducePolicy] = None,
        job_span: Optional[Span] = None,
    ) -> Tuple[Dict[int, object], Optional[Dict[str, object]]]:
        phase = f"{job_tag}:reduce"
        keys = sorted(grouped)
        lenient = policy is not None and policy.lenient
        deadline = policy.deadline if policy is not None else None
        tracer = self.tracer
        traced = tracer.enabled
        phase_span = tracer.start_span(
            "reduce", parent=job_span, phase=phase
        )

        def make_task(key: int, index: int):
            def task() -> Tuple[object, int]:
                if deadline is not None and time.monotonic() >= deadline:
                    error = DeadlineExceededError(
                        f"reduce key {key} of {job.name!r} not started "
                        f"before the deadline"
                    )
                    if lenient:
                        return LostTask(index, error), 0
                    raise error
                task_span = (
                    tracer.start_span(
                        "reduce.task", parent=phase_span, phase=phase,
                        task=index, key=key,
                    )
                    if traced
                    else None
                )
                ctx = TaskContext(
                    self.cache, counters,
                    metrics=self.metrics, span=task_span,
                )
                blocks = grouped[key]
                in_records = sum(b.size for b in blocks)
                counters.inc("reduce", "input_records", in_records)
                result = job.reducer(key, blocks, ctx)
                out_records = (
                    result.size if isinstance(result, Block) else 0
                )
                if isinstance(result, Block):
                    counters.inc("reduce", "output_records", result.size)
                self._count_dominance(counters, ctx)
                if task_span is not None:
                    task_span.update(
                        records_in=in_records,
                        records_out=out_records,
                        dominance_point_tests=ctx.ops.point_tests,
                        dominance_region_tests=ctx.ops.region_tests,
                    )
                    task_span.finish()
                return result, ctx.cost_units(records=in_records)

            return task

        tasks = [make_task(key, index) for index, key in enumerate(keys)]
        results = self.cluster.run_round(phase, tasks, lenient=lenient)
        failed = self.cluster.metrics_for(phase).failed_attempts
        if failed:
            counters.inc("reduce", "failed_attempts", failed)
            counters.inc("reduce", "retries", failed)

        outputs: Dict[int, object] = {}
        lost_keys: List[int] = []
        lost_reasons: Dict[int, str] = {}
        lost_floors: Dict[int, List[float]] = {}
        for key, result in zip(keys, results):
            if isinstance(result, LostTask):
                lost_keys.append(key)
                lost_reasons[key] = str(result.error)
                floor = self._key_floor(grouped[key])
                if floor is not None:
                    lost_floors[key] = floor
                continue
            outputs[key] = result
        if lost_keys:
            counters.inc("reduce", "lost_tasks", len(lost_keys))
        phase_span.update(
            tasks=len(tasks),
            failed_attempts=failed,
            lost_tasks=len(lost_keys),
        )
        phase_span.finish()
        if not lenient:
            return outputs, None
        return outputs, {
            "lost_keys": lost_keys,
            "lost_reasons": lost_reasons,
            "lost_floors": lost_floors,
            "reduce_input_records": {
                key: sum(b.size for b in grouped[key]) for key in keys
            },
        }

    @staticmethod
    def _key_floor(blocks: List[Block]) -> Optional[List[float]]:
        """Componentwise minimum over a key's shuffled blocks.

        Any record the lost reducer held is ``>=`` this corner in every
        dimension, so a point the corner does not dominate cannot be
        dominated by anything the key held — the certificate the
        degraded merge filters with.
        """
        mins = [b.points.min(axis=0) for b in blocks if b.size > 0]
        if not mins:
            return None
        return [float(v) for v in np.minimum.reduce(mins)]
