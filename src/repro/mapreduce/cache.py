"""Distributed cache: read-only side data shipped to every task.

The paper loads the partitioning pivot set, the sample-data skyline (as
an SZB-tree), and the partition-to-group map into each mapper via
Hadoop's distributed cache; this is the in-process equivalent.  Entries
are write-once to mimic the cache's immutability.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.core.exceptions import MapReduceError


class DistributedCache:
    """Write-once key/value side-data store."""

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        """Publish an entry; re-publishing a key is an error."""
        if key in self._entries:
            raise MapReduceError(f"cache entry {key!r} already published")
        self._entries[key] = value

    def get(self, key: str) -> Any:
        """Fetch an entry; missing keys are an error (a mapper depending
        on side data that was never shipped is a driver bug)."""
        if key not in self._entries:
            raise MapReduceError(f"cache entry {key!r} was never published")
        return self._entries[key]

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
