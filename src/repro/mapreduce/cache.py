"""Distributed cache: read-only side data shipped to every task.

The paper loads the partitioning pivot set, the sample-data skyline (as
an SZB-tree), and the partition-to-group map into each mapper via
Hadoop's distributed cache; this is the in-process equivalent.  Entries
are write-once to mimic the cache's immutability — but *idempotently*
so: re-publishing a payload identical to the stored one is a no-op
(preprocessing legitimately re-runs against a live runtime when a
supervised run resumes in-process), while publishing a **conflicting**
value under an existing key is still an error.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Iterator

import numpy as np

from repro.core.exceptions import MapReduceError


def _same_payload(existing: Any, value: Any) -> bool:
    """Best-effort deep equality for cache payloads.

    Identity first; numpy arrays by content; then ``==`` when it yields
    a plain ``True``; finally a pickle-bytes comparison, which catches
    equal-by-construction objects (partition rules, SZB-trees rebuilt
    from the same arrays) whose classes never define ``__eq__``.
    """
    if existing is value:
        return True
    if isinstance(existing, np.ndarray) or isinstance(value, np.ndarray):
        return (
            type(existing) is type(value)
            and np.array_equal(existing, value)
        )
    try:
        verdict = existing == value
        if verdict is True:
            return True
    except Exception:
        pass
    try:
        return pickle.dumps(existing) == pickle.dumps(value)
    except Exception:
        return False


class DistributedCache:
    """Write-once key/value side-data store."""

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        """Publish an entry.

        Re-publishing an *identical* payload is idempotent (the stored
        value is kept); re-publishing a conflicting value raises —
        silently replacing side data mid-run would give mappers two
        different views of the world.
        """
        if key in self._entries:
            if _same_payload(self._entries[key], value):
                return
            raise MapReduceError(
                f"cache entry {key!r} already published with a "
                f"conflicting value"
            )
        self._entries[key] = value

    def get(self, key: str) -> Any:
        """Fetch an entry; missing keys are an error (a mapper depending
        on side data that was never shipped is a driver bug)."""
        if key not in self._entries:
            raise MapReduceError(f"cache entry {key!r} was never published")
        return self._entries[key]

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
