"""Shared benchmark machinery: scaling, measurement, result tables.

The paper's absolute sizes (10M-110M points on a Hadoop cluster) map to
this pure-Python simulation at a 1000x reduction; on top of that,
``REPRO_BENCH_SCALE`` multiplies every workload size so the suite can run
quickly in CI (default 0.2) or at full reproduction scale
(``REPRO_BENCH_SCALE=1``).

The headline metric reported for "execution time" figures is the
*cost-model makespan* (sum over phases of the slowest worker's abstract
cost) — deterministic, host-independent, and the quantity that actually
degrades under skew and stragglers.  Wall-clock seconds are recorded
alongside.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence

from typing import Optional

from repro.core.dataset import Dataset
from repro.pipeline.driver import (
    EngineConfig,
    RunReport,
    SkylineEngine,
    export_observability,
)
from repro.pipeline.gpmrs import run_gpmrs
from repro.pipeline.plans import parse_plan

_SCALE_ENV = "REPRO_BENCH_SCALE"
_DEFAULT_SCALE = 0.2


@dataclass(frozen=True)
class BenchScale:
    """Workload scaling for the benchmark suite."""

    factor: float

    @classmethod
    def from_env(cls) -> "BenchScale":
        raw = os.environ.get(_SCALE_ENV, "")
        try:
            factor = float(raw) if raw else _DEFAULT_SCALE
        except ValueError:
            factor = _DEFAULT_SCALE
        return cls(factor=max(factor, 0.01))

    def size(self, paper_millions: float) -> int:
        """Map a paper dataset size (in millions of points) to ours.

        1M paper points -> 1000 simulated points, times the scale factor,
        floored at 500 so tiny scales stay meaningful.
        """
        return max(500, int(paper_millions * 1000 * self.factor))


class ResultTable:
    """Ordered rows of measurements with aligned pretty-printing."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, object]] = []

    def add(self, **values: object) -> None:
        """Append a row; unknown columns are rejected to catch typos."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append({c: values.get(c, "") for c in self.columns})

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def select(self, **criteria: object) -> "ResultTable":
        """Rows matching all the given column=value criteria."""
        out = ResultTable(self.title, self.columns)
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.rows.append(row)
        return out

    def render(self) -> str:
        """Fixed-width text rendering (what the figure would tabulate)."""
        widths = {
            c: max(len(c), *(len(str(r[c])) for r in self.rows), 1)
            if self.rows
            else len(c)
            for c in self.columns
        }
        lines = [f"== {self.title} =="]
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(str(row[c]).ljust(widths[c]) for c in self.columns)
            )
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write the table as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns)
            writer.writeheader()
            writer.writerows(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def run_plan_measured(
    plan: str,
    dataset: Dataset,
    num_groups: int = 32,
    num_workers: int = 8,
    sample_ratio: float = 0.02,
    bits_per_dim: int = 12,
    seed: int = 0,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    **kwargs: object,
) -> RunReport:
    """Run one strategy on one dataset with benchmark defaults.

    ``plan`` may be any parseable plan string or the special name
    ``"MR-GPMRS"``.  ``trace_out`` / ``metrics_out`` write the run's
    span trace and unified metrics as JSONL, so a benchmark row can be
    audited (or regenerated) from its exported evidence.
    """
    if plan.strip().upper() in ("MR-GPMRS", "GPMRS"):
        config = EngineConfig(
            plan=parse_plan("Grid+SB"),
            num_groups=num_groups,
            num_workers=num_workers,
            sample_ratio=sample_ratio,
            bits_per_dim=bits_per_dim,
            seed=seed,
            trace_out=trace_out,
            metrics_out=metrics_out,
            **kwargs,  # type: ignore[arg-type]
        )
        report = run_gpmrs(dataset, config)
        # The baseline pipeline is not span-instrumented; metrics are
        # still exported post hoc from the job counters so every
        # benchmark row has the same evidence trail.
        export_observability(config, report)
        return report
    config = EngineConfig(
        plan=parse_plan(plan),
        num_groups=num_groups,
        num_workers=num_workers,
        sample_ratio=sample_ratio,
        bits_per_dim=bits_per_dim,
        seed=seed,
        trace_out=trace_out,
        metrics_out=metrics_out,
        **kwargs,  # type: ignore[arg-type]
    )
    return SkylineEngine(config).run(dataset)
