"""Benchmark harness and per-figure experiment definitions.

Every figure in the paper's §6 has an experiment function in
:mod:`repro.bench.experiments` that regenerates its rows/series;
:mod:`repro.bench.harness` provides the sweep runner, result table, and
pretty-printing shared by the CLI and the ``benchmarks/`` pytest suite.
"""

from repro.bench.harness import (
    BenchScale,
    ResultTable,
    run_plan_measured,
)

__all__ = ["BenchScale", "ResultTable", "run_plan_measured"]
