"""Per-figure experiment definitions (see DESIGN.md §4 for the index).

Each function regenerates the rows behind one figure of the paper's §6,
at sizes scaled per :class:`~repro.bench.harness.BenchScale`.  The
benchmarks in ``benchmarks/`` call these, print the tables, and assert
the *shapes* the paper reports (who wins, by roughly what factor).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.harness import BenchScale, ResultTable, run_plan_measured
from repro.core.dataset import Dataset
from repro.data.realworld import (
    dbpedia_lda_like,
    flickr_gist_like,
    nuswide_like,
)
from repro.data.scaling import scale_up
from repro.data.synthetic import generate

#: the strategy mix plotted in Figure 7 (load balancing).  Each approach
#: runs its full stack as the paper's system would: the Grid/Angle
#: baselines merge candidates with the best centralized algorithm (ZS),
#: the ZDG system with its own Z-merge.
FIG7_PLANS = (
    "Grid+SB",
    "Grid+ZS",
    "Angle+SB",
    "Angle+ZS",
    "ZDG+SB+ZM",
    "ZDG+ZS+ZM",
)

#: paper sweep: 10M..110M points (we plot a 5-point subset of the range)
FIG7_SIZES_M = (10, 35, 60, 85, 110)
FIG7_DIMS = (2, 4, 6, 8, 10)

FIG8_PLANS = (
    "Grid+ZS+SB",
    "Grid+ZS+ZS",
    "Angle+ZS+ZS",
    "ZDG+ZS+SB",
    "ZDG+ZS+ZS",
    "ZDG+ZS+ZM",
)
FIG8_SIZES_M = (20, 50, 80, 110)
FIG8_DIMS = (4, 6, 8, 10)

FIG9_PARTITIONERS = (
    "Grid+ZS",
    "Angle+ZS",
    "Naive-Z+ZS",
    "ZHG+ZS",
    "ZDG+ZS",
)

FIG12_PLANS = ("Grid+ZS", "Angle+ZS", "MR-GPMRS", "ZDG+ZS+ZM")
FIG12_SIZES_M = (2, 9, 16, 23, 30)

FIG13_RATIOS = (0.005, 0.01, 0.02, 0.04)
FIG13_PLANS = ("Naive-Z+ZS", "ZHG+ZS", "ZDG+ZS+ZM")


def _dataset(distribution: str, n: int, d: int, seed: int) -> Dataset:
    return generate(distribution, n, d, seed=seed)


def fig7_size_sweep(
    distribution: str,
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = FIG7_PLANS,
    sizes_m: Sequence[float] = FIG7_SIZES_M,
) -> ResultTable:
    """Figures 7a/7b: total time vs dataset size, d=5, M=32."""
    scale = scale or BenchScale.from_env()
    table = ResultTable(
        f"Fig 7 ({distribution}): total time vs |P| (d={dimensions})",
        [
            "size_m", "n", "plan", "makespan_cost", "total_cost",
            "wall_s", "candidates", "skyline",
        ],
    )
    for size_m in sizes_m:
        n = scale.size(size_m)
        ds = _dataset(distribution, n, dimensions, seed)
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, seed=seed
            )
            table.add(
                size_m=size_m,
                n=n,
                plan=plan,
                makespan_cost=report.makespan_cost,
                total_cost=report.total_cost,
                wall_s=round(report.total_seconds, 3),
                candidates=report.num_candidates,
                skyline=report.skyline_size,
            )
    return table


def fig7_dims_sweep(
    distribution: str,
    scale: Optional[BenchScale] = None,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = FIG7_PLANS,
    dims: Sequence[int] = FIG7_DIMS,
) -> ResultTable:
    """Figures 7c/7d: total time vs dimensionality, n=50M, M=32."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    table = ResultTable(
        f"Fig 7 ({distribution}): total time vs d (n={n})",
        [
            "d", "plan", "makespan_cost", "total_cost", "wall_s",
            "candidates", "skyline",
        ],
    )
    for d in dims:
        ds = _dataset(distribution, n, d, seed)
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, seed=seed
            )
            table.add(
                d=d,
                plan=plan,
                makespan_cost=report.makespan_cost,
                total_cost=report.total_cost,
                wall_s=round(report.total_seconds, 3),
                candidates=report.num_candidates,
                skyline=report.skyline_size,
            )
    return table


def fig8_merge_size_sweep(
    distribution: str,
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = FIG8_PLANS,
    sizes_m: Sequence[float] = FIG8_SIZES_M,
) -> ResultTable:
    """Figures 8a/8b: candidate-merging time vs dataset size."""
    scale = scale or BenchScale.from_env()
    table = ResultTable(
        f"Fig 8 ({distribution}): merge time vs |P| (d={dimensions})",
        ["size_m", "n", "plan", "merge_cost", "merge_s", "candidates"],
    )
    for size_m in sizes_m:
        n = scale.size(size_m)
        ds = _dataset(distribution, n, dimensions, seed)
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, seed=seed
            )
            table.add(
                size_m=size_m,
                n=n,
                plan=plan,
                merge_cost=report.merge_cost,
                merge_s=round(report.merge_seconds, 4),
                candidates=report.num_candidates,
            )
    return table


def fig8_merge_dims_sweep(
    distribution: str,
    scale: Optional[BenchScale] = None,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = FIG8_PLANS,
    dims: Sequence[int] = FIG8_DIMS,
) -> ResultTable:
    """Figures 8c/8d: candidate-merging time vs dimensionality."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    table = ResultTable(
        f"Fig 8 ({distribution}): merge time vs d (n={n})",
        ["d", "plan", "merge_cost", "merge_s", "candidates"],
    )
    for d in dims:
        ds = _dataset(distribution, n, d, seed)
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, seed=seed
            )
            table.add(
                d=d,
                plan=plan,
                merge_cost=report.merge_cost,
                merge_s=round(report.merge_seconds, 4),
                candidates=report.num_candidates,
            )
    return table


def fig9_candidates(
    distribution: str,
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = FIG9_PARTITIONERS,
    sizes_m: Sequence[float] = (20, 60, 110),
) -> ResultTable:
    """Figure 9: number of skyline candidates per partitioning approach."""
    scale = scale or BenchScale.from_env()
    table = ResultTable(
        f"Fig 9 ({distribution}): skyline candidates per approach",
        ["size_m", "n", "plan", "candidates", "skyline", "pruned_inputs"],
    )
    for size_m in sizes_m:
        n = scale.size(size_m)
        ds = _dataset(distribution, n, dimensions, seed)
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, seed=seed
            )
            pruned = report.phase1.counters.get(
                "phase1", "prefiltered_records"
            ) + report.phase1.counters.get("phase1", "dropped_records")
            table.add(
                size_m=size_m,
                n=n,
                plan=plan,
                candidates=report.num_candidates,
                skyline=report.skyline_size,
                pruned_inputs=pruned,
            )
    return table


def fig10_partition_count_sweep(
    distribution: str = "independent",
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 50,
    seed: int = 0,
    group_counts: Sequence[int] = (8, 16, 32, 64, 128),
    plans: Sequence[str] = ("Grid+ZS", "Angle+ZS", "ZDG+ZS+ZM"),
) -> ResultTable:
    """Figure 10 (inferred): effect of the number of partitions/groups."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = _dataset(distribution, n, dimensions, seed)
    table = ResultTable(
        f"Fig 10 ({distribution}): effect of #groups M (n={n})",
        ["M", "plan", "makespan_cost", "candidates", "reducer_skew"],
    )
    for m in group_counts:
        for plan in plans:
            report = run_plan_measured(plan, ds, num_groups=m, seed=seed)
            table.add(
                M=m,
                plan=plan,
                makespan_cost=report.makespan_cost,
                candidates=report.num_candidates,
                reducer_skew=round(report.reducer_skew, 3),
            )
    return table


def fig11_realworld(
    scale: Optional[BenchScale] = None,
    seed: int = 0,
    scale_factors: Sequence[float] = (5, 15, 25),
    plans: Sequence[str] = ("Grid+ZS", "Angle+ZS", "ZDG+ZS+ZM"),
) -> ResultTable:
    """Figure 11 (inferred): real-world high-dimensional datasets with
    the paper's scale-factor protocol (s in [5, 25])."""
    scale = scale or BenchScale.from_env()
    bases = {
        "NUSWIDE-like(225d)": nuswide_like(
            max(60, int(300 * scale.factor * 5)), seed=seed
        ),
        "GIST-like(512d)": flickr_gist_like(
            max(40, int(200 * scale.factor * 5)), seed=seed
        ),
        "LDA-like(250d)": dbpedia_lda_like(
            max(60, int(300 * scale.factor * 5)), seed=seed
        ),
    }
    table = ResultTable(
        "Fig 11: real-world high-dimensional datasets (scale factor s)",
        ["dataset", "s", "n", "plan", "makespan_cost", "candidates",
         "skyline"],
    )
    for name, base in bases.items():
        for s in scale_factors:
            ds = scale_up(base, s / scale_factors[0], seed=seed)
            for plan in plans:
                report = run_plan_measured(
                    plan, ds, num_groups=16, bits_per_dim=8, seed=seed
                )
                table.add(
                    dataset=name,
                    s=s,
                    n=ds.size,
                    plan=plan,
                    makespan_cost=report.makespan_cost,
                    candidates=report.num_candidates,
                    skyline=report.skyline_size,
                )
    return table


def fig12_scalability(
    distribution: str = "independent",
    scale: Optional[BenchScale] = None,
    dimensions: int = 8,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = FIG12_PLANS,
    sizes_m: Sequence[float] = FIG12_SIZES_M,
) -> ResultTable:
    """Figure 12: scalability of ZDG+ZM against MR-GPMRS, Angle, Grid."""
    scale = scale or BenchScale.from_env()
    table = ResultTable(
        f"Fig 12 ({distribution}): scalability vs |P|",
        ["size_m", "n", "plan", "makespan_cost", "total_cost", "wall_s"],
    )
    for size_m in sizes_m:
        n = scale.size(size_m)
        ds = _dataset(distribution, n, dimensions, seed)
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, seed=seed
            )
            table.add(
                size_m=size_m,
                n=n,
                plan=plan,
                makespan_cost=report.makespan_cost,
                total_cost=report.total_cost,
                wall_s=round(report.total_seconds, 3),
            )
    return table


def fig13_sampling(
    distribution: str = "independent",
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
    ratios: Sequence[float] = FIG13_RATIOS,
    plans: Sequence[str] = FIG13_PLANS,
) -> ResultTable:
    """Figure 13: effect of the sampling ratio (0.5%..4%)."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = _dataset(distribution, n, dimensions, seed)
    table = ResultTable(
        f"Fig 13 ({distribution}): effect of sampling ratio (n={n})",
        ["ratio", "plan", "candidates", "preprocess_s", "makespan_cost"],
    )
    for ratio in ratios:
        for plan in plans:
            report = run_plan_measured(
                plan, ds, num_groups=num_groups, sample_ratio=ratio,
                seed=seed,
            )
            table.add(
                ratio=ratio,
                plan=plan,
                candidates=report.num_candidates,
                preprocess_s=round(report.preprocess_seconds, 4),
                makespan_cost=report.makespan_cost,
            )
    return table


def worker_scaling(
    distribution: str = "anticorrelated",
    scale: Optional[BenchScale] = None,
    dimensions: int = 6,
    size_m: float = 50,
    seed: int = 0,
    worker_counts: Sequence[int] = (1, 2, 4, 8, 16),
    plans: Sequence[str] = ("ZDG+ZS+ZM", "ZDG+ZS+ZMP"),
) -> ResultTable:
    """Speedup curve: makespan vs cluster size.

    The classic scaling figure the paper's cluster setup implies: with
    the single-reducer ZM merge, adding workers stops helping once the
    merge dominates; the parallel ZMP merge keeps scaling.
    """
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = _dataset(distribution, n, dimensions, seed)
    table = ResultTable(
        f"Worker scaling ({distribution}, d={dimensions}, n={n})",
        ["workers", "plan", "makespan_cost", "total_cost", "speedup"],
    )
    baselines = {}
    for plan in plans:
        for workers in worker_counts:
            report = run_plan_measured(
                plan, ds, num_groups=32, num_workers=workers, seed=seed
            )
            key = plan
            baselines.setdefault(key, report.makespan_cost)
            table.add(
                workers=workers,
                plan=plan,
                makespan_cost=report.makespan_cost,
                total_cost=report.total_cost,
                speedup=round(
                    baselines[key] / max(report.makespan_cost, 1), 2
                ),
            )
    return table


def load_balance_metrics(
    distribution: str = "anticorrelated",
    scale: Optional[BenchScale] = None,
    dimensions: int = 8,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
    plans: Sequence[str] = ("Grid+ZS", "Angle+ZS", "ZHG+ZS", "ZDG+ZS"),
) -> ResultTable:
    """§6.2's underlying claim: reducer work skew per strategy."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = _dataset(distribution, n, dimensions, seed)
    table = ResultTable(
        f"Load balance ({distribution}, d={dimensions}, n={n})",
        ["plan", "reducer_skew", "phase1_makespan", "phase1_total"],
    )
    for plan in plans:
        report = run_plan_measured(plan, ds, num_groups=num_groups, seed=seed)
        table.add(
            plan=plan,
            reducer_skew=round(report.reducer_skew, 3),
            phase1_makespan=report.phase1.reduce_metrics.makespan_cost,
            phase1_total=report.phase1.reduce_metrics.total_cost,
        )
    return table


def pruning_analysis(
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
) -> ResultTable:
    """§5.4's data-pruning analysis, measured per distribution: how many
    input points the first job eliminates before the merge."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    table = ResultTable(
        "Pruning analysis (ZDG+ZS+ZM): points eliminated before merge",
        ["distribution", "n", "prefiltered", "dropped", "combiner_pruned",
         "candidates", "skyline", "pruned_fraction"],
    )
    for distribution in ("correlated", "independent", "anticorrelated"):
        ds = _dataset(distribution, n, dimensions, seed)
        report = run_plan_measured(
            "ZDG+ZS+ZM", ds, num_groups=num_groups, seed=seed
        )
        counters = report.phase1.counters
        prefiltered = counters.get("phase1", "prefiltered_records")
        dropped = counters.get("phase1", "dropped_records")
        combiner = counters.get("phase1", "combiner_pruned")
        table.add(
            distribution=distribution,
            n=n,
            prefiltered=prefiltered,
            dropped=dropped,
            combiner_pruned=combiner,
            candidates=report.num_candidates,
            skyline=report.skyline_size,
            pruned_fraction=round(1.0 - report.num_candidates / n, 4),
        )
    return table
