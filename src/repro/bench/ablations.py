"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one knob of the
system and measures what it buys.

* **SZB prefilter** — Algorithm 3's mapper-side screen against the
  sample skyline: shuffle volume and candidate count with and without;
* **partition expansion factor** (``delta``, §4.2) — how much
  over-partitioning the grouping algorithms need;
* **grid resolution** (``bits_per_dim``) — Z-address length versus
  pruning precision;
* **ZB-tree geometry** — leaf capacity / fanout versus Z-search cost.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.bench.harness import BenchScale, ResultTable
from repro.data.synthetic import generate
from repro.pipeline.driver import EngineConfig, SkylineEngine
from repro.pipeline.plans import parse_plan
from repro.zorder.encoding import quantize_dataset
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zsearch import zsearch


def prefilter_ablation(
    distribution: str = "independent",
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
) -> ResultTable:
    """ZDG+ZS+ZM with the SZB mapper prefilter on vs off."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = generate(distribution, n, dimensions, seed=seed)
    table = ResultTable(
        f"Ablation: SZB prefilter ({distribution}, n={n})",
        ["prefilter", "shuffle_records", "candidates", "makespan_cost",
         "map_cost"],
    )
    base_plan = parse_plan("ZDG+ZS+ZM")
    for prefilter in (True, False):
        plan = dataclasses.replace(base_plan, prefilter=prefilter)
        config = EngineConfig(
            plan=plan, num_groups=num_groups, seed=seed
        )
        report = SkylineEngine(config).run(ds)
        table.add(
            prefilter=prefilter,
            shuffle_records=report.shuffle_records,
            candidates=report.num_candidates,
            makespan_cost=report.makespan_cost,
            map_cost=report.phase1.map_metrics.total_cost,
        )
    return table


def expansion_ablation(
    distribution: str = "anticorrelated",
    scale: Optional[BenchScale] = None,
    dimensions: int = 6,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
    expansions: Sequence[int] = (1, 2, 4, 8),
) -> ResultTable:
    """Effect of the partition expansion factor delta on ZDG."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = generate(distribution, n, dimensions, seed=seed)
    table = ResultTable(
        f"Ablation: expansion factor delta ({distribution}, n={n})",
        ["delta", "num_groups", "reducer_skew", "candidates",
         "preprocess_s"],
    )
    for delta in expansions:
        config = EngineConfig(
            plan=parse_plan("ZDG+ZS+ZM"), num_groups=num_groups,
            expansion=delta, seed=seed,
        )
        report = SkylineEngine(config).run(ds)
        table.add(
            delta=delta,
            num_groups=report.details["num_groups"],
            reducer_skew=round(report.reducer_skew, 3),
            candidates=report.num_candidates,
            preprocess_s=round(report.preprocess_seconds, 4),
        )
    return table


def bits_ablation(
    distribution: str = "independent",
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 20,
    seed: int = 0,
    bit_widths: Sequence[int] = (4, 8, 12, 16),
) -> ResultTable:
    """Grid resolution: quantisation collisions vs Z-address length."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = generate(distribution, n, dimensions, seed=seed)
    table = ResultTable(
        f"Ablation: bits per dimension ({distribution}, n={n})",
        ["bits", "distinct_cells", "skyline", "makespan_cost"],
    )
    for bits in bit_widths:
        snapped, _codec = quantize_dataset(ds, bits_per_dim=bits)
        distinct = len({tuple(row) for row in snapped.points})
        config = EngineConfig(
            plan=parse_plan("ZDG+ZS+ZM"), num_groups=16,
            bits_per_dim=bits, seed=seed,
        )
        report = SkylineEngine(config).run(ds)
        table.add(
            bits=bits,
            distinct_cells=distinct,
            skyline=report.skyline_size,
            makespan_cost=report.makespan_cost,
        )
    return table


def grouping_source_ablation(
    distribution: str = "independent",
    scale: Optional[BenchScale] = None,
    dimensions: int = 6,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
) -> ResultTable:
    """Is the win the Z-curve, the grouping, or both?

    Crosses base partitioners with dominance grouping: plain Grid/Angle,
    their generically-grouped variants, and the paper's ZDG.  All
    grouped variants use the SZB prefilter, so differences isolate the
    partition geometry and the grouping itself.
    """
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = generate(distribution, n, dimensions, seed=seed)
    table = ResultTable(
        f"Ablation: grouping source ({distribution}, d={dimensions}, n={n})",
        ["plan", "candidates", "reducer_skew", "makespan_cost"],
    )
    for plan in (
        "Grid+ZS",
        "Grid-Grouped+ZS+ZM",
        "Angle+ZS",
        "Angle-Grouped+ZS+ZM",
        "Naive-Z+ZS+ZM",
        "ZDG+ZS+ZM",
    ):
        config = EngineConfig(
            plan=parse_plan(plan), num_groups=num_groups, seed=seed
        )
        report = SkylineEngine(config).run(ds)
        table.add(
            plan=plan,
            candidates=report.num_candidates,
            reducer_skew=round(report.reducer_skew, 3),
            makespan_cost=report.makespan_cost,
        )
    return table


def local_algorithm_ablation(
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 20,
    seed: int = 0,
) -> ResultTable:
    """Centralized skyline algorithms head to head on one node.

    The full baseline family (BNL, SB, SaLSa, D&C, BBS, Z-search) per
    distribution — the classic comparison table every skyline paper
    opens with, measured in dominance-test cost units.
    """
    from repro.algorithms.registry import get_algorithm
    from repro.zorder.zbtree import OpCounter

    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    table = ResultTable(
        f"Ablation: centralized algorithms (n={n}, d={dimensions})",
        ["distribution", "algorithm", "cost", "skyline"],
    )
    for distribution in ("correlated", "independent", "anticorrelated"):
        ds = generate(distribution, n, dimensions, seed=seed)
        snapped, _codec = quantize_dataset(ds, bits_per_dim=12)
        for name in ("BNL", "SB", "SALSA", "DNC", "BBS", "ZS"):
            algorithm = get_algorithm(name)
            counter = OpCounter()
            sky, _ = algorithm(snapped.points, snapped.ids, counter)
            table.add(
                distribution=distribution,
                algorithm=name,
                cost=counter.total(),
                skyline=sky.shape[0],
            )
    return table


def parallel_merge_ablation(
    distribution: str = "anticorrelated",
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 50,
    num_groups: int = 32,
    seed: int = 0,
) -> ResultTable:
    """Extension: single-reducer Z-merge (ZM, the paper's §5.3) vs the
    two-level parallel merge (ZMP)."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = generate(distribution, n, dimensions, seed=seed)
    table = ResultTable(
        f"Ablation: parallel Z-merge ({distribution}, n={n})",
        ["merge", "merge_makespan", "merge_total", "makespan_cost",
         "skyline"],
    )
    for merge in ("ZM", "ZMP"):
        config = EngineConfig(
            plan=parse_plan(f"ZDG+ZS+{merge}"), num_groups=num_groups,
            seed=seed,
        )
        report = SkylineEngine(config).run(ds)
        table.add(
            merge=merge,
            merge_makespan=report.merge_makespan_cost,
            merge_total=report.merge_cost,
            makespan_cost=report.makespan_cost,
            skyline=report.skyline_size,
        )
    return table


def tree_geometry_ablation(
    distribution: str = "anticorrelated",
    scale: Optional[BenchScale] = None,
    dimensions: int = 5,
    size_m: float = 20,
    seed: int = 0,
    geometries: Sequence[tuple] = ((8, 4), (32, 8), (128, 16)),
) -> ResultTable:
    """ZB-tree leaf capacity / fanout versus Z-search work."""
    scale = scale or BenchScale.from_env()
    n = scale.size(size_m)
    ds = generate(distribution, n, dimensions, seed=seed)
    snapped, codec = quantize_dataset(ds, bits_per_dim=12)
    table = ResultTable(
        f"Ablation: ZB-tree geometry ({distribution}, n={n})",
        ["leaf_capacity", "fanout", "height", "zsearch_cost", "skyline"],
    )
    for leaf_capacity, fanout in geometries:
        tree = build_zbtree(
            codec, snapped.points, ids=snapped.ids,
            leaf_capacity=leaf_capacity, fanout=fanout,
        )
        counter = OpCounter()
        sky, _ = zsearch(tree, counter)
        table.add(
            leaf_capacity=leaf_capacity,
            fanout=fanout,
            height=tree.height(),
            zsearch_cost=counter.total(),
            skyline=sky.shape[0],
        )
    return table
