"""One-command reproduction runner (artifact-evaluation style).

Runs a condensed version of every experiment, checks each of the
paper's headline claims programmatically, and writes a markdown report
with PASS / DIVERGENCE per claim.  The full figure data comes from
``pytest benchmarks/ --benchmark-only``; this runner is the quick
end-to-end "does the reproduction hold on this machine" check:

    repro-skyline reproduce --out REPRODUCTION_REPORT.md
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.bench import experiments
from repro.bench.harness import BenchScale, ResultTable


@dataclass
class ClaimResult:
    """Outcome of checking one paper claim."""

    claim: str
    passed: bool
    evidence: str
    seconds: float = 0.0


@dataclass
class ReproductionReport:
    results: List[ClaimResult] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for r in self.results if r.passed)

    @property
    def total(self) -> int:
        return len(self.results)

    def render_markdown(self) -> str:
        lines = [
            "# Reproduction report",
            "",
            f"**{self.passed} / {self.total} claims reproduced** "
            "(divergences are analysed in EXPERIMENTS.md).",
            "",
            "| status | claim | evidence |",
            "|---|---|---|",
        ]
        for r in self.results:
            status = "PASS" if r.passed else "DIVERGENCE"
            lines.append(
                f"| {status} | {r.claim} | {r.evidence} "
                f"({r.seconds:.1f}s) |"
            )
        return "\n".join(lines) + "\n"


def _series(table: ResultTable, plan: str, x: str, y: str) -> dict:
    rows = table.select(plan=plan)
    return dict(zip(rows.column(x), rows.column(y)))


def _check_high_dim_win(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.fig7_dims_sweep(
        "independent", scale=scale, dims=(4, 10),
        plans=("Grid+ZS", "Angle+ZS", "ZDG+ZS+ZM"),
    )
    zdg = _series(table, "ZDG+ZS+ZM", "d", "makespan_cost")
    grid = _series(table, "Grid+ZS", "d", "makespan_cost")
    angle = _series(table, "Angle+ZS", "d", "makespan_cost")
    ok = zdg[10] < grid[10] and zdg[10] < angle[10]
    return ok, (
        f"d=10 makespan: ZDG {zdg[10]:,} vs Grid {grid[10]:,} "
        f"({grid[10] / zdg[10]:.1f}x), Angle {angle[10]:,} "
        f"({angle[10] / zdg[10]:.1f}x)"
    )


def _check_zmerge_win(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.fig8_merge_size_sweep(
        "anticorrelated", scale=scale, sizes_m=(110,),
        plans=("ZDG+ZS+SB", "ZDG+ZS+ZS", "ZDG+ZS+ZM"),
    )
    costs = {
        row["plan"]: row["merge_cost"] for row in table.rows
    }
    zm = costs["ZDG+ZS+ZM"]
    ok = zm < costs["ZDG+ZS+SB"] and zm < costs["ZDG+ZS+ZS"]
    return ok, (
        f"merge cost: ZM {zm:,} vs SB {costs['ZDG+ZS+SB']:,} "
        f"({costs['ZDG+ZS+SB'] / max(zm, 1):.1f}x), "
        f"ZS {costs['ZDG+ZS+ZS']:,}"
    )


def _check_candidate_pruning(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.fig9_candidates(
        "independent", scale=scale, sizes_m=(110,),
        plans=("Grid+ZS", "ZDG+ZS"),
    )
    rows = {r["plan"]: r for r in table.rows}
    ok = (
        rows["ZDG+ZS"]["candidates"] < rows["Grid+ZS"]["candidates"]
        and rows["ZDG+ZS"]["pruned_inputs"] > 0
    )
    return ok, (
        f"candidates: ZDG {rows['ZDG+ZS']['candidates']} vs "
        f"Grid {rows['Grid+ZS']['candidates']}; "
        f"inputs pruned pre-shuffle: {rows['ZDG+ZS']['pruned_inputs']}"
    )


def _check_straggler_taming(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.load_balance_metrics(
        scale=scale, plans=("Naive-Z+ZS", "ZDG+ZS")
    )
    rows = {r["plan"]: r for r in table.rows}
    # Reducer skew (max/mean cost) is the scale-stable statistic; the
    # absolute makespan is noisy at small simulated sizes.
    ok = (
        rows["ZDG+ZS"]["reducer_skew"]
        <= rows["Naive-Z+ZS"]["reducer_skew"]
    )
    return ok, (
        f"phase-1 reducer skew: ZDG {rows['ZDG+ZS']['reducer_skew']}x "
        f"vs Naive-Z {rows['Naive-Z+ZS']['reducer_skew']}x"
    )


def _check_scalability_shape(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.fig12_scalability(
        scale=scale, sizes_m=(2, 30), plans=("Grid+ZS", "ZDG+ZS+ZM")
    )
    zdg = _series(table, "ZDG+ZS+ZM", "size_m", "makespan_cost")
    grid = _series(table, "Grid+ZS", "size_m", "makespan_cost")
    zdg_growth = zdg[30] / max(zdg[2], 1)
    grid_growth = grid[30] / max(grid[2], 1)
    ok = zdg_growth <= grid_growth * 1.5 and zdg[30] < grid[30]
    return ok, (
        f"growth over 15x data: ZDG {zdg_growth:.0f}x vs "
        f"Grid {grid_growth:.0f}x; final makespans {zdg[30]:,} vs "
        f"{grid[30]:,}"
    )


def _check_sampling_study(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.fig13_sampling(
        scale=scale, ratios=(0.005, 0.04),
        plans=("Naive-Z+ZS", "ZDG+ZS+ZM"),
    )
    zdg_pre = _series(table, "ZDG+ZS+ZM", "ratio", "preprocess_s")
    naive_pre = _series(table, "Naive-Z+ZS", "ratio", "preprocess_s")
    zdg_make = _series(table, "ZDG+ZS+ZM", "ratio", "makespan_cost")
    naive_make = _series(table, "Naive-Z+ZS", "ratio", "makespan_cost")
    ok = sum(zdg_pre.values()) > sum(naive_pre.values()) and all(
        zdg_make[r] <= naive_make[r] for r in zdg_make
    )
    return ok, (
        "ZDG pays more preprocessing "
        f"({sum(zdg_pre.values()):.2f}s vs {sum(naive_pre.values()):.2f}s) "
        "yet wins end-to-end at every sampling ratio"
    )


def _check_pruning_analysis(scale: BenchScale) -> Tuple[bool, str]:
    table = experiments.pruning_analysis(scale=scale)
    frac = {r["distribution"]: r["pruned_fraction"] for r in table.rows}
    ok = frac["correlated"] > frac["independent"] > frac["anticorrelated"]
    return ok, (
        f"pruned fraction: corr {frac['correlated']:.2f} > "
        f"indep {frac['independent']:.2f} > "
        f"anti {frac['anticorrelated']:.2f}"
    )


CLAIM_CHECKS: List[Tuple[str, Callable]] = [
    (
        "ZDG+ZM beats Grid/Angle in high dimensions (Fig 7c/d)",
        _check_high_dim_win,
    ),
    ("Z-merge beats SB/ZS candidate merging (Fig 8)", _check_zmerge_win),
    (
        "ZDG emits fewer candidates than Grid and prunes inputs "
        "pre-shuffle (Fig 9, independent)",
        _check_candidate_pruning,
    ),
    (
        "grouping tames the slowest reducer (§4.2/§6.2)",
        _check_straggler_taming,
    ),
    ("ZDG+ZM scales more smoothly than Grid (Fig 12)",
     _check_scalability_shape),
    (
        "ZDG's preprocessing pays for itself across sampling ratios "
        "(Fig 13)",
        _check_sampling_study,
    ),
    (
        "per-distribution pruning ordering matches §5.4's analysis",
        _check_pruning_analysis,
    ),
]


def run_reproduction(
    scale: Optional[BenchScale] = None,
) -> ReproductionReport:
    """Run every claim check; returns the report."""
    scale = scale or BenchScale.from_env()
    report = ReproductionReport()
    for claim, check in CLAIM_CHECKS:
        started = time.perf_counter()
        try:
            passed, evidence = check(scale)
        except Exception as exc:  # surface, don't hide, runner bugs
            passed, evidence = False, f"check crashed: {exc!r}"
        report.results.append(
            ClaimResult(
                claim=claim,
                passed=passed,
                evidence=evidence,
                seconds=time.perf_counter() - started,
            )
        )
    return report
