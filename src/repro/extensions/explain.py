"""Why-not explanations for skyline results.

"Why is my hotel not on the shortlist?" — the classic follow-up to a
skyline query.  Given a point, report *who dominates it* and, per
dimension, the single-attribute improvement that would clear all
current dominators (improving one attribute below every dominator's
value in that dimension makes the point incomparable to all of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.point import block_dominates


@dataclass
class WhyNotExplanation:
    """Explanation of a point's (non-)membership in the skyline."""

    point: np.ndarray
    is_skyline_member: bool
    dominator_points: np.ndarray
    dominator_ids: np.ndarray
    #: per-dimension reduction that would escape all dominators (inf if
    #: the point already matches the dominators' minimum there)
    single_dimension_fixes: Dict[int, float] = field(default_factory=dict)

    @property
    def num_dominators(self) -> int:
        return int(self.dominator_points.shape[0])

    def cheapest_fix(self) -> Optional[Tuple[int, float]]:
        """The (dimension, reduction) pair with the smallest reduction,
        or None when the point is already a skyline member."""
        if self.is_skyline_member or not self.single_dimension_fixes:
            return None
        dim = min(
            self.single_dimension_fixes,
            key=lambda k: self.single_dimension_fixes[k],
        )
        return dim, self.single_dimension_fixes[dim]


def why_not(
    point: np.ndarray,
    dataset_points: np.ndarray,
    dataset_ids: Optional[np.ndarray] = None,
) -> WhyNotExplanation:
    """Explain a point's skyline status against a dataset.

    ``point`` need not be a dataset row (what-if queries work too); a
    row equal to ``point`` never counts as its own dominator.
    """
    p = np.asarray(point, dtype=np.float64)
    data = np.asarray(dataset_points, dtype=np.float64)
    if data.ndim != 2 or p.shape != (data.shape[1],):
        raise DatasetError("point and dataset dimensionality must match")
    if dataset_ids is None:
        dataset_ids = np.arange(data.shape[0], dtype=np.int64)
    else:
        dataset_ids = np.asarray(dataset_ids, dtype=np.int64)

    dominated_by = block_dominates(data, p)
    dominators = data[dominated_by]
    dominator_ids = dataset_ids[dominated_by]
    if dominators.shape[0] == 0:
        return WhyNotExplanation(
            point=p,
            is_skyline_member=True,
            dominator_points=dominators,
            dominator_ids=dominator_ids,
        )

    fixes: Dict[int, float] = {}
    floor = dominators.min(axis=0)
    for dim in range(p.shape[0]):
        # Dropping strictly below every dominator's value in one
        # dimension breaks all of their dominance claims.
        reduction = float(p[dim] - floor[dim])
        if reduction >= 0.0:
            fixes[dim] = reduction
    return WhyNotExplanation(
        point=p,
        is_skyline_member=False,
        dominator_points=dominators.copy(),
        dominator_ids=dominator_ids.copy(),
        single_dimension_fixes=fixes,
    )
