"""k-dominant skylines (Chan, Jagadish, Tan, Tung, Zhang — SIGMOD'06).

In high dimensions almost nothing dominates anything and the skyline
explodes (the paper's 225-D/512-D datasets have skyline = everything).
k-dominance relaxes the requirement: ``p`` k-dominates ``q`` when ``p``
is no worse than ``q`` on *at least k* dimensions and strictly better on
at least one of those.  The k-dominant skyline (points k-dominated by
nobody) shrinks monotonically as k decreases and equals the ordinary
skyline at ``k = d``.

Note the classic subtlety: k-dominance is not transitive, so a
window-eviction algorithm is unsound; we use the two-scan approach over
vectorised comparisons.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.zorder.zbtree import OpCounter


def k_dominates(p: np.ndarray, q: np.ndarray, k: int) -> bool:
    """Does ``p`` k-dominate ``q``?"""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    d = p.shape[0]
    _validate_k(k, d)
    le = p <= q
    lt = p < q
    # Best case for p: count the dimensions where it is no worse; among
    # any qualifying k-subset there must be a strict win, which holds
    # iff some strict-win dimension is part of the <=-set (always true
    # since < implies <=) and the <=-count reaches k.
    return bool(le.sum() >= k and lt.any() and (le & lt).any())


def k_dominated_mask(
    points: np.ndarray,
    k: int,
    counter: Optional[OpCounter] = None,
    chunk: int = 512,
) -> np.ndarray:
    """Boolean mask: which rows are k-dominated by some other row."""
    pts = np.asarray(points, dtype=np.float64)
    n, d = pts.shape
    _validate_k(k, d)
    counter = counter if counter is not None else OpCounter()
    dominated = np.zeros(n, dtype=bool)
    for start in range(0, n, chunk):
        block = pts[start : start + chunk]
        counter.point_tests += block.shape[0] * n
        # le_counts[i, j] = #dims where pts[j] <= block[i]
        le_mat = pts[None, :, :] <= block[:, None, :]
        lt_mat = pts[None, :, :] < block[:, None, :]
        le_counts = le_mat.sum(axis=2)
        strict_any = (le_mat & lt_mat).any(axis=2)
        dom = (le_counts >= k) & strict_any
        # A row never k-dominates itself (no strict dimension).
        dominated[start : start + chunk] |= dom.any(axis=1)
    return dominated


def k_dominant_skyline(
    points: np.ndarray,
    k: int,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The k-dominant skyline of ``points``.

    Returns ``(points, ids)`` of the rows not k-dominated by any other
    row.  ``k = d`` reduces to the ordinary skyline.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    d = pts.shape[1] if pts.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    if n == 0:
        return pts.reshape(0, d), ids
    _validate_k(k, d)
    dominated = k_dominated_mask(pts, k, counter)
    keep = ~dominated
    return pts[keep].copy(), ids[keep].copy()


def _validate_k(k: int, d: int) -> None:
    if not (1 <= k <= d):
        raise DatasetError(f"k must be in [1, {d}]; got {k}")
