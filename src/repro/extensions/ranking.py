"""Ranking and top-k selection over skyline results.

The paper defers this to follow-up work ("users could rank the computed
skyline sets based on user defined functions", §1); these are the
standard instantiations:

* **dominance score** — how many dataset points each skyline point
  dominates (a popularity measure);
* **utility score** — a user-supplied monotone weighting of the
  (minimised) attributes;
* **representative top-k** — greedy max-coverage: pick the k skyline
  points that together dominate as much of the dataset as possible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.point import dominates_block


def dominance_scores(
    skyline_points: np.ndarray, dataset_points: np.ndarray
) -> np.ndarray:
    """Number of dataset points each skyline point dominates."""
    sky = np.asarray(skyline_points, dtype=np.float64)
    data = np.asarray(dataset_points, dtype=np.float64)
    scores = np.zeros(sky.shape[0], dtype=np.int64)
    for i in range(sky.shape[0]):
        scores[i] = int(dominates_block(sky[i], data).sum())
    return scores


def rank_skyline(
    skyline_points: np.ndarray,
    skyline_ids: np.ndarray,
    dataset_points: Optional[np.ndarray] = None,
    method: str = "dominance",
    weights: Optional[Sequence[float]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Order skyline points by a preference criterion.

    Returns ``(points, ids, scores)`` sorted best-first.  Methods:

    * ``"dominance"`` — descending dominance score (needs
      ``dataset_points``);
    * ``"sum"`` — ascending coordinate sum (equal weights);
    * ``"weighted"`` — ascending weighted sum with the given positive
      ``weights``.
    """
    sky = np.asarray(skyline_points, dtype=np.float64)
    ids = np.asarray(skyline_ids, dtype=np.int64)
    if sky.shape[0] != ids.shape[0]:
        raise DatasetError("skyline points and ids must align")
    if method == "dominance":
        if dataset_points is None:
            raise DatasetError("dominance ranking needs dataset_points")
        scores = dominance_scores(sky, dataset_points).astype(np.float64)
        order = np.argsort(-scores, kind="stable")
    elif method == "sum":
        scores = sky.sum(axis=1)
        order = np.argsort(scores, kind="stable")
    elif method == "weighted":
        if weights is None:
            raise DatasetError("weighted ranking needs weights")
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (sky.shape[1],) or np.any(w < 0):
            raise DatasetError(
                "weights must be non-negative, one per dimension"
            )
        scores = sky @ w
        order = np.argsort(scores, kind="stable")
    else:
        raise DatasetError(f"unknown ranking method {method!r}")
    return sky[order].copy(), ids[order].copy(), scores[order].copy()


def top_k_skyline(
    skyline_points: np.ndarray,
    skyline_ids: np.ndarray,
    dataset_points: np.ndarray,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Representative top-k: greedy maximum dominance coverage.

    Repeatedly picks the skyline point dominating the most not-yet-
    covered dataset points — the classic (1 - 1/e) approximation of the
    NP-hard max-representative problem.
    """
    sky = np.asarray(skyline_points, dtype=np.float64)
    ids = np.asarray(skyline_ids, dtype=np.int64)
    data = np.asarray(dataset_points, dtype=np.float64)
    if k <= 0:
        raise DatasetError(f"k must be positive; got {k}")
    k = min(k, sky.shape[0])
    covered = np.zeros(data.shape[0], dtype=bool)
    chosen: list = []
    coverage = [dominates_block(sky[i], data) for i in range(sky.shape[0])]
    remaining = list(range(sky.shape[0]))
    for _ in range(k):
        best_pos, best_gain = None, -1
        for pos in remaining:
            gain = int((coverage[pos] & ~covered).sum())
            if gain > best_gain:
                best_pos, best_gain = pos, gain
        assert best_pos is not None
        chosen.append(best_pos)
        covered |= coverage[best_pos]
        remaining.remove(best_pos)
    idx = np.asarray(chosen, dtype=np.int64)
    return sky[idx].copy(), ids[idx].copy()
