"""Skyline query extensions beyond the paper's core operator.

* :mod:`repro.extensions.kdominant` — k-dominant skylines (Chan et al.):
  relax dominance to "better on at least k of d dimensions", shrinking
  the unwieldy high-dimensional skylines the paper's evaluation exhibits;
* :mod:`repro.extensions.ranking` — ranking/top-k over skyline results,
  the follow-up the paper explicitly defers ("users could rank the
  computed skyline sets based on user defined functions such as in
  [15]", §1);
* :mod:`repro.extensions.subspace` — skylines over dimension subsets
  (the skycube building block).
"""

from repro.extensions.explain import WhyNotExplanation, why_not
from repro.extensions.kdominant import k_dominant_skyline, k_dominates
from repro.extensions.ranking import (
    dominance_scores,
    rank_skyline,
    top_k_skyline,
)
from repro.extensions.subspace import subspace_skyline, skycube

__all__ = [
    "WhyNotExplanation",
    "dominance_scores",
    "k_dominant_skyline",
    "k_dominates",
    "rank_skyline",
    "skycube",
    "subspace_skyline",
    "top_k_skyline",
    "why_not",
]
