"""Subspace skylines and the skycube.

A point interesting in the full space may be there only thanks to one
niche dimension; subspace skylines answer "best trade-offs over *these*
criteria".  The skycube is the collection of skylines over every
dimension subset — we provide the single-subspace operator plus a
bottom-up skycube enumerator over subsets of bounded size (the full
2^d cube is exponential by nature).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.skyline import skyline_indices_oracle


def subspace_skyline(
    points: np.ndarray,
    dimensions: Sequence[int],
    ids: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline of ``points`` projected onto the given dimensions.

    Returns ``(full_points, ids)`` of the rows whose *projection* is not
    dominated in the subspace (rows keep all their coordinates).
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    d = pts.shape[1] if pts.ndim == 2 else 0
    dims = list(dimensions)
    if not dims:
        raise DatasetError("need at least one dimension")
    if len(set(dims)) != len(dims):
        raise DatasetError("dimensions must be distinct")
    if any(not (0 <= k < d) for k in dims):
        raise DatasetError(f"dimensions out of range for d={d}")
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    idx = skyline_indices_oracle(pts[:, dims])
    return pts[idx].copy(), ids[idx].copy()


def skycube(
    points: np.ndarray,
    max_subspace_size: Optional[int] = None,
    ids: Optional[np.ndarray] = None,
) -> Dict[Tuple[int, ...], np.ndarray]:
    """Skyline ids for every dimension subset up to the given size.

    Returns ``{(dims...): skyline_ids}``.  With ``max_subspace_size``
    unset, enumerates the full skycube (2^d - 1 cuboids) — keep d small.
    """
    pts = np.asarray(points, dtype=np.float64)
    d = pts.shape[1]
    limit = d if max_subspace_size is None else max_subspace_size
    if not (1 <= limit <= d):
        raise DatasetError(f"max_subspace_size must be in [1, {d}]")
    out: Dict[Tuple[int, ...], np.ndarray] = {}
    for size in range(1, limit + 1):
        for dims in itertools.combinations(range(d), size):
            _, sub_ids = subspace_skyline(pts, dims, ids=ids)
            out[dims] = sub_ids
    return out
