"""The ZB-tree: a balanced tree over Z-sorted points with RZ-region nodes.

Leaves store blocks of Z-sorted grid points (numpy arrays, so leaf-level
dominance tests are vectorised); internal nodes store the RZ-region of
their subtree.  The tree is built bottom-up from the Z-sorted input, as in
Lee et al. [5].

Deletion support (needed by Z-merge's ``UDominate``) filters leaf blocks in
place and drops emptied nodes.  Regions are *not* recomputed after
deletions: a stale region is a superset of the live one, which keeps every
pruning test conservative and therefore safe (see the proofs in the method
docstrings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import ZOrderError
from repro.core.point import block_dominates, dominates_block
from repro.zorder.encoding import ZGridCodec
from repro.zorder.rzregion import RZRegion

DEFAULT_LEAF_CAPACITY = 32
DEFAULT_FANOUT = 8


@dataclass
class OpCounter:
    """Operation counts used by the simulated cost model.

    ``point_tests`` counts point-vs-point dominance tests (a vectorised
    test of one point against a block of ``m`` points counts ``m``);
    ``region_tests`` counts RZ-region dominance tests (Lemma 1 or
    point-vs-region); ``nodes_visited`` counts tree nodes touched.
    """

    point_tests: int = 0
    region_tests: int = 0
    nodes_visited: int = 0

    def merge(self, other: "OpCounter") -> None:
        """Accumulate another counter's totals into this one."""
        self.point_tests += other.point_tests
        self.region_tests += other.region_tests
        self.nodes_visited += other.nodes_visited

    def total(self) -> int:
        """Single scalar cost figure (used for makespan accounting)."""
        return self.point_tests + self.region_tests + self.nodes_visited


class ZBLeaf:
    """Leaf node: a Z-sorted block of points with their ids and region."""

    __slots__ = ("zaddresses", "points", "ids", "region")

    def __init__(
        self,
        zaddresses: List[int],
        points: np.ndarray,
        ids: np.ndarray,
        codec: ZGridCodec,
        region: Optional[RZRegion] = None,
    ) -> None:
        self.zaddresses = zaddresses
        self.points = points
        self.ids = ids
        # The bulk build precomputes all regions in one vectorised pass
        # and passes them in; standalone construction derives the region.
        self.region = (
            region
            if region is not None
            else RZRegion(codec, zaddresses[0], zaddresses[-1])
        )

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def size(self) -> int:
        return int(self.points.shape[0])

    @property
    def data_minz(self) -> int:
        return self.zaddresses[0]

    @property
    def data_maxz(self) -> int:
        return self.zaddresses[-1]


class ZBInternal:
    """Internal node: ordered children plus the covering RZ-region."""

    __slots__ = ("children", "region", "_child_minpts")

    def __init__(
        self,
        children: List["ZBNode"],
        codec: ZGridCodec,
        region: Optional[RZRegion] = None,
    ) -> None:
        self.children = children
        self._child_minpts: Optional[np.ndarray] = None
        self.region = (
            region
            if region is not None
            else RZRegion(codec, children[0].data_minz, children[-1].data_maxz)
        )

    def child_minpts(self) -> np.ndarray:
        """Stacked ``(k, d)`` float64 matrix of child region min corners.

        Cached so batched traversals pay the stacking cost once per node;
        any mutation that reassigns ``children`` must call
        :meth:`invalidate_child_cache`.
        """
        cached = self._child_minpts
        if cached is None or cached.shape[0] != len(self.children):
            cached = np.stack(
                [child.region.minpt for child in self.children]
            ).astype(np.float64)
            self._child_minpts = cached
        return cached

    def invalidate_child_cache(self) -> None:
        self._child_minpts = None

    def __getstate__(self):
        # The child-minpt cache is derived, process-local state: keeping
        # it out of pickles makes equal-by-construction trees
        # pickle-identical (the distributed cache's idempotent-republish
        # check and the process pool's cache-bytes comparison rely on
        # that), and shrinks what crosses the pool boundary.
        return (self.children, self.region)

    def __setstate__(self, state) -> None:
        self.children, self.region = state
        self._child_minpts = None

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def size(self) -> int:
        return sum(child.size for child in self.children)

    @property
    def data_minz(self) -> int:
        return self.children[0].data_minz

    @property
    def data_maxz(self) -> int:
        return self.children[-1].data_maxz


ZBNode = Union[ZBLeaf, ZBInternal]


class ZBTree:
    """A ZB-tree over grid points.

    Construct via :func:`build_zbtree` (bulk bottom-up build); an empty
    tree has ``root is None``.
    """

    def __init__(
        self,
        codec: ZGridCodec,
        root: Optional[ZBNode],
        leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        self.codec = codec
        self.root = root
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.root is None

    @property
    def size(self) -> int:
        """Number of points currently stored."""
        return 0 if self.root is None else self.root.size

    def height(self) -> int:
        """Height of the tree (0 for empty, 1 for a single leaf)."""
        h = 0
        node = self.root
        while node is not None:
            h += 1
            if node.is_leaf:
                break
            node = node.children[0]
        return h

    def leaves(self) -> Iterator[ZBLeaf]:
        """Yield leaves in Z-order."""
        if self.root is None:
            return
        stack: List[ZBNode] = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node  # type: ignore[misc]
            else:
                stack.extend(reversed(node.children))  # type: ignore[union-attr]

    def collect(self) -> Tuple[List[int], np.ndarray, np.ndarray]:
        """Return all ``(zaddresses, points, ids)`` in Z-order."""
        zs: List[int] = []
        blocks: List[np.ndarray] = []
        id_blocks: List[np.ndarray] = []
        for leaf in self.leaves():
            zs.extend(leaf.zaddresses)
            blocks.append(leaf.points)
            id_blocks.append(leaf.ids)
        if not blocks:
            d = self.codec.dimensions
            return [], np.empty((0, d)), np.empty(0, dtype=np.int64)
        return zs, np.vstack(blocks), np.concatenate(id_blocks)

    def points(self) -> np.ndarray:
        """All stored points in Z-order, shape ``(n, d)``."""
        return self.collect()[1]

    def ids(self) -> np.ndarray:
        """Ids of all stored points in Z-order."""
        return self.collect()[2]

    def range_query(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> np.ndarray:
        """Ids of stored points inside the box ``[lower, upper]``.

        Region pruning: a subtree is visited only if its RZ-region box
        intersects the query box.  Handy general-purpose access path
        for the substrate (and used by analysis tooling).
        """
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if self.root is None:
            return np.empty(0, dtype=np.int64)
        hits: List[np.ndarray] = []
        stack: List[ZBNode] = [self.root]
        while stack:
            node = stack.pop()
            region = node.region
            if np.any(region.maxpt < lower) or np.any(
                region.minpt > upper
            ):
                continue
            if node.is_leaf:
                inside = np.all(
                    (lower <= node.points)  # type: ignore[union-attr]
                    & (node.points <= upper),  # type: ignore[union-attr]
                    axis=1,
                )
                if inside.any():
                    hits.append(node.ids[inside])  # type: ignore[union-attr]
            else:
                stack.extend(node.children)  # type: ignore[union-attr]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ZOrderError`.

        Invariants: leaves appear in globally non-decreasing Z-order, every
        leaf point's Z-address lies inside every ancestor region, and node
        sizes are consistent.
        """
        zs, points, _ = self.collect()
        if any(zs[i] > zs[i + 1] for i in range(len(zs) - 1)):
            raise ZOrderError("leaf z-addresses are not sorted")
        recomputed = self.codec.encode_grid(points.astype(np.int64))
        if recomputed != zs:
            raise ZOrderError("stored z-addresses disagree with stored points")

        def check(node: ZBNode) -> None:
            if node.is_leaf:
                leaf = node
                for z in leaf.zaddresses:  # type: ignore[union-attr]
                    if not node.region.contains_zaddress(z):
                        raise ZOrderError("leaf point outside leaf region")
                return
            for child in node.children:  # type: ignore[union-attr]
                if not (
                    node.region.minz <= child.region.minz
                    and child.region.maxz <= node.region.maxz
                ):
                    raise ZOrderError("child region escapes parent region")
                check(child)

        if self.root is not None:
            check(self.root)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_dominated(
        self, point: np.ndarray, counter: Optional[OpCounter] = None
    ) -> bool:
        """Is ``point`` dominated by any point stored in the tree?

        Region pruning: a subtree can contain a dominator only if its
        region's min point dominates ``point`` — ``minpt`` is the best
        dominator the region could possibly hold.
        """
        if self.root is None:
            return False
        counter = counter if counter is not None else OpCounter()
        stack: List[ZBNode] = [self.root]
        while stack:
            node = stack.pop()
            counter.nodes_visited += 1
            counter.region_tests += 1
            if not node.region.may_contain_dominator_of(point):
                continue
            if node.is_leaf:
                counter.point_tests += node.size
                if block_dominates(node.points, point).any():  # type: ignore[union-attr]
                    return True
            else:
                stack.extend(node.children)  # type: ignore[union-attr]
        return False

    def dominated_mask_tree(
        self, points: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        """Batched :meth:`is_dominated`: one tree walk for many probes.

        Returns a boolean array, entry ``i`` True iff ``points[i]`` is
        dominated by some stored point.  The walk carries the subset of
        still-undecided probes past each region test, so the pruning
        logic is identical to the single-point query — just vectorised.
        """
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        out = np.zeros(n, dtype=bool)
        if self.root is None or n == 0:
            return out
        counter = counter if counter is not None else OpCounter()
        from repro.core.point import dominated_mask

        # The min-corner feasibility test for a node ("can this subtree
        # hold a dominator of probe p?") is evaluated at its *parent*,
        # for all siblings in one broadcast, so per-node numpy dispatch
        # overhead is paid once per fanout instead of once per child.
        counter.nodes_visited += 1
        counter.region_tests += n
        root_minpt = self.root.region.minpt.astype(np.float64)
        root_feasible = dominates_block(root_minpt, points)
        root_idx = np.flatnonzero(root_feasible).astype(np.int64)
        if root_idx.size == 0:
            return out
        stack: List[Tuple[ZBNode, np.ndarray]] = [(self.root, root_idx)]
        while stack:
            node, probe_idx = stack.pop()
            probe_idx = probe_idx[~out[probe_idx]]
            if probe_idx.size == 0:
                continue
            if node.is_leaf:
                block = node.points  # type: ignore[union-attr]
                counter.point_tests += probe_idx.size * block.shape[0]
                hit = dominated_mask(points[probe_idx], block)
                out[probe_idx[hit]] = True
            else:
                kids = node.children  # type: ignore[union-attr]
                minpts = node.child_minpts()  # type: ignore[union-attr]
                probes = points[probe_idx]
                le = np.all(minpts[:, None, :] <= probes[None, :, :], axis=2)
                lt = np.any(minpts[:, None, :] < probes[None, :, :], axis=2)
                feasible = le & lt  # (k, p)
                counter.nodes_visited += len(kids)
                counter.region_tests += probe_idx.size * len(kids)
                for ci, child in enumerate(kids):
                    sub = probe_idx[feasible[ci]]
                    if sub.size:
                        stack.append((child, sub))
        return out

    def remove_dominated_by_block(
        self, block: np.ndarray, counter: Optional[OpCounter] = None
    ) -> int:
        """Batched ``UDominate`` removal: delete every stored point
        dominated by *any* row of ``block``.  Returns the removed count."""
        block = np.asarray(block, dtype=np.float64)
        if self.root is None or block.shape[0] == 0:
            return 0
        counter = counter if counter is not None else OpCounter()
        removed, new_root = self._remove_block_rec(self.root, block, counter)
        self.root = new_root
        return removed

    def _remove_block_rec(
        self, node: ZBNode, block: np.ndarray, counter: OpCounter
    ) -> Tuple[int, Optional[ZBNode]]:
        counter.nodes_visited += 1
        counter.region_tests += block.shape[0]
        maxpt = node.region.maxpt.astype(np.float64)
        # Rows that could dominate something inside the region.
        feasible = np.all(block <= maxpt, axis=1)
        if not feasible.any():
            return 0, node
        sub = block[feasible]
        counter.region_tests += sub.shape[0]
        minpt = node.region.minpt.astype(np.float64)
        if block_dominates(sub, minpt).any():
            # Some row dominates the region's min corner, hence every
            # point of the subtree.
            return node.size, None
        if node.is_leaf:
            from repro.core.point import dominated_mask

            leaf = node
            counter.point_tests += leaf.size * sub.shape[0]
            dominated = dominated_mask(leaf.points, sub)  # type: ignore[union-attr]
            n_removed = int(dominated.sum())
            if n_removed == 0:
                return 0, node
            if n_removed == leaf.size:
                return n_removed, None
            keep = ~dominated
            leaf.points = leaf.points[keep]  # type: ignore[union-attr]
            leaf.ids = leaf.ids[keep]  # type: ignore[union-attr]
            leaf.zaddresses = [
                z
                for z, k in zip(leaf.zaddresses, keep)  # type: ignore[union-attr]
                if k
            ]
            return n_removed, node
        total = 0
        new_children: List[ZBNode] = []
        for child in node.children:  # type: ignore[union-attr]
            n_removed, new_child = self._remove_block_rec(child, sub, counter)
            total += n_removed
            if new_child is not None:
                new_children.append(new_child)
        if not new_children:
            return total, None
        node.children = new_children  # type: ignore[union-attr]
        return total, node

    def remove_dominated_by(
        self, point: np.ndarray, counter: Optional[OpCounter] = None
    ) -> int:
        """Delete every stored point dominated by ``point``; return count.

        This is the paper's ``UDominate`` removal direction.  Subtrees
        whose region min point is dominated by ``point`` are dropped
        wholesale (every point of such a region is dominated); subtrees
        whose region max point is not weakly above ``point`` cannot contain
        dominated points and are skipped.  Stale (too-large) regions after
        earlier deletions only make these tests more conservative.
        """
        if self.root is None:
            return 0
        counter = counter if counter is not None else OpCounter()
        removed, new_root = self._remove_rec(self.root, point, counter)
        self.root = new_root
        return removed

    def _remove_rec(
        self, node: ZBNode, point: np.ndarray, counter: OpCounter
    ) -> Tuple[int, Optional[ZBNode]]:
        counter.nodes_visited += 1
        counter.region_tests += 1
        if not node.region.may_contain_point_dominated_by(point):
            return 0, node
        counter.region_tests += 1
        if node.region.all_points_dominated_by(point):
            return node.size, None
        if node.is_leaf:
            leaf = node
            counter.point_tests += leaf.size
            dominated = dominates_block(point, leaf.points)  # type: ignore[union-attr]
            n_removed = int(dominated.sum())
            if n_removed == 0:
                return 0, node
            if n_removed == leaf.size:
                return n_removed, None
            keep = ~dominated
            leaf.points = leaf.points[keep]  # type: ignore[union-attr]
            leaf.ids = leaf.ids[keep]  # type: ignore[union-attr]
            leaf.zaddresses = [
                z
                for z, k in zip(leaf.zaddresses, keep)  # type: ignore[union-attr]
                if k
            ]
            return n_removed, node
        total = 0
        new_children: List[ZBNode] = []
        for child in node.children:  # type: ignore[union-attr]
            n_removed, new_child = self._remove_rec(child, point, counter)
            total += n_removed
            if new_child is not None:
                new_children.append(new_child)
        if not new_children:
            return total, None
        node.children = new_children  # type: ignore[union-attr]
        return total, node


def build_zbtree(
    codec: ZGridCodec,
    points: np.ndarray,
    ids: Optional[Sequence[int]] = None,
    zaddresses: Optional[Union[Sequence[int], np.ndarray]] = None,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> ZBTree:
    """Bulk-build a ZB-tree bottom-up from grid points.

    The build is fully batched: encoding, the (stable) Z-sort, and the
    RZ-region corners of *every* node — leaves and all internal levels —
    are computed in single vectorised kernel passes.  Per-node Python
    work is limited to object construction.

    Parameters
    ----------
    points:
        ``(n, d)`` array of grid coordinates (integer-valued).  May be
        empty.
    ids:
        Optional stable identifiers (default ``0..n-1``).
    zaddresses:
        Optional precomputed Z-addresses matching ``points`` (skips
        re-encoding).  Either a sequence of Python ints or a native
        kernel batch.  They need not be sorted; the build sorts.
    """
    if leaf_capacity < 2 or fanout < 2:
        raise ZOrderError("leaf_capacity and fanout must both be >= 2")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ZOrderError(f"points must be 2-D; got shape {pts.shape}")
    n = pts.shape[0]
    if ids is None:
        id_arr = np.arange(n, dtype=np.int64)
    else:
        id_arr = np.asarray(ids, dtype=np.int64)
        if id_arr.shape != (n,):
            raise ZOrderError("ids must match points length")
    if n == 0:
        return ZBTree(codec, None, leaf_capacity, fanout)

    kernel = codec.kernel
    if zaddresses is None:
        zbatch = codec.encode_grid_batch(pts.astype(np.int64))
    else:
        zbatch = codec.as_zbatch(zaddresses)
        if zbatch.shape[0] != n:
            raise ZOrderError("zaddresses must match points length")

    # Stable sort keeps equal Z-addresses (duplicate grid points) in
    # input order, matching the former Python ``sorted`` behaviour.
    order = kernel.argsort(zbatch)
    zsorted_batch = zbatch[order]
    zsorted = kernel.to_int_list(zsorted_batch)
    psorted = pts[order]
    isorted = id_arr[order]

    # Node index ranges into the sorted arrays, bottom-up: leaves first,
    # then each internal level, so one region_bounds + two decode calls
    # cover every node in the tree.
    leaf_ranges = [
        (start, min(start + leaf_capacity, n))
        for start in range(0, n, leaf_capacity)
    ]
    range_levels: List[List[Tuple[int, int]]] = [leaf_ranges]
    while len(range_levels[-1]) > 1:
        prev = range_levels[-1]
        range_levels.append(
            [
                (prev[start][0], prev[min(start + fanout, len(prev)) - 1][1])
                for start in range(0, len(prev), fanout)
            ]
        )
    all_ranges = [rng for lvl in range_levels for rng in lvl]
    starts = np.fromiter((r[0] for r in all_ranges), dtype=np.int64)
    ends = np.fromiter((r[1] for r in all_ranges), dtype=np.int64)
    minz_b, maxz_b = kernel.region_bounds(
        zsorted_batch[starts], zsorted_batch[ends - 1]
    )
    minpts = codec.decode_batch(minz_b).astype(np.int64)
    maxpts = codec.decode_batch(maxz_b).astype(np.int64)
    minz_ints = kernel.to_int_list(minz_b)
    maxz_ints = kernel.to_int_list(maxz_b)
    regions = [
        RZRegion.from_corners(minz_ints[i], maxz_ints[i], minpts[i], maxpts[i])
        for i in range(len(all_ranges))
    ]

    pos = 0
    level: List[ZBNode] = []
    for start, end in leaf_ranges:
        level.append(
            ZBLeaf(
                zsorted[start:end],
                psorted[start:end],
                isorted[start:end],
                codec,
                region=regions[pos],
            )
        )
        pos += 1
    for range_level in range_levels[1:]:
        parents: List[ZBNode] = []
        child_pos = 0
        for _ in range_level:
            group = level[child_pos : child_pos + fanout]
            child_pos += fanout
            parents.append(ZBInternal(group, codec, region=regions[pos]))
            pos += 1
        level = parents
    return ZBTree(codec, level[0], leaf_capacity, fanout)


def rebuild(tree: ZBTree) -> ZBTree:
    """Rebuild a tree from its surviving points (rebalance after merges)."""
    zs, points, ids = tree.collect()
    return build_zbtree(
        tree.codec,
        points,
        ids=ids,
        zaddresses=zs,
        leaf_capacity=tree.leaf_capacity,
        fanout=tree.fanout,
    )
