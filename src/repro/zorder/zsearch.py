"""Z-search: skyline computation over a ZB-tree (Lee et al. [5]).

The correctness anchor is the Z-order monotonicity property: for distinct
grid points, ``p`` dominates ``q`` implies ``z(p) < z(q)``.  Scanning the
tree in increasing Z-address order therefore guarantees that a point can
only be dominated by points *already scanned*, so a single forward pass
with a growing skyline buffer is exact — no point ever has to be retracted
from the buffer.

Region pruning: before descending into a node, the buffer is probed for a
point dominating the node region's min corner; such a point dominates
every point in the region (Lemma 1), so the whole subtree is skipped.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.point import block_dominates, dominated_mask
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, ZBNode, ZBTree, build_zbtree


class SkylineBuffer:
    """Growing numpy-backed buffer of accepted skyline points."""

    def __init__(self, dimensions: int, initial_capacity: int = 64) -> None:
        self._points = np.empty((initial_capacity, dimensions))
        self._ids = np.empty(initial_capacity, dtype=np.int64)
        self._zaddresses: List[int] = []
        self._n = 0

    @property
    def size(self) -> int:
        return self._n

    @property
    def points(self) -> np.ndarray:
        """View of the accepted points, shape ``(size, d)``."""
        return self._points[: self._n]

    @property
    def ids(self) -> np.ndarray:
        return self._ids[: self._n]

    @property
    def zaddresses(self) -> List[int]:
        return self._zaddresses

    def append(self, point: np.ndarray, point_id: int, zaddress: int) -> None:
        if self._n == self._points.shape[0]:
            self._points = np.vstack([self._points, np.empty_like(self._points)])
            self._ids = np.concatenate([self._ids, np.empty_like(self._ids)])
        self._points[self._n] = point
        self._ids[self._n] = point_id
        self._zaddresses.append(zaddress)
        self._n += 1

    def dominates(self, point: np.ndarray, counter: OpCounter) -> bool:
        """Does any buffered point dominate ``point``?"""
        if self._n == 0:
            return False
        counter.point_tests += self._n
        return bool(block_dominates(self.points, point).any())


def zsearch(
    tree: ZBTree, counter: Optional[OpCounter] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute the skyline of the points stored in ``tree``.

    Returns ``(points, ids)`` in Z-order.  ``counter``, when given,
    accrues the dominance-test counts used by the simulated cost model.
    """
    counter = counter if counter is not None else OpCounter()
    d = tree.codec.dimensions
    buffer = SkylineBuffer(d)
    if tree.root is None:
        return np.empty((0, d)), np.empty(0, dtype=np.int64)

    stack: List[ZBNode] = [tree.root]
    while stack:
        node = stack.pop()
        counter.nodes_visited += 1
        counter.region_tests += 1
        if _buffer_dominates_region(buffer, node, counter):
            continue
        if node.is_leaf:
            # Batched leaf screening: one vectorised pass tests the whole
            # block against the buffer as it stood at leaf entry, then a
            # short sequential sweep (in Z-order) resolves dominance by
            # points accepted earlier in the same leaf.  The accounting
            # reproduces the scalar scan exactly: probing point i against
            # a buffer of s0 + a_i points costs s0 + a_i point tests
            # (and nothing when the buffer is empty).
            leaf_points = node.points  # type: ignore[union-attr]
            m = node.size
            s0 = buffer.size
            mask0: Optional[np.ndarray] = None
            if s0:
                mask0 = dominated_mask(leaf_points, buffer.points)
                if mask0.all():
                    # Whole block falls to the entry buffer, which then
                    # never grows: the scalar scan would probe it m times.
                    counter.point_tests += m * s0
                    continue
            accepted = 0
            for i in range(m):
                tests = s0 + accepted
                if mask0 is not None and mask0[i]:
                    counter.point_tests += tests
                    continue
                if tests:
                    counter.point_tests += tests
                if accepted and block_dominates(
                    buffer.points[s0:], leaf_points[i]
                ).any():
                    continue
                buffer.append(
                    leaf_points[i],
                    int(node.ids[i]),  # type: ignore[union-attr]
                    node.zaddresses[i],  # type: ignore[union-attr]
                )
                accepted += 1
        else:
            # Children pushed in reverse so the stack pops them in Z-order.
            stack.extend(reversed(node.children))  # type: ignore[union-attr]
    return buffer.points.copy(), buffer.ids.copy()


def _buffer_dominates_region(
    buffer: SkylineBuffer, node: ZBNode, counter: OpCounter
) -> bool:
    """True when some buffered point dominates the whole node region."""
    if buffer.size == 0:
        return False
    counter.point_tests += buffer.size
    return bool(
        block_dominates(buffer.points, node.region.minpt.astype(np.float64)).any()
    )


def zsearch_dataset(
    dataset: Dataset,
    codec: Optional[ZGridCodec] = None,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: build a ZB-tree for a dataset and Z-search it.

    The dataset is assumed to already hold grid coordinates (see
    :func:`repro.zorder.encoding.quantize_dataset`).  When ``codec`` is
    omitted an identity grid codec wide enough for the data is used.
    """
    if codec is None:
        bits = _bits_needed(dataset.points)
        codec = ZGridCodec.grid_identity(dataset.dimensions, bits_per_dim=bits)
    tree = build_zbtree(codec, dataset.points, ids=dataset.ids)
    return zsearch(tree, counter=counter)


def _bits_needed(points: np.ndarray) -> int:
    """Smallest bits-per-dim that can represent the given grid values."""
    top = int(points.max()) if points.size else 1
    return max(1, top.bit_length())
