"""Vectorized Z-address kernel: the bit-twiddling engine under the codec.

Every phase of the pipeline funnels through Z-order arithmetic — mapper
encoding, ZB-tree bulk load, Z-search, Z-merge — so this module keeps
that arithmetic out of the Python interpreter.  A :class:`ZKernel` is
bound to a ``(dimensions, bits_per_dim)`` shape and operates on whole
*batches* of Z-addresses in one of two native forms:

* **fast path** (``total_bits <= 64``): a ``(n,)`` ``uint64`` array.
  Interleave, de-interleave, comparison, sorting, common-prefix and
  RZ-region-bound computation are all single numpy passes.
* **wide path** (``total_bits > 64``): a ``(n, W)`` ``uint8`` matrix of
  big-endian packed bytes (``W = ceil(total_bits / 8)``).  Rows compare
  lexicographically exactly like the big integers they encode, so
  sorting, prefix and region arithmetic stay vectorised; arbitrary
  dimensionality (the paper's 512-d datasets need 8192-bit addresses)
  costs no per-row Python work in the hot paths.

Python ``int`` Z-addresses only materialise at API boundaries
(:meth:`ZKernel.to_int_list` / :meth:`ZKernel.from_ints`) — for leaf
storage, pivot serialisation, and backwards-compatible codec calls —
never inside the per-batch hot loops.

Both forms share axis-0 indexing semantics (``batch[mask]``,
``np.concatenate([...], axis=0)``), which is what lets
:class:`~repro.mapreduce.types.Block` carry a batch through shuffles and
checkpoints without caring which path produced it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.exceptions import ZOrderError

#: accepted inputs for batch conversion helpers
ZBatchLike = Union[np.ndarray, Sequence[int]]

_U64_SMEAR_SHIFTS = (1, 2, 4, 8, 16, 32)


def _popcount_u64(values: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(values).astype(np.int64)
    as_bytes = np.ascontiguousarray(values).view(np.uint8)
    return (
        np.unpackbits(as_bytes.reshape(values.shape[0], 8), axis=1)
        .sum(axis=1)
        .astype(np.int64)
    )


def _smear_u64(values: np.ndarray) -> np.ndarray:
    """Propagate each element's most significant set bit downwards,
    yielding the all-ones suffix mask ``2**bit_length(v) - 1``."""
    mask = values.copy()
    for shift in _U64_SMEAR_SHIFTS:
        mask |= mask >> np.uint64(shift)
    return mask


class KernelStats:
    """Thread-safe fast-path/fallback call accounting for one codec.

    The pipeline folds a snapshot into its
    :class:`~repro.observability.metrics.MetricsRegistry` under the
    ``zkernel`` group, so an exported metrics file shows which path a
    run took and how many rows went through it.
    """

    __slots__ = ("_lock", "_counts")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def record(self, name: str, rows: int) -> None:
        with self._lock:
            self._counts[f"{name}_calls"] = (
                self._counts.get(f"{name}_calls", 0) + 1
            )
            self._counts[f"{name}_rows"] = (
                self._counts.get(f"{name}_rows", 0) + int(rows)
            )

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def merge_snapshot(self, snapshot: Dict[str, int]) -> None:
        """Fold another stats object's :meth:`snapshot` into this one.

        Pickling deliberately empties the stats (see :meth:`__reduce__`),
        so per-worker deltas must travel as explicit snapshots and be
        merged coordinator-side — this is that merge.
        """
        with self._lock:
            for name, value in snapshot.items():
                self._counts[name] = self._counts.get(name, 0) + int(value)

    def __reduce__(self):
        # Counts are process-local telemetry (and the lock cannot
        # cross a pickle boundary): a pickled codec carries a fresh,
        # empty stats object.  This also keeps equal-by-construction
        # codecs pickle-identical for the distributed cache's
        # idempotent-republish check.
        return (KernelStats, ())


class ZKernel:
    """Batch Z-address arithmetic for a fixed ``(d, bits_per_dim)``."""

    __slots__ = (
        "dimensions",
        "bits_per_dim",
        "total_bits",
        "fast_path",
        "width",
        "pad_bits",
        "_decode_weights",
    )

    def __init__(self, dimensions: int, bits_per_dim: int) -> None:
        if not (1 <= bits_per_dim <= 32):
            # Same bound the codec enforces: decoded grid coordinates
            # are uint32, so a dimension never holds more than 32 bits.
            raise ZOrderError(
                f"bits_per_dim must be in [1, 32]; got {bits_per_dim}"
            )
        self.dimensions = int(dimensions)
        self.bits_per_dim = int(bits_per_dim)
        self.total_bits = self.dimensions * self.bits_per_dim
        self.fast_path = self.total_bits <= 64
        #: packed row width in bytes (8 on the fast path so rows view
        #: directly as big-endian uint64)
        self.width = 8 if self.fast_path else (self.total_bits + 7) // 8
        self.pad_bits = self.width * 8 - self.total_bits
        self._decode_weights = (
            np.int64(1) << np.arange(bits_per_dim - 1, -1, -1, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def interleave(self, grid: np.ndarray) -> np.ndarray:
        """``(n, d)`` grid coordinates -> native Z-address batch.

        One vectorised pass: build the level-major bit matrix, pack it
        to big-endian bytes, and (fast path) view the 8-byte rows as
        ``uint64``.  No per-row Python work on either path.
        """
        g64 = np.asarray(grid).astype(np.uint64)
        n = g64.shape[0]
        b = self.bits_per_dim
        d = self.dimensions
        # bits[i, l, k] = bit (b-1-l) of g[i, k]  -> level-major layout.
        shifts = np.arange(b - 1, -1, -1, dtype=np.uint64)
        bits = (
            (g64[:, None, :] >> shifts[None, :, None]) & np.uint64(1)
        ).astype(np.uint8)
        flat = bits.reshape(n, b * d)
        if self.pad_bits:
            pad = np.zeros((n, self.pad_bits), dtype=np.uint8)
            flat = np.concatenate([pad, flat], axis=1)
        packed = np.packbits(flat, axis=1)
        if self.fast_path:
            return (
                np.ascontiguousarray(packed)
                .view(">u8")
                .ravel()
                .astype(np.uint64)
            )
        return packed

    def deinterleave(self, zbatch: np.ndarray) -> np.ndarray:
        """Native Z-address batch -> ``(n, d)`` uint32 grid coordinates.

        The inverse of :meth:`interleave`: unpack the byte rows to the
        level-major bit matrix and collapse each dimension's bit column
        with one tensor contraction.
        """
        matrix = self.to_bytes_matrix(zbatch)
        n = matrix.shape[0]
        if n == 0:
            return np.empty((0, self.dimensions), dtype=np.uint32)
        bits = np.unpackbits(matrix, axis=1)[:, self.pad_bits:]
        bits = bits.reshape(n, self.bits_per_dim, self.dimensions)
        grid = np.tensordot(
            bits.astype(np.int64), self._decode_weights, axes=([1], [0])
        )
        return grid.astype(np.uint32)

    def to_bytes_matrix(self, zbatch: np.ndarray) -> np.ndarray:
        """Native batch -> ``(n, W)`` big-endian byte matrix (a view or
        cheap copy; wide batches pass through unchanged)."""
        if self.fast_path:
            return (
                np.ascontiguousarray(zbatch.astype(">u8"))
                .view(np.uint8)
                .reshape(-1, 8)
            )
        return zbatch

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def argsort(self, zbatch: np.ndarray) -> np.ndarray:
        """Stable ascending sort permutation of a batch.

        Stability matters: bulk loads must place equal Z-addresses
        (duplicate grid points) in input order, exactly like the former
        ``sorted(range(n), key=...)`` Python path.
        """
        if self.fast_path:
            return np.argsort(zbatch, kind="stable")
        width = zbatch.shape[1]
        # lexsort's last key is primary, so feed bytes least- to
        # most-significant; lexsort is stable.
        return np.lexsort(tuple(zbatch[:, j] for j in reversed(range(width))))

    # ------------------------------------------------------------------
    # prefix / region arithmetic
    # ------------------------------------------------------------------
    def region_bounds(
        self, alpha: np.ndarray, beta: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised Definition 2: per-pair RZ-region min/max addresses.

        Keeps each pair's common bit prefix and fills the suffix with
        zeros (min) or ones (max).  Inputs need not be ordered; the XOR
        is symmetric.
        """
        if self.fast_path:
            suffix = _smear_u64(alpha ^ beta)
            minz = alpha & ~suffix
            return minz, minz | suffix
        diff_bits = np.unpackbits(alpha ^ beta, axis=1)
        n, total = diff_bits.shape
        differs = diff_bits.any(axis=1)
        first = np.argmax(diff_bits, axis=1)
        columns = np.arange(total)
        suffix_bits = (columns[None, :] >= first[:, None]) & differs[:, None]
        suffix = np.packbits(suffix_bits, axis=1)
        minz = alpha & ~suffix
        return minz, minz | suffix

    def common_prefix_lengths(
        self, alpha: np.ndarray, beta: np.ndarray
    ) -> np.ndarray:
        """Per-pair common-prefix length in bits (int64 array)."""
        if self.fast_path:
            suffix = _smear_u64(alpha ^ beta)
            return self.total_bits - _popcount_u64(suffix)
        diff_bits = np.unpackbits(alpha ^ beta, axis=1)
        differs = diff_bits.any(axis=1)
        first = np.argmax(diff_bits, axis=1)
        return np.where(
            differs, first - self.pad_bits, self.total_bits
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # boundary conversions (python ints only materialise here)
    # ------------------------------------------------------------------
    def to_int_list(self, zbatch: np.ndarray) -> List[int]:
        """Native batch -> list of Python ints (the legacy wire form)."""
        if self.fast_path:
            return zbatch.tolist()
        width = zbatch.shape[1]
        buffer = zbatch.tobytes()
        return [
            int.from_bytes(buffer[i * width:(i + 1) * width], "big")
            for i in range(zbatch.shape[0])
        ]

    def from_ints(self, zaddresses: Sequence[int]) -> np.ndarray:
        """List of Python ints -> native batch (validates range)."""
        if self.fast_path:
            try:
                return np.asarray(zaddresses, dtype=np.uint64)
            except (OverflowError, ValueError) as exc:
                raise ZOrderError(
                    f"z-address out of range for {self.total_bits} bits"
                ) from exc
        try:
            payload = b"".join(
                int(z).to_bytes(self.width, "big") for z in zaddresses
            )
        except (OverflowError, ValueError) as exc:
            raise ZOrderError(
                f"z-address out of range for {self.total_bits} bits"
            ) from exc
        return (
            np.frombuffer(payload, dtype=np.uint8)
            .reshape(len(zaddresses), self.width)
            .copy()
        )

    def as_batch(self, zaddresses: ZBatchLike) -> np.ndarray:
        """Accept either form — a native batch passes through, anything
        else (lists, tuples, object arrays of ints) converts."""
        if isinstance(zaddresses, np.ndarray):
            if self.fast_path:
                if zaddresses.ndim == 1 and zaddresses.dtype == np.uint64:
                    return zaddresses
            elif (
                zaddresses.ndim == 2
                and zaddresses.dtype == np.uint8
                and zaddresses.shape[1] == self.width
            ):
                return zaddresses
            if zaddresses.ndim == 1:
                return self.from_ints(zaddresses.tolist())
            raise ZOrderError(
                f"cannot interpret array of shape {zaddresses.shape} / "
                f"dtype {zaddresses.dtype} as a z-address batch for "
                f"{self.total_bits}-bit addresses"
            )
        return self.from_ints(list(zaddresses))

    def is_native(self, zaddresses: object) -> bool:
        """Is this already a native batch for this kernel shape?"""
        if not isinstance(zaddresses, np.ndarray):
            return False
        if self.fast_path:
            return zaddresses.ndim == 1 and zaddresses.dtype == np.uint64
        return (
            zaddresses.ndim == 2
            and zaddresses.dtype == np.uint8
            and zaddresses.shape[1] == self.width
        )

    def __repr__(self) -> str:
        path = "fast" if self.fast_path else "wide"
        return (
            f"ZKernel(d={self.dimensions}, bits={self.bits_per_dim}, "
            f"total_bits={self.total_bits}, path={path})"
        )


__all__ = ["KernelStats", "ZKernel", "ZBatchLike"]
