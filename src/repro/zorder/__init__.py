"""Z-order curve substrate: encoding, RZ-regions, ZB-tree, Z-search, Z-merge.

This package implements the machinery of Lee et al.'s Z-search algorithm
([5] in the paper) that the paper builds on, plus the paper's own Z-merge
(Algorithm 4):

* :mod:`repro.zorder.kernel` — the vectorized Z-kernel: a uint64 fast
  path (when ``dimensions * bits_per_dim <= 64``) and a packed-byte wide
  path for batch interleave/deinterleave/sort/region-bound operations;
* :mod:`repro.zorder.encoding` — quantisation of float points onto a
  ``2^bits``-per-dimension grid and bit-interleaved Z-addresses;
* :mod:`repro.zorder.rzregion` — RZ-regions (Definition 2/3) with the
  three-way region dominance test of Lemma 1;
* :mod:`repro.zorder.zbtree` — the balanced ZB-tree built bottom-up over
  Z-sorted points;
* :mod:`repro.zorder.zsearch` — skyline computation over a ZB-tree;
* :mod:`repro.zorder.zmerge` — BFS merge of a candidate ZB-tree into an
  accumulated skyline ZB-tree with region-level pruning.

Semantics note: all z-order algorithms operate on *grid coordinates* — the
integer image of the data under :class:`~repro.zorder.encoding.ZGridCodec`.
The pipeline quantises the dataset once so that every algorithm (including
the BNL/SFS baselines) computes the skyline of the same, well-defined
point set; this mirrors the paper, where "each point is mapped to its
Z-address" before any computation.
"""

from repro.zorder.encoding import ZGridCodec, quantize_dataset
from repro.zorder.kernel import KernelStats, ZKernel
from repro.zorder.rzregion import RegionRelation, RZRegion
from repro.zorder.zbtree import ZBTree, build_zbtree
from repro.zorder.zmerge import zmerge, zmerge_all
from repro.zorder.zsearch import zsearch, zsearch_dataset

__all__ = [
    "KernelStats",
    "RZRegion",
    "RegionRelation",
    "ZBTree",
    "ZGridCodec",
    "ZKernel",
    "build_zbtree",
    "quantize_dataset",
    "zmerge",
    "zmerge_all",
    "zsearch",
    "zsearch_dataset",
]
