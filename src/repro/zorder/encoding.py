"""Z-address encoding: quantisation grid and bit interleaving.

A :class:`ZGridCodec` maps float points to integer grid coordinates and
interleaves the coordinate bits into a single Z-address.  At the API
boundary Z-addresses are arbitrary-precision Python ints, so any
dimensionality works (the paper's real datasets go up to 512 dimensions,
i.e. 8192-bit addresses at 16 bits/dimension); internally all batch
operations run on the vectorised :class:`~repro.zorder.kernel.ZKernel`,
which keeps addresses as a ``uint64`` array whenever
``dimensions * bits_per_dim <= 64`` (the *fast path*) and as a packed
big-endian byte matrix otherwise (the *wide path*).  Callers that can
consume native batches should use ``encode_grid_batch`` /
``decode_batch``; ``encode_grid`` / ``decode_many`` keep the legacy
Python-int contract.

Bit layout (most significant first): *level-major, dimension-minor*.  Level
0 holds the most significant bit of every dimension, dimension 0 first:

    z = b(0,0) b(0,1) ... b(0,d-1) b(1,0) ... b(B-1,d-1)

where ``b(l, k)`` is bit ``B-1-l`` of grid coordinate ``k``.

The fundamental property everything else relies on — and which the test
suite property-checks — is *monotonicity with respect to dominance*: if
``p`` weakly dominates ``q`` componentwise then ``z(p) <= z(q)``, so a scan
in increasing Z-address order never visits a dominator after a point it
dominates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ZOrderError
from repro.zorder.kernel import KernelStats, ZBatchLike, ZKernel

DEFAULT_BITS_PER_DIM = 16


class ZGridCodec:
    """Quantiser + Z-address codec for a fixed bounding box.

    Parameters
    ----------
    lows, highs:
        Per-dimension bounds of the data space.  Points outside the box are
        clipped onto it (needed because the rule is learned from a sample
        whose bounds may not cover the full data).
    bits_per_dim:
        Grid resolution; the grid has ``2**bits_per_dim`` cells per
        dimension.
    """

    def __init__(
        self,
        lows: Sequence[float],
        highs: Sequence[float],
        bits_per_dim: int = DEFAULT_BITS_PER_DIM,
    ) -> None:
        lo = np.asarray(lows, dtype=np.float64)
        hi = np.asarray(highs, dtype=np.float64)
        if lo.ndim != 1 or lo.shape != hi.shape:
            raise ZOrderError("lows and highs must be 1-D arrays of equal length")
        if lo.shape[0] == 0:
            raise ZOrderError("codec needs at least one dimension")
        if np.any(hi < lo):
            raise ZOrderError("highs must be >= lows in every dimension")
        if not (1 <= bits_per_dim <= 32):
            raise ZOrderError(
                f"bits_per_dim must be in [1, 32]; got {bits_per_dim}"
            )
        self._lo = lo
        span = hi - lo
        # Constant dimensions quantise everything to cell 0.
        span[span == 0.0] = 1.0
        self._span = span
        self.dimensions = int(lo.shape[0])
        self.bits_per_dim = int(bits_per_dim)
        self.cells_per_dim = 1 << self.bits_per_dim
        self.total_bits = self.dimensions * self.bits_per_dim
        self.max_zaddress = (1 << self.total_bits) - 1
        self._pad_bits = (-self.total_bits) % 8
        self.kernel = ZKernel(self.dimensions, self.bits_per_dim)
        self.fast_path = self.kernel.fast_path
        self.kernel_stats = KernelStats()

    @property
    def lows(self) -> np.ndarray:
        """Per-dimension lower bounds of the quantisation box."""
        return self._lo.copy()

    @property
    def spans(self) -> np.ndarray:
        """Per-dimension extents of the quantisation box."""
        return self._span.copy()

    @classmethod
    def for_dataset(
        cls, dataset: Dataset, bits_per_dim: int = DEFAULT_BITS_PER_DIM
    ) -> "ZGridCodec":
        """Build a codec covering the dataset's bounding box."""
        lo, hi = dataset.bounds()
        return cls(lo, hi, bits_per_dim=bits_per_dim)

    @classmethod
    def unit_cube(
        cls, dimensions: int, bits_per_dim: int = DEFAULT_BITS_PER_DIM
    ) -> "ZGridCodec":
        """Build a codec for the unit hypercube ``[0, 1]^d``."""
        return cls(
            np.zeros(dimensions), np.ones(dimensions), bits_per_dim=bits_per_dim
        )

    @classmethod
    def grid_identity(
        cls, dimensions: int, bits_per_dim: int = DEFAULT_BITS_PER_DIM
    ) -> "ZGridCodec":
        """Codec whose quantisation is the identity on integer grid points.

        Covers ``[0, 2**bits_per_dim]`` per dimension so integer values in
        ``[0, 2**bits_per_dim - 1]`` map to themselves.  Used after
        :func:`quantize_dataset` has snapped a dataset onto the grid.
        """
        hi = float(1 << bits_per_dim)
        return cls(
            np.zeros(dimensions),
            np.full(dimensions, hi),
            bits_per_dim=bits_per_dim,
        )

    # ------------------------------------------------------------------
    # Quantisation
    # ------------------------------------------------------------------
    def quantize(self, points: np.ndarray) -> np.ndarray:
        """Map float points onto integer grid coordinates.

        Uses floor quantisation into half-open cells, which preserves weak
        dominance: ``p <= q`` componentwise implies ``grid(p) <= grid(q)``.

        Returns an ``(n, d)`` uint32 array (also accepts a single point of
        shape ``(d,)``, returning shape ``(d,)``).
        """
        pts = np.asarray(points, dtype=np.float64)
        squeeze = pts.ndim == 1
        pts = np.atleast_2d(pts)
        if pts.shape[1] != self.dimensions:
            raise ZOrderError(
                f"expected {self.dimensions}-dimensional points; "
                f"got shape {pts.shape}"
            )
        scaled = (pts - self._lo) / self._span * self.cells_per_dim
        grid = np.floor(scaled).astype(np.int64)
        np.clip(grid, 0, self.cells_per_dim - 1, out=grid)
        grid = grid.astype(np.uint32)
        return grid[0] if squeeze else grid

    def dequantize(self, grid: np.ndarray) -> np.ndarray:
        """Map grid coordinates back to the lower corner of their cells."""
        g = np.asarray(grid, dtype=np.float64)
        return self._lo + g / self.cells_per_dim * self._span

    # ------------------------------------------------------------------
    # Z-address encoding
    # ------------------------------------------------------------------
    def encode_grid_batch(self, grid: np.ndarray) -> np.ndarray:
        """Interleave grid coordinates into a *native* Z-address batch.

        ``grid`` is an ``(n, d)`` integer array; returns the kernel's
        native form — a ``(n,)`` uint64 array on the fast path, a
        ``(n, W)`` packed-byte matrix on the wide path.  This is the
        hot-path entry point: no Python ints are materialised.
        """
        g = np.atleast_2d(np.asarray(grid))
        if g.shape[1] != self.dimensions:
            raise ZOrderError(
                f"expected {self.dimensions} grid columns; got {g.shape[1]}"
            )
        if g.size and (g.min() < 0 or g.max() >= self.cells_per_dim):
            raise ZOrderError(
                "grid coordinates out of range for "
                f"{self.bits_per_dim} bits per dimension"
            )
        name = "encode_fast" if self.fast_path else "encode_wide"
        self.kernel_stats.record(name, g.shape[0])
        return self.kernel.interleave(g)

    def encode_grid(self, grid: np.ndarray) -> List[int]:
        """Interleave grid coordinates into Z-addresses.

        ``grid`` is an ``(n, d)`` integer array; returns a list of ``n``
        Python ints (the legacy wire form; batch callers should prefer
        :meth:`encode_grid_batch`).
        """
        return self.kernel.to_int_list(self.encode_grid_batch(grid))

    def encode(self, points: np.ndarray) -> List[int]:
        """Quantise float points and return their Z-addresses."""
        return self.encode_grid(self.quantize(np.atleast_2d(points)))

    def encode_one(self, point: np.ndarray) -> int:
        """Z-address of a single float point."""
        return self.encode(np.atleast_2d(point))[0]

    def as_zbatch(self, zaddresses: ZBatchLike) -> np.ndarray:
        """Coerce Python ints or a native array into a native batch."""
        return self.kernel.as_batch(zaddresses)

    def _check_zbatch_range(self, zbatch: np.ndarray) -> None:
        """Reject batches whose addresses exceed ``total_bits``."""
        if zbatch.shape[0] == 0:
            return
        if self.fast_path:
            if self.total_bits < 64 and int(zbatch.max()) > self.max_zaddress:
                raise ZOrderError(
                    f"z-address out of range for {self.total_bits} bits"
                )
        elif self.kernel.pad_bits:
            # Padding bits occupy the top of byte 0 and must be zero.
            if int(zbatch[:, 0].max()) >> (8 - self.kernel.pad_bits):
                raise ZOrderError(
                    f"z-address out of range for {self.total_bits} bits"
                )

    def decode_batch(self, zbatch: np.ndarray) -> np.ndarray:
        """De-interleave a native Z-address batch to ``(n, d)`` uint32."""
        self._check_zbatch_range(zbatch)
        name = "decode_fast" if self.fast_path else "decode_wide"
        self.kernel_stats.record(name, zbatch.shape[0])
        return self.kernel.deinterleave(zbatch)

    def decode_to_grid(self, zaddress: int) -> np.ndarray:
        """De-interleave a Z-address back to grid coordinates ``(d,)``."""
        if not (0 <= zaddress <= self.max_zaddress):
            raise ZOrderError(
                f"z-address {zaddress} out of range for {self.total_bits} bits"
            )
        return self.decode_batch(self.kernel.from_ints([zaddress]))[0]

    def decode_many(self, zaddresses: ZBatchLike) -> np.ndarray:
        """Decode Z-addresses into an ``(n, d)`` grid array.

        Accepts either a native batch or any sequence of Python ints;
        both routes run the vectorised kernel de-interleave.
        """
        return self.decode_batch(self.kernel.as_batch(zaddresses))

    # ------------------------------------------------------------------
    # Prefix arithmetic (used by RZ-regions)
    # ------------------------------------------------------------------
    def common_prefix_length(self, alpha: int, beta: int) -> int:
        """Length in bits of the common prefix of two Z-addresses."""
        diff = alpha ^ beta
        return self.total_bits - diff.bit_length()

    def region_bounds(self, alpha: int, beta: int) -> Tuple[int, int]:
        """Min/max Z-address of the RZ-region covering ``[alpha, beta]``.

        Following Definition 2: keep the common prefix, fill the suffix
        with zeros (min point) or ones (max point).
        """
        if alpha > beta:
            alpha, beta = beta, alpha
        prefix_len = self.common_prefix_length(alpha, beta)
        suffix_len = self.total_bits - prefix_len
        if suffix_len == 0:
            return alpha, alpha
        mask = (1 << suffix_len) - 1
        minz = alpha & ~mask
        maxz = minz | mask
        return minz, maxz

    def __repr__(self) -> str:
        return (
            f"ZGridCodec(d={self.dimensions}, bits={self.bits_per_dim}, "
            f"total_bits={self.total_bits})"
        )


def quantize_dataset(
    dataset: Dataset,
    bits_per_dim: int = DEFAULT_BITS_PER_DIM,
    codec: Optional[ZGridCodec] = None,
) -> Tuple[Dataset, ZGridCodec]:
    """Snap a dataset onto the Z-grid so all algorithms agree exactly.

    Returns ``(snapped_dataset, codec)`` where the snapped dataset holds
    the *integer grid coordinates* as float64 values (exact up to 2**53).
    The pipeline quantises once up front — mirroring the paper, where
    every point is mapped to its Z-address before any skyline work — so
    block-based baselines (BNL/SFS) and z-order algorithms all compute the
    skyline of the same point set.
    """
    if codec is None:
        codec = ZGridCodec.for_dataset(dataset, bits_per_dim=bits_per_dim)
    grid = codec.quantize(dataset.points)
    snapped = Dataset(
        grid.astype(np.float64), ids=dataset.ids, name=f"{dataset.name}[grid]"
    )
    identity = ZGridCodec.grid_identity(
        dataset.dimensions, bits_per_dim=codec.bits_per_dim
    )
    return snapped, identity
