"""Z-merge (Algorithm 4): merge skyline-candidate ZB-trees.

``zmerge`` folds a source tree ``Z_src`` (new candidates) into a skyline
tree ``Z_sky`` (the accumulated global skyline) using a breadth-first
traversal of the source with three-way region pruning:

* source nodes whose region is *fully dominated* by some skyline point are
  discarded without looking at their points;
* source subtrees *incomparable* with the whole skyline tree are grafted
  wholesale (``Zdominate-branches`` in the paper) — no point-level work;
* everything else descends; at the leaves each surviving point is tested
  against the skyline tree and, when accepted, dominated skyline points
  are deleted (the paper's ``UDominate``).

Finally the tree is rebalanced (we rebuild from the surviving points,
which has the same asymptotics at our scales and is far simpler than
incremental rebalancing).  :func:`zmerge_all` *defers* that rebuild: each
fold composes a cheap unbalanced tree out of the surviving skyline root,
the grafted subtrees, and one block of accepted points — every composite
node carrying an explicitly-computed, conservatively-large RZ-region, so
all pruning tests stay sound — and the single full rebuild happens after
the last fold.

Contract: **both inputs must be dominance-free within themselves** (each
is the skyline of its own point set — exactly what the pipeline's phase-1
reducers emit).  Under that contract the result is the skyline of the
union of the two point sets, which the test suite verifies against the
oracle.  Use :func:`zmerge_all` to fold many candidate trees.

Ownership: the merge **consumes its inputs** by default.  The skyline
accumulator is mutated in place by UDominate deletions, and source
subtrees are grafted into the result wholesale, where later folds'
deletions can reach them.  After a consuming merge no input tree is safe
to reuse.  :func:`zmerge_all` accepts ``consume=False`` to fold private
clones instead, leaving every input intact — the mode long-lived trees
(e.g. the serving router's retained per-shard skyline trees) require.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.zorder.rzregion import RZRegion
from repro.zorder.zbtree import (
    OpCounter,
    ZBInternal,
    ZBLeaf,
    ZBNode,
    ZBTree,
    build_zbtree,
    rebuild,
)


def zmerge(
    sky: ZBTree, src: ZBTree, counter: Optional[OpCounter] = None
) -> ZBTree:
    """Merge candidate tree ``src`` into skyline tree ``sky``.

    Returns a new balanced ZB-tree containing the skyline of the union.
    ``sky`` is consumed (its nodes may be mutated by deletions); callers
    should use the returned tree.
    """
    counter = counter if counter is not None else OpCounter()
    if src.root is None:
        return sky
    if sky.root is None:
        return src
    grafts, accepted_points, accepted_ids, accepted_zs = _zmerge_scan(
        sky, src, counter
    )
    return _rebuild_with(sky, grafts, accepted_points, accepted_ids, accepted_zs)


def _zmerge_scan(
    sky: ZBTree, src: ZBTree, counter: OpCounter
) -> Tuple[List[ZBNode], List[np.ndarray], List[np.ndarray], List[int]]:
    """BFS of ``src`` against ``sky`` with three-way region pruning.

    Mutates ``sky`` (UDominate deletions) and returns the material a
    caller needs to assemble the merged tree: grafted subtrees plus the
    accepted leaf point blocks with their id blocks and Z-addresses.

    The BFS runs level-batched: each frontier's min-corner dominator
    probes go through one :meth:`ZBTree.dominated_mask_tree` walk and the
    Lemma 1 incomparability tests through one broadcast, instead of one
    tree walk per node.  Batching ahead of the leaf-acceptance deletions
    is exact, not just conservative: a skyline point that dominates a
    source region's min corner can never itself be deleted during the
    scan — its deleter would be an accepted *source* point transitively
    dominating the probed region's own points, contradicting the
    contract that the source tree is dominance-free.  Deletions only
    shrink the skyline, so batch-time "not dominated" verdicts are
    final too.
    """
    grafts: List[ZBNode] = []
    accepted_points: List[np.ndarray] = []
    accepted_ids: List[np.ndarray] = []
    accepted_zs: List[int] = []

    queue = deque([src.root])
    while queue:
        frontier = list(queue)
        queue.clear()
        counter.nodes_visited += len(frontier)
        if sky.root is None:
            # Every skyline point was deleted by earlier accepted points;
            # whatever remains of the source survives untouched.
            grafts.extend(frontier)
            continue
        minpts = np.stack(
            [node.region.minpt for node in frontier]
        ).astype(np.float64)
        maxpts = np.stack(
            [node.region.maxpt for node in frontier]
        ).astype(np.float64)
        counter.region_tests += len(frontier)
        dominated = sky.dominated_mask_tree(minpts, counter)
        # Lemma 1 case 2 against the whole skyline tree, batched: the
        # root region object is stable for the scan's duration (deletions
        # keep stale, conservatively-large regions), so one broadcast
        # against its corners covers the frontier.
        counter.region_tests += len(frontier)
        root_region = sky.root.region
        rmin = root_region.minpt.astype(np.float64)
        rmax = root_region.maxpt.astype(np.float64)
        sky_may_dominate = np.all(rmin <= maxpts, axis=1) & np.any(
            rmin < maxpts, axis=1
        )
        src_may_dominate = np.all(minpts <= rmax, axis=1) & np.any(
            minpts < rmax, axis=1
        )
        incomparable = ~sky_may_dominate & ~src_may_dominate
        for pos, node in enumerate(frontier):
            if sky.root is None:
                grafts.append(node)
                continue
            if dominated[pos]:
                # Some skyline point dominates the region's min corner,
                # hence every point in the region: discard the subtree.
                continue
            if incomparable[pos]:
                grafts.append(node)
                continue
            if node.is_leaf:
                # Batched UDominate: one tree walk decides the whole leaf
                # block, then one walk deletes the skyline points the
                # accepted block dominates.  Deferring the deletions is
                # safe because source points never dominate each other
                # (the source tree is dominance-free), so a stale skyline
                # point can never wrongly reject a later source point.
                leaf_dominated = sky.dominated_mask_tree(
                    node.points, counter  # type: ignore[union-attr]
                )
                if not leaf_dominated.all():
                    keep = ~leaf_dominated
                    accepted = node.points[keep]  # type: ignore[union-attr]
                    accepted_points.append(accepted)
                    accepted_ids.append(
                        node.ids[keep]  # type: ignore[union-attr]
                    )
                    accepted_zs.extend(
                        z
                        for z, k in zip(node.zaddresses, keep)  # type: ignore[union-attr]
                        if k
                    )
                    sky.remove_dominated_by_block(accepted, counter)
            else:
                queue.extend(node.children)  # type: ignore[union-attr]

    return grafts, accepted_points, accepted_ids, accepted_zs


def _incomparable_with_tree(sky: ZBTree, region: RZRegion) -> bool:
    """Lemma 1 case 2 between a source region and the whole skyline tree."""
    if sky.root is None:
        return True
    root_region = sky.root.region
    return root_region.incomparable_with(region)


def _collect_node(
    node: ZBNode,
) -> Tuple[List[int], List[np.ndarray], List[np.ndarray]]:
    """Gather (zaddresses, point blocks, id blocks) of a grafted subtree."""
    zs: List[int] = []
    blocks: List[np.ndarray] = []
    ids: List[np.ndarray] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if n.is_leaf:
            zs.extend(n.zaddresses)  # type: ignore[union-attr]
            blocks.append(n.points)  # type: ignore[union-attr]
            ids.append(n.ids)  # type: ignore[union-attr]
        else:
            stack.extend(n.children)  # type: ignore[union-attr]
    return zs, blocks, ids


def _rebuild_with(
    sky: ZBTree,
    grafts: List[ZBNode],
    accepted_points: List[np.ndarray],
    accepted_ids: List[np.ndarray],
    accepted_zs: List[int],
) -> ZBTree:
    """Combine surviving skyline points, grafts, and accepted leaves."""
    zs, points, ids = sky.collect()
    all_zs: List[int] = list(zs)
    blocks: List[np.ndarray] = [points] if points.shape[0] else []
    id_blocks: List[np.ndarray] = [ids] if ids.shape[0] else []
    for node in grafts:
        gz, gblocks, gids = _collect_node(node)
        all_zs.extend(gz)
        blocks.extend(gblocks)
        id_blocks.extend(gids)
    if accepted_points:
        all_zs.extend(accepted_zs)
        blocks.append(np.vstack(accepted_points))
        id_blocks.append(
            np.concatenate(accepted_ids).astype(np.int64, copy=False)
        )
    if not blocks:
        return ZBTree(sky.codec, None, sky.leaf_capacity, sky.fanout)
    merged_points = np.vstack(blocks)
    merged_ids = np.concatenate(id_blocks)
    return build_zbtree(
        sky.codec,
        merged_points,
        ids=merged_ids,
        zaddresses=all_zs,
        leaf_capacity=sky.leaf_capacity,
        fanout=sky.fanout,
    )


def _compose(
    sky: ZBTree,
    grafts: List[ZBNode],
    accepted_points: List[np.ndarray],
    accepted_ids: List[np.ndarray],
    accepted_zs: List[int],
) -> ZBTree:
    """Assemble a fold result *without* rebuilding.

    The composite root's children are the surviving skyline root, the
    grafted subtrees, and one (possibly oversized) leaf of accepted
    points.  Children are not in global Z-order and subtree heights may
    differ, so every composite node carries an explicitly computed
    RZ-region spanning its children — a conservative superset, which
    keeps all pruning tests (min-corner dominator probes, UDominate
    feasibility, Lemma 1 incomparability) sound.  The final
    :func:`repro.zorder.zbtree.rebuild` restores balance and Z-order.
    """
    children: List[ZBNode] = []
    if sky.root is not None:
        children.append(sky.root)
    children.extend(grafts)
    if accepted_points:
        zs = list(accepted_zs)
        children.append(
            ZBLeaf(
                zs,
                np.vstack(accepted_points),
                np.concatenate(accepted_ids).astype(np.int64, copy=False),
                sky.codec,
                region=RZRegion(sky.codec, min(zs), max(zs)),
            )
        )
    if not children:
        return ZBTree(sky.codec, None, sky.leaf_capacity, sky.fanout)
    if len(children) == 1:
        root: ZBNode = children[0]
    else:
        minz = min(child.region.minz for child in children)
        maxz = max(child.region.maxz for child in children)
        root = ZBInternal(
            children, sky.codec, region=RZRegion(sky.codec, minz, maxz)
        )
    return ZBTree(sky.codec, root, sky.leaf_capacity, sky.fanout)


#: folds tolerated between rebuilds in :func:`zmerge_all`.  Each fold
#: nests one more composite level with conservative regions, degrading
#: region pruning for every later fold; measured on the fig-9 d=6
#: workload, never rebuilding costs ~40% more merge wall-clock than
#: rebuilding every fold, while rebuilding every 4 folds matches it and
#: still skips three rebuilds out of four.
_REBUILD_INTERVAL = 4


def zmerge_all(
    trees: Iterable[ZBTree],
    counter: Optional[OpCounter] = None,
    consume: bool = True,
) -> ZBTree:
    """Fold many dominance-free candidate trees into one skyline tree.

    Each fold runs the Z-merge scan but composes a cheap unbalanced
    intermediate instead of rebuilding; the full rebuild is amortised —
    once every :data:`_REBUILD_INTERVAL` folds (bounding how degenerate
    the composite's region pruning can get) and once after the last
    fold.  Raises ``ValueError`` for an empty iterable.

    With the default ``consume=True`` the fold **destroys its inputs**:
    the first tree becomes the accumulator and is mutated by UDominate
    deletions, while later trees' subtrees are grafted into composites
    that still-later deletions can mutate.  Even a single-tree iterable
    is passed through by reference.  Feeding the same tree list twice —
    or feeding trees that anything else still reads, such as snapshot
    skyline trees — silently corrupts them.

    With ``consume=False`` every input is folded through a private clone
    (:func:`repro.zorder.zbtree.rebuild` — a collect + build reusing the
    stored Z-addresses, so no re-encoding) and the returned tree shares
    no nodes with any input: all inputs remain intact and reusable.
    """
    counter = counter if counter is not None else OpCounter()
    clone = (lambda tree: tree) if consume else rebuild
    iterator = iter(trees)
    try:
        result = clone(next(iterator))
    except StopIteration:
        raise ValueError("zmerge_all needs at least one tree") from None
    dirty = 0
    for tree in iterator:
        if tree.root is None:
            continue
        if result.root is None:
            result = clone(tree)
            continue
        scan = _zmerge_scan(result, clone(tree), counter)
        result = _compose(result, *scan)
        dirty += 1
        if dirty >= _REBUILD_INTERVAL:
            result = rebuild(result)
            dirty = 0
    if dirty:
        result = rebuild(result)
    return result
