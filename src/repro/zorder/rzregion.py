"""RZ-regions and the region-level dominance test of Lemma 1.

An RZ-region is the smallest Z-address-aligned box covering a contiguous
run of Z-addresses: keep the common bit prefix of the lowest and highest
address, fill the suffix with zeros for the min point and ones for the max
point (Definition 2 in the paper).

Lemma 1 gives a three-way relation between regions ``R_i`` and ``R_j``:

1. ``maxpt(R_i)`` dominates ``minpt(R_j)``  →  ``R_i`` *fully dominates*
   ``R_j`` (every point of ``R_i`` dominates every point of ``R_j``);
2. neither region's min point dominates the other's max point  →
   *incomparable* (no point of either region dominates any of the other);
3. otherwise ``R_i`` *partially dominates* ``R_j`` — some points of
   ``R_j`` may be dominated, so the algorithms must descend.

All comparisons are over integer grid coordinates, which makes the three
cases exact (no floating-point boundary ambiguity).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.point import dominates
from repro.zorder.encoding import ZGridCodec


class RegionRelation(enum.Enum):
    """Outcome of the Lemma 1 three-way region dominance test."""

    FULLY_DOMINATES = "fully_dominates"
    PARTIALLY_DOMINATES = "partially_dominates"
    INCOMPARABLE = "incomparable"


class RZRegion:
    """The RZ-region spanned by a Z-address interval ``[alpha, beta]``.

    Attributes
    ----------
    minz, maxz:
        Z-addresses of the region's min and max corners (prefix + zeros /
        prefix + ones).
    minpt, maxpt:
        Grid coordinates of those corners, shape ``(d,)`` int64 arrays.
    """

    __slots__ = ("minz", "maxz", "minpt", "maxpt")

    def __init__(self, codec: ZGridCodec, alpha: int, beta: int) -> None:
        minz, maxz = codec.region_bounds(alpha, beta)
        self.minz = minz
        self.maxz = maxz
        self.minpt = codec.decode_to_grid(minz).astype(np.int64)
        self.maxpt = codec.decode_to_grid(maxz).astype(np.int64)

    @classmethod
    def from_corners(
        cls, minz: int, maxz: int, minpt: np.ndarray, maxpt: np.ndarray
    ) -> "RZRegion":
        """Build a region directly from precomputed corners (no decode)."""
        region = cls.__new__(cls)
        region.minz = minz
        region.maxz = maxz
        region.minpt = np.asarray(minpt, dtype=np.int64)
        region.maxpt = np.asarray(maxpt, dtype=np.int64)
        return region

    # ------------------------------------------------------------------
    # Lemma 1
    # ------------------------------------------------------------------
    def relation_to(self, other: "RZRegion") -> RegionRelation:
        """Three-way Lemma 1 relation of ``self`` towards ``other``.

        ``FULLY_DOMINATES`` / ``PARTIALLY_DOMINATES`` describe what
        ``self`` does to ``other``; ``INCOMPARABLE`` is symmetric.
        """
        if dominates(self.maxpt, other.minpt):
            return RegionRelation.FULLY_DOMINATES
        if dominates(self.minpt, other.maxpt):
            return RegionRelation.PARTIALLY_DOMINATES
        return RegionRelation.INCOMPARABLE

    def fully_dominates(self, other: "RZRegion") -> bool:
        """True when every point of ``self`` dominates every point of ``other``."""
        return dominates(self.maxpt, other.minpt)

    def may_dominate(self, other: "RZRegion") -> bool:
        """True unless no point of ``self`` can dominate any point of ``other``."""
        return dominates(self.minpt, other.maxpt)

    def incomparable_with(self, other: "RZRegion") -> bool:
        """True when no dominance is possible in either direction."""
        return not self.may_dominate(other) and not other.may_dominate(self)

    # ------------------------------------------------------------------
    # Point-level helpers
    # ------------------------------------------------------------------
    def may_contain_dominator_of(self, point: np.ndarray) -> bool:
        """Can some point inside this region dominate ``point``?

        The best possible dominator in the region is ``minpt``; if even it
        fails, the region can be pruned when searching for dominators.
        """
        return dominates(self.minpt, point)

    def all_points_dominated_by(self, point: np.ndarray) -> bool:
        """Is every point of this region dominated by ``point``?

        True when ``point`` dominates ``minpt``: then for any region point
        ``b >= minpt`` we have ``point <= minpt <= b`` with strictness
        inherited from the strict dimension of ``point < minpt``.
        """
        return dominates(point, self.minpt)

    def may_contain_point_dominated_by(self, point: np.ndarray) -> bool:
        """Can some point of this region be dominated by ``point``?

        Requires ``point <= maxpt`` componentwise; otherwise ``point``
        exceeds the region somewhere and can dominate nothing inside it.
        """
        return bool(np.all(point <= self.maxpt))

    def contains_zaddress(self, zaddress: int) -> bool:
        """Z-interval membership test."""
        return self.minz <= zaddress <= self.maxz

    def contains_grid_point(self, point: np.ndarray) -> bool:
        """Box membership test on grid coordinates."""
        p = np.asarray(point)
        return bool(np.all(self.minpt <= p) and np.all(p <= self.maxpt))

    def volume(self) -> float:
        """Grid-space volume of the region box (cells, inclusive corners)."""
        side = (self.maxpt - self.minpt + 1).astype(np.float64)
        return float(np.prod(side))

    def __repr__(self) -> str:
        return f"RZRegion(minpt={self.minpt.tolist()}, maxpt={self.maxpt.tolist()})"


def dominance_volume(region_i: RZRegion, region_j: RZRegion) -> float:
    """Dominance volume between two partition RZ-regions (Definition 5).

    For each dimension ``k``, collect the four corner coordinates
    ``X_k = {minpt_i[k], maxpt_i[k], minpt_j[k], maxpt_j[k]}`` and take the
    gap between the largest and the second largest value; the dominance
    volume is the product of these per-dimension gaps.  It estimates how
    much of one region's box lies strictly beyond the other region — the
    part whose points stand to be dominated when the two partitions are
    co-located on one worker.

    The definition is commutative and ``V(R, R) = 0``, matching the
    properties the paper states.
    """
    stacked = np.stack(
        [region_i.minpt, region_i.maxpt, region_j.minpt, region_j.maxpt]
    ).astype(np.float64)
    ordered = np.sort(stacked, axis=0)
    gaps = ordered[-1] - ordered[-2]
    return float(np.prod(gaps))
