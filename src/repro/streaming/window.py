"""Time-based sliding-window skyline (the streaming companion of the
count-based :class:`~repro.maintenance.window.SlidingWindowSkyline`).

"Show me the best trade-offs among records from the last H time units."
Timestamps are **logical**: the caller supplies a non-decreasing clock
(record sequence numbers, event times from the stream, or published
registry versions) rather than the wall clock, so window expiration is
a deterministic function of the replayed stream — the property the WAL
recovery path relies on (expirations replay exactly; they are ordinary
delete batches, not a new record type).

Unlike the count-based window, points carry **caller-supplied ids** (the
same ids the serving registry knows them by), so windowed skylines and
their diffs speak the dataset's id space directly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.maintenance.maintainer import SkylineMaintainer
from repro.zorder.encoding import ZGridCodec


class TimeWindowSkyline:
    """Skyline over points whose timestamp is within ``horizon`` of the
    newest observed time.

    A point with timestamp ``t`` is inside the window while
    ``t > now - horizon`` (half-open: a point exactly ``horizon`` old
    has expired).  ``now`` only moves forward — it is the maximum
    timestamp ever observed, or whatever :meth:`advance_to` pushed it
    to.
    """

    def __init__(self, codec: ZGridCodec, horizon: float) -> None:
        if not (horizon > 0):
            raise DatasetError("horizon must be positive")
        self.codec = codec
        self.horizon = float(horizon)
        self._maintainer = SkylineMaintainer(codec)
        #: (timestamp, id) in arrival order; timestamps non-decreasing
        self._entries: Deque[Tuple[float, int]] = deque()
        self.now = float("-inf")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of points currently inside the window."""
        return len(self._entries)

    @property
    def skyline_size(self) -> int:
        return self._maintainer.skyline_size

    def skyline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current window skyline as ``(points, ids)``."""
        return self._maintainer.skyline()

    def window_ids(self) -> Tuple[int, ...]:
        """Ids currently inside the window, oldest first."""
        return tuple(pid for _, pid in self._entries)

    # ------------------------------------------------------------------
    def append(
        self, point: Sequence[float], point_id: int, timestamp: float
    ) -> List[int]:
        """Append one point; returns the ids this append expired."""
        return self.extend(
            np.asarray(point, dtype=np.float64)[None, :],
            [int(point_id)],
            [float(timestamp)],
        )

    def extend(
        self,
        points: np.ndarray,
        ids: Sequence[int],
        timestamps: Sequence[float],
    ) -> List[int]:
        """Append a batch in arrival order; one maintainer insert and
        (at most) one delete regardless of batch size.

        ``timestamps`` must be non-decreasing within the batch and not
        precede the window's current ``now`` — logical time only moves
        forward.  Points already expired relative to the batch's newest
        timestamp are never inserted (they would enter and immediately
        leave).  Returns the ids expired by this batch (previously
        inside the window), oldest first.
        """
        points = np.asarray(points, dtype=np.float64)
        ids_arr = np.asarray(ids, dtype=np.int64)
        ts = np.asarray(timestamps, dtype=np.float64)
        if points.ndim != 2 or ids_arr.shape != (points.shape[0],):
            raise DatasetError("need (n, d) points and matching ids")
        if ts.shape != (points.shape[0],):
            raise DatasetError("need one timestamp per point")
        if points.shape[0] == 0:
            return []
        if np.any(np.diff(ts) < 0):
            raise DatasetError("timestamps must be non-decreasing")
        if self._entries and ts[0] < self._entries[-1][0]:
            raise DatasetError(
                f"timestamp {ts[0]} precedes the newest window entry "
                f"({self._entries[-1][0]}); logical time moves forward"
            )
        new_now = max(self.now, float(ts[-1]))
        cutoff = new_now - self.horizon
        # Only batch rows still alive at the batch's end enter the
        # window (same final state as per-point processing).
        alive = ts > cutoff
        if alive.any():
            self._maintainer.insert_block(points[alive], ids_arr[alive])
            for pid, stamp in zip(ids_arr[alive], ts[alive]):
                self._entries.append((float(stamp), int(pid)))
        return self.advance_to(new_now)

    def advance_to(self, now: float) -> List[int]:
        """Move the clock forward and expire everything older than
        ``now - horizon`` in a single maintainer delete."""
        now = float(now)
        if now < self.now:
            raise DatasetError(
                f"cannot move the window clock backwards "
                f"({self.now} -> {now})"
            )
        self.now = now
        cutoff = now - self.horizon
        expired: List[int] = []
        while self._entries and self._entries[0][0] <= cutoff:
            expired.append(self._entries.popleft()[1])
        if expired:
            self._maintainer.delete(expired)
        return expired

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Testing hook: cross-check against the oracle."""
        self._maintainer.verify()

    def __repr__(self) -> str:
        return (
            f"TimeWindowSkyline(horizon={self.horizon}, now={self.now}, "
            f"size={self.size}, skyline={self.skyline_size})"
        )


class WindowSpec:
    """Declarative window choice for continuous queries.

    Construct via :meth:`count` (last-N records) or :meth:`time`
    (records from the last ``horizon`` logical time units).
    """

    __slots__ = ("kind", "count_size", "horizon")

    COUNT = "count"
    TIME = "time"

    def __init__(
        self,
        kind: str,
        count_size: int = 0,
        horizon: float = 0.0,
    ) -> None:
        if kind not in (self.COUNT, self.TIME):
            raise DatasetError(f"unknown window kind {kind!r}")
        if kind == self.COUNT and count_size <= 0:
            raise DatasetError("count window needs a positive size")
        if kind == self.TIME and not (horizon > 0):
            raise DatasetError("time window needs a positive horizon")
        self.kind = kind
        self.count_size = int(count_size)
        self.horizon = float(horizon)

    @classmethod
    def count(cls, size: int) -> "WindowSpec":
        """A count-based n-of-N window over the last ``size`` records."""
        return cls(cls.COUNT, count_size=size)

    @classmethod
    def time(cls, horizon: float) -> "WindowSpec":
        """A time-based window over the last ``horizon`` time units."""
        return cls(cls.TIME, horizon=horizon)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WindowSpec)
            and (self.kind, self.count_size, self.horizon)
            == (other.kind, other.count_size, other.horizon)
        )

    def __repr__(self) -> str:
        if self.kind == self.COUNT:
            return f"WindowSpec.count({self.count_size})"
        return f"WindowSpec.time({self.horizon})"
