"""Continuous skyline queries over live data: CDC ingest, sliding
windows, and push-based diff subscriptions.

The streaming layer turns the versioned serving registry into a live
feed.  Writes enter through an :class:`IngestFeed` (batched, admission-
controlled, window-expired via ordinary WAL delete batches); standing
:class:`ContinuousQuery` windows (count- or time-based) advance on
every published version; and the :class:`SubscriptionHub` pushes
:class:`SkylineDiff` notifications (entered/exited skyline ids per
version) to subscribers over bounded, coalescing queues — with
resumable cursors and a :class:`FullSync` fallback.

See ``docs/INTERNALS.md`` §17 for the model and invariants, and
``examples/streaming_subscriptions.py`` for an end-to-end tour.
"""

from repro.streaming.continuous import (
    STREAMING_GROUP,
    ContinuousQuery,
    ContinuousQueryManager,
)
from repro.streaming.diff import (
    FullSync,
    SkylineDiff,
    StreamEvent,
    replay,
)
from repro.streaming.feed import BLOCK, SHED, FeedConfig, IngestFeed
from repro.streaming.hub import Subscription, SubscriptionHub
from repro.streaming.window import TimeWindowSkyline, WindowSpec

__all__ = [
    "BLOCK",
    "SHED",
    "STREAMING_GROUP",
    "ContinuousQuery",
    "ContinuousQueryManager",
    "FeedConfig",
    "FullSync",
    "IngestFeed",
    "SkylineDiff",
    "StreamEvent",
    "Subscription",
    "SubscriptionHub",
    "TimeWindowSkyline",
    "WindowSpec",
    "replay",
]
