"""Continuous queries: standing windowed skylines advanced per publish.

A :class:`ContinuousQuery` is a *registered, standing* query: a sliding
window (count- or time-based, see
:class:`~repro.streaming.window.WindowSpec`) over a dataset's ingest
stream, whose skyline is incrementally maintained and re-diffed on
every published registry version.  The
:class:`ContinuousQueryManager` hooks into
:meth:`DatasetRegistry.add_publish_hook
<repro.serving.registry.DatasetRegistry.add_publish_hook>`: on each
publish it derives the newly arrived records (alive-set delta between
consecutive snapshots, in ascending id order — deterministic), feeds
them to every continuous query registered on that dataset, and records
the per-query skyline diff.

Determinism: advancement is a pure function of the published snapshot
sequence.  Time-based windows run on a **logical clock** — by default
the published version number — so replaying the same publish sequence
(e.g. WAL recovery re-driving a fresh manager) advances every query
identically.  Deletions from the dataset do not retract window entries:
a continuous query is a view over the *arrival stream*, not over the
current alive set.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.maintenance.window import SlidingWindowSkyline
from repro.observability.metrics import MetricsRegistry
from repro.serving.snapshot import Snapshot
from repro.streaming.diff import SkylineDiff
from repro.streaming.window import TimeWindowSkyline, WindowSpec

#: metrics group for all streaming-layer counters
STREAMING_GROUP = "streaming"


class ContinuousQuery:
    """One standing windowed-skyline query over a dataset's stream.

    Results are always in the dataset's external id space.  For
    count-based windows the internal
    :class:`~repro.maintenance.window.SlidingWindowSkyline` assigns its
    own arrival ids; the query keeps the internal→external mapping and
    translates at the boundary, so ``append`` semantics of the
    underlying window stay untouched.
    """

    def __init__(
        self,
        name: str,
        dataset: str,
        spec: WindowSpec,
        codec,
    ) -> None:
        self.name = name
        self.dataset = dataset
        self.spec = spec
        #: last registry version this query advanced to
        self.version = 0
        self._count_window: Optional[SlidingWindowSkyline] = None
        self._time_window: Optional[TimeWindowSkyline] = None
        if spec.kind == WindowSpec.COUNT:
            self._count_window = SlidingWindowSkyline(
                codec, spec.count_size
            )
            #: internal arrival id -> external dataset id
            self._id_map: Dict[int, int] = {}
        else:
            self._time_window = TimeWindowSkyline(codec, spec.horizon)
        self._last_sky: FrozenSet[int] = frozenset()
        #: recent per-advance diffs (newest last)
        self.diffs: Deque[SkylineDiff] = deque(maxlen=32)
        self.records_seen = 0

    # ------------------------------------------------------------------
    @property
    def window_size(self) -> int:
        if self._count_window is not None:
            return self._count_window.size
        assert self._time_window is not None
        return self._time_window.size

    def window_ids(self) -> Tuple[int, ...]:
        """External ids currently inside the window, oldest first."""
        if self._count_window is not None:
            return tuple(
                self._id_map[i] for i in self._count_window.window_ids()
            )
        assert self._time_window is not None
        return self._time_window.window_ids()

    def skyline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current windowed skyline as ``(points, external ids)``."""
        if self._count_window is not None:
            points, internal = self._count_window.skyline()
            external = np.asarray(
                [self._id_map[int(i)] for i in internal], dtype=np.int64
            )
            order = np.argsort(external, kind="stable")
            return points[order], external[order]
        assert self._time_window is not None
        points, ids = self._time_window.skyline()
        order = np.argsort(ids, kind="stable")
        return points[order], ids[order]

    def skyline_ids(self) -> FrozenSet[int]:
        _, ids = self.skyline()
        return frozenset(int(i) for i in ids)

    @property
    def last_diff(self) -> Optional[SkylineDiff]:
        return self.diffs[-1] if self.diffs else None

    # ------------------------------------------------------------------
    def advance(
        self,
        version: int,
        points: np.ndarray,
        ids: np.ndarray,
        timestamp: Optional[float] = None,
    ) -> Optional[SkylineDiff]:
        """Feed newly arrived records and advance to ``version``.

        ``timestamp`` is the logical time of this advance (defaults to
        ``float(version)``); time-based windows expire against it even
        when the batch is empty.  Returns the windowed skyline's diff
        for this advance, or None when the query was already at (or
        past) ``version``.
        """
        if version <= self.version:
            return None
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        clock = float(version) if timestamp is None else float(timestamp)
        if self._count_window is not None:
            if points.shape[0]:
                internal = self._count_window.extend(points)
                for raw, ext in zip(internal, ids):
                    self._id_map[int(raw)] = int(ext)
                survivors = set(self._count_window.window_ids())
                for raw in [
                    k for k in self._id_map if k not in survivors
                ]:
                    del self._id_map[raw]
        else:
            assert self._time_window is not None
            if points.shape[0]:
                self._time_window.extend(
                    points, ids, np.full(points.shape[0], clock)
                )
            elif self._time_window.now < clock:
                self._time_window.advance_to(clock)
        self.records_seen += int(points.shape[0])
        previous = self._last_sky
        current = self.skyline_ids()
        self._last_sky = current
        from_version = self.version
        self.version = version
        diff = SkylineDiff.between(
            dataset=f"{self.dataset}#{self.name}",
            from_version=from_version,
            from_sky_ids=np.asarray(sorted(previous), dtype=np.int64),
            to_version=version,
            to_sky_ids=np.asarray(sorted(current), dtype=np.int64),
        )
        self.diffs.append(diff)
        return diff

    def verify(self) -> None:
        """Testing hook: window-skyline oracle cross-check."""
        if self._count_window is not None:
            self._count_window.verify()
        else:
            assert self._time_window is not None
            self._time_window.verify()

    def __repr__(self) -> str:
        return (
            f"ContinuousQuery({self.name!r} on {self.dataset!r}, "
            f"{self.spec!r}, v{self.version}, "
            f"window={self.window_size}, sky={len(self._last_sky)})"
        )


class ContinuousQueryManager:
    """Registers continuous queries and advances them on every publish.

    Attach to a registry once (:meth:`attach`); register queries per
    dataset (:meth:`register`).  The publish hook derives each new
    version's arrivals as the alive-set delta against the previous
    snapshot — in ascending id order, so advancement is deterministic
    and identical under WAL replay of the same batch sequence.

    The hook runs under the dataset's writer lock (like every publish
    hook); its cost is O(delta + per-query window maintenance).  Keep
    heavyweight analysis out of continuous queries — they are standing
    *views*, not batch jobs.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        self._registry = None
        self._queries: Dict[str, List[ContinuousQuery]] = {}
        self._last: Dict[str, Snapshot] = {}

    # ------------------------------------------------------------------
    def attach(self, registry) -> "ContinuousQueryManager":
        """Hook this manager into ``registry`` publishes (idempotent)."""
        with self._lock:
            if self._registry is registry:
                return self
            if self._registry is not None:
                raise ConfigurationError(
                    "manager is already attached to a registry"
                )
            self._registry = registry
        registry.add_publish_hook(self.on_publish)
        return self

    def register(
        self, name: str, dataset: str, spec: WindowSpec
    ) -> ContinuousQuery:
        """Register a standing query; it starts from an empty window and
        fills from the next published version's arrivals."""
        with self._lock:
            if self._registry is None:
                raise ConfigurationError(
                    "attach() the manager to a registry before "
                    "registering queries"
                )
            for existing in self._queries.get(dataset, []):
                if existing.name == name:
                    raise ConfigurationError(
                        f"continuous query {name!r} already registered "
                        f"on {dataset!r}"
                    )
            snapshot = self._registry.snapshot(dataset)
            if dataset not in self._last:
                self._last[dataset] = snapshot
            query = ContinuousQuery(name, dataset, spec, snapshot.codec)
            query.version = snapshot.version
            self._queries.setdefault(dataset, []).append(query)
        if self.metrics is not None:
            self.metrics.inc(STREAMING_GROUP, "continuous_queries")
        return query

    def queries(self, dataset: str) -> List[ContinuousQuery]:
        with self._lock:
            return list(self._queries.get(dataset, []))

    # ------------------------------------------------------------------
    def on_publish(self, snapshot: Snapshot) -> None:
        """Publish hook: advance every query of ``snapshot.dataset``."""
        with self._lock:
            previous = self._last.get(snapshot.dataset)
            self._last[snapshot.dataset] = snapshot
            queries = self._queries.get(snapshot.dataset, [])
            if previous is None or not queries:
                return
            if snapshot.version <= previous.version:
                # Recovery republish of a version the queries already
                # advanced through: bit-identical by the WAL contract.
                return
            entered = np.setdiff1d(snapshot.ids, previous.ids)
            if entered.size:
                mask = np.isin(snapshot.ids, entered)
                arrived_ids = snapshot.ids[mask]
                arrived_points = snapshot.points[mask]
                order = np.argsort(arrived_ids, kind="stable")
                arrived_ids = arrived_ids[order]
                arrived_points = arrived_points[order]
            else:
                arrived_ids = np.empty(0, dtype=np.int64)
                arrived_points = np.empty((0, snapshot.dimensions))
            for query in queries:
                query.advance(
                    snapshot.version, arrived_points, arrived_ids
                )
        if self.metrics is not None:
            self.metrics.inc(STREAMING_GROUP, "cq_advances", len(queries))
            if entered.size:
                self.metrics.inc(
                    STREAMING_GROUP,
                    "cq_records",
                    int(entered.size) * len(queries),
                )
