"""Skyline diffs: the unit of push-based change notification.

A :class:`SkylineDiff` describes how the skyline id-set changed between
two published versions of a dataset — which ids *entered* the skyline
and which *exited*.  Diffs compose: two consecutive diffs coalesce into
one cumulative diff spanning both version ranges (the slow-subscriber
path), and applying a diff stream to a starting id-set reconstructs the
skyline at the stream's end exactly (the soundness oracle the streaming
tests assert with).

A :class:`FullSync` is the fallback when no contiguous diff chain
exists (a resume cursor older than the retention ring): it carries the
complete skyline id-set at one version and resets the subscriber's
state wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple, Union

import numpy as np

from repro.core.exceptions import DatasetError


def _id_array(ids: Iterable[int]) -> np.ndarray:
    """A sorted, write-protected int64 id array."""
    out = np.unique(np.asarray(list(ids) if not isinstance(
        ids, np.ndarray) else ids, dtype=np.int64))
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class SkylineDiff:
    """How the skyline changed from one published version to another.

    ``entered_ids`` / ``exited_ids`` are disjoint, sorted int64 arrays;
    ``coalesced_from`` counts how many raw per-publish diffs were
    merged into this one (1 = a raw diff).  ``published_at`` is the
    ``perf_counter`` stamp of the oldest publish this diff covers —
    what notification-latency measurement wants (a coalesced diff is as
    late as its oldest unacknowledged change).
    """

    dataset: str
    from_version: int
    to_version: int
    entered_ids: np.ndarray
    exited_ids: np.ndarray
    coalesced_from: int = 1
    published_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.to_version <= self.from_version:
            raise DatasetError(
                f"diff must advance the version: {self.from_version} -> "
                f"{self.to_version}"
            )
        if np.intersect1d(self.entered_ids, self.exited_ids).size:
            raise DatasetError("entered and exited ids must be disjoint")

    @classmethod
    def between(
        cls,
        dataset: str,
        from_version: int,
        from_sky_ids: np.ndarray,
        to_version: int,
        to_sky_ids: np.ndarray,
        published_at: float = 0.0,
    ) -> "SkylineDiff":
        """The raw diff between two skyline id-sets."""
        old = _id_array(from_sky_ids)
        new = _id_array(to_sky_ids)
        return cls(
            dataset=dataset,
            from_version=from_version,
            to_version=to_version,
            entered_ids=_id_array(np.setdiff1d(new, old)),
            exited_ids=_id_array(np.setdiff1d(old, new)),
            published_at=published_at,
        )

    @property
    def is_empty(self) -> bool:
        """Version advanced but the skyline id-set did not change."""
        return self.entered_ids.size == 0 and self.exited_ids.size == 0

    @property
    def size(self) -> int:
        return int(self.entered_ids.size + self.exited_ids.size)

    def apply(self, sky_ids: FrozenSet[int]) -> FrozenSet[int]:
        """The skyline id-set after this diff.

        Strict: every exited id must be present and no entered id may
        already be present — a mismatch means the diff is being applied
        to the wrong base version, which must fail loudly rather than
        silently corrupt the subscriber's view.
        """
        entered = {int(i) for i in self.entered_ids}
        exited = {int(i) for i in self.exited_ids}
        if not exited <= sky_ids:
            raise DatasetError(
                f"diff {self.from_version}->{self.to_version} exits ids "
                f"not in the base set: {sorted(exited - sky_ids)[:5]}"
            )
        clash = entered & sky_ids
        if clash:
            raise DatasetError(
                f"diff {self.from_version}->{self.to_version} enters ids "
                f"already in the base set: {sorted(clash)[:5]}"
            )
        return frozenset((sky_ids - exited) | entered)

    def coalesce(self, later: "SkylineDiff") -> "SkylineDiff":
        """One cumulative diff equivalent to ``self`` then ``later``.

        With ``E/X`` the entered/exited sets, the net change is

        * entered: ``(E1 \\ X2) | (E2 \\ X1)`` — an id that entered and
          then exited (or vice versa) nets out to nothing;
        * exited: ``(X1 \\ E2) | (X2 \\ E1)``.

        The stamp is the *older* of the two (a coalesced notification
        is as stale as its oldest change); ``coalesced_from`` adds up.
        """
        if later.dataset != self.dataset:
            raise DatasetError(
                f"cannot coalesce diffs of {self.dataset!r} and "
                f"{later.dataset!r}"
            )
        if later.from_version != self.to_version:
            raise DatasetError(
                f"diffs are not consecutive: ...{self.to_version} then "
                f"{later.from_version}..."
            )
        entered = np.union1d(
            np.setdiff1d(self.entered_ids, later.exited_ids),
            np.setdiff1d(later.entered_ids, self.exited_ids),
        )
        exited = np.union1d(
            np.setdiff1d(self.exited_ids, later.entered_ids),
            np.setdiff1d(later.exited_ids, self.entered_ids),
        )
        stamps = [
            s for s in (self.published_at, later.published_at) if s > 0.0
        ]
        return SkylineDiff(
            dataset=self.dataset,
            from_version=self.from_version,
            to_version=later.to_version,
            entered_ids=_id_array(entered),
            exited_ids=_id_array(exited),
            coalesced_from=self.coalesced_from + later.coalesced_from,
            published_at=min(stamps) if stamps else 0.0,
        )

    def __repr__(self) -> str:
        return (
            f"SkylineDiff({self.dataset!r} v{self.from_version}->"
            f"v{self.to_version}, +{self.entered_ids.size} "
            f"-{self.exited_ids.size}"
            + (f", coalesced={self.coalesced_from}"
               if self.coalesced_from > 1 else "")
            + ")"
        )


@dataclass(frozen=True)
class FullSync:
    """A full-state resync: the complete skyline id-set at ``version``.

    Sent when a subscriber's cursor cannot be served by diff replay
    (older than the diff retention ring) and when a dataset's version
    history restarts.  Applying it discards the subscriber's state and
    adopts ``sky_ids`` wholesale.
    """

    dataset: str
    version: int
    sky_ids: np.ndarray
    published_at: float = field(default=0.0, compare=False)

    @property
    def to_version(self) -> int:
        """Uniform cursor accessor shared with :class:`SkylineDiff`."""
        return self.version

    def apply(self, sky_ids: FrozenSet[int]) -> FrozenSet[int]:
        return frozenset(int(i) for i in self.sky_ids)

    def __repr__(self) -> str:
        return (
            f"FullSync({self.dataset!r}@v{self.version}, "
            f"|skyline|={self.sky_ids.size})"
        )


#: what a subscriber receives
StreamEvent = Union[SkylineDiff, FullSync]


def replay(
    events: Iterable[StreamEvent],
    initial: FrozenSet[int] = frozenset(),
    initial_version: int = 0,
) -> Tuple[FrozenSet[int], int]:
    """Fold a diff stream over a starting id-set.

    Returns ``(final id-set, final version)``.  Checks version
    contiguity between consecutive diffs (a :class:`FullSync` may land
    anywhere and resets the cursor), so a broken stream fails loudly.
    """
    sky = frozenset(initial)
    version = initial_version
    for event in events:
        if isinstance(event, SkylineDiff):
            if event.from_version != version:
                raise DatasetError(
                    f"diff stream gap: at v{version} but next diff "
                    f"starts at v{event.from_version}"
                )
            sky = event.apply(sky)
        else:
            sky = event.apply(sky)
        version = event.to_version
    return sky, version
