"""Push-based skyline change notification: the SubscriptionHub.

The hub is a registry publish hook.  On every published version it
computes the :class:`~repro.streaming.diff.SkylineDiff` against the
previous version's skyline id-set and offers it, non-blocking, to every
subscriber of that dataset.  Each :class:`Subscription` owns a bounded
queue; when a subscriber falls behind, new diffs **coalesce** into the
queue tail (one cumulative delta) instead of growing the queue or
blocking the writer — the consumer sees fewer, bigger diffs, never a
gap and never a dropped change.

Resumable cursors: :meth:`SubscriptionHub.subscribe_from` replays the
retained diff ring when the requested version is still covered, and
falls back to a single :class:`~repro.streaming.diff.FullSync` (the
complete current skyline id-set) when it is not.

Lock discipline (load-bearing): the publish hook runs under the
dataset's writer lock and takes the hub lock — so code under the hub
lock must never wait on a writer.  ``registry.snapshot()`` is safe (an
attribute read guarded only by the registry's name-table lock, which is
never held across a writer lock); ``registry.snapshot_at()`` is *not*
(it takes the writer lock) and must never be called under the hub lock.
Per-subscription offers are non-blocking by construction, so a stalled
subscriber can never stall a mutation (regression-tested).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError, DatasetError
from repro.observability.metrics import MetricsRegistry
from repro.serving.snapshot import Snapshot
from repro.streaming.continuous import STREAMING_GROUP
from repro.streaming.diff import FullSync, SkylineDiff, StreamEvent


def _ids_array(ids: FrozenSet[int]) -> np.ndarray:
    return np.asarray(sorted(ids), dtype=np.int64)


class Subscription:
    """One subscriber's bounded, coalescing event queue.

    Producers call :meth:`_offer` (non-blocking, hub-side); the
    consumer calls :meth:`get` / iterates.  ``start_version`` /
    ``start_sky_ids`` are the baseline the event stream applies to —
    a consumer that folds every received event over the baseline always
    holds the exact skyline id-set of the event's ``to_version``.
    """

    def __init__(
        self,
        hub: "SubscriptionHub",
        dataset: str,
        max_pending: int,
        start_version: int,
        start_sky_ids: FrozenSet[int],
    ) -> None:
        if max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        self.hub = hub
        self.dataset = dataset
        self.max_pending = int(max_pending)
        self.start_version = int(start_version)
        self.start_sky_ids = frozenset(start_sky_ids)
        self._cond = threading.Condition()
        self._pending: Deque[StreamEvent] = deque()
        self._closed = False
        self.received = 0
        self.delivered = 0
        self.coalesced = 0
        self.full_syncs = 0

    # ------------------------------------------------------------------
    # producer side (hub only)
    # ------------------------------------------------------------------
    def _offer(self, event: StreamEvent) -> None:
        """Enqueue without ever blocking: over capacity, the event is
        folded into the queue tail (cumulative delta semantics)."""
        with self._cond:
            if self._closed:
                return
            self.received += 1
            if isinstance(event, FullSync):
                # A resync supersedes everything still queued.
                self._pending.clear()
                self._pending.append(event)
                self.full_syncs += 1
            elif len(self._pending) >= self.max_pending:
                tail = self._pending[-1]
                if isinstance(tail, FullSync):
                    self._pending[-1] = FullSync(
                        dataset=tail.dataset,
                        version=event.to_version,
                        sky_ids=_ids_array(
                            event.apply(
                                frozenset(int(i) for i in tail.sky_ids)
                            )
                        ),
                        published_at=tail.published_at
                        or event.published_at,
                    )
                else:
                    self._pending[-1] = tail.coalesce(event)
                self.coalesced += 1
                if self.hub.metrics is not None:
                    self.hub.metrics.inc(
                        STREAMING_GROUP, "diffs_coalesced"
                    )
            else:
                self._pending.append(event)
            self._cond.notify_all()

    def _close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)

    def get(self, timeout: Optional[float] = None) -> Optional[StreamEvent]:
        """Next event, blocking up to ``timeout``; None on timeout or
        when the subscription is closed and fully drained."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._pending or self._closed, timeout
            ):
                return None
            if not self._pending:
                return None  # closed and drained
            event = self._pending.popleft()
            self.delivered += 1
        if self.hub.metrics is not None:
            self.hub.metrics.inc(STREAMING_GROUP, "events_delivered")
        return event

    def events(
        self, timeout: Optional[float] = None
    ) -> Iterator[StreamEvent]:
        """Iterate events until closed-and-drained (or a ``timeout``
        with nothing pending, when one is given)."""
        while True:
            event = self.get(timeout)
            if event is None:
                return
            yield event

    def __iter__(self) -> Iterator[StreamEvent]:
        return self.events()

    def close(self) -> None:
        self.hub.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        with self._cond:
            return {
                "dataset": self.dataset,
                "pending": len(self._pending),
                "received": self.received,
                "delivered": self.delivered,
                "coalesced": self.coalesced,
                "full_syncs": self.full_syncs,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        return (
            f"Subscription({self.dataset!r}, pending={self.pending}, "
            f"delivered={self.delivered}, coalesced={self.coalesced})"
        )


class SubscriptionHub:
    """Thread-safe pub/sub of skyline diffs over bounded queues.

    Keeps, per dataset: the last published ``(version, skyline id-set)``
    baseline (its *own* copy — never re-reads registry state under a
    writer lock) and a bounded ring of recent diffs for cursor resume.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        retention: int = 64,
        default_max_pending: int = 256,
    ) -> None:
        if retention < 1:
            raise ConfigurationError("retention must be >= 1")
        self.metrics = metrics
        self.retention = int(retention)
        self.default_max_pending = int(default_max_pending)
        self._lock = threading.Lock()
        self._registry = None
        self._last: Dict[str, Tuple[int, FrozenSet[int]]] = {}
        self._recent: Dict[str, Deque[SkylineDiff]] = {}
        self._subs: Dict[str, List[Subscription]] = {}
        self.diffs_published = 0
        self.full_syncs = 0

    # ------------------------------------------------------------------
    def attach(self, registry) -> "SubscriptionHub":
        """Hook this hub into ``registry`` publishes (idempotent)."""
        with self._lock:
            if self._registry is registry:
                return self
            if self._registry is not None:
                raise ConfigurationError(
                    "hub is already attached to a registry"
                )
            self._registry = registry
        registry.add_publish_hook(self.on_publish)
        return self

    def _seed_locked(self, dataset: str) -> Tuple[int, FrozenSet[int]]:
        """Baseline for ``dataset``, reading the registry on first use.

        Caller holds the hub lock; ``registry.snapshot`` is an atomic
        attribute read (no writer lock), so this cannot deadlock
        against the publish hook.
        """
        last = self._last.get(dataset)
        if last is None:
            if self._registry is None:
                raise ConfigurationError(
                    "attach() the hub to a registry before subscribing"
                )
            snapshot = self._registry.snapshot(dataset)
            last = (
                snapshot.version,
                frozenset(int(i) for i in snapshot.sky_ids),
            )
            self._last[dataset] = last
            self._recent.setdefault(
                dataset, deque(maxlen=self.retention)
            )
        return last

    # ------------------------------------------------------------------
    # publish hook (runs under the dataset's writer lock — keep O(diff))
    # ------------------------------------------------------------------
    def on_publish(self, snapshot: Snapshot) -> None:
        now = time.perf_counter()
        dataset = snapshot.dataset
        new_ids = frozenset(int(i) for i in snapshot.sky_ids)
        event: Optional[StreamEvent] = None
        subs: List[Subscription] = []
        with self._lock:
            ring = self._recent.setdefault(
                dataset, deque(maxlen=self.retention)
            )
            last = self._last.get(dataset)
            self._last[dataset] = (snapshot.version, new_ids)
            if last is None:
                return
            last_version, last_sky = last
            if snapshot.version == last_version:
                # Recovery republish of the version we already diffed:
                # bit-identical by the WAL contract — nothing to push.
                return
            subs = self._subs.get(dataset, [])
            if snapshot.version < last_version:
                # Version history restarted (e.g. the dataset was
                # re-registered from scratch): diffs cannot describe
                # this — resync everyone and drop the stale ring.
                ring.clear()
                event = FullSync(
                    dataset=dataset,
                    version=snapshot.version,
                    sky_ids=_ids_array(new_ids),
                    published_at=now,
                )
                self.full_syncs += len(subs)
            else:
                event = SkylineDiff.between(
                    dataset=dataset,
                    from_version=last_version,
                    from_sky_ids=_ids_array(last_sky),
                    to_version=snapshot.version,
                    to_sky_ids=_ids_array(new_ids),
                    published_at=now,
                )
                ring.append(event)
                self.diffs_published += 1
            for sub in subs:
                sub._offer(event)
        if self.metrics is not None and event is not None:
            if isinstance(event, SkylineDiff):
                self.metrics.inc(STREAMING_GROUP, "diffs_published")
            else:
                self.metrics.inc(
                    STREAMING_GROUP, "full_syncs", max(1, len(subs))
                )

    # ------------------------------------------------------------------
    # subscriber management
    # ------------------------------------------------------------------
    def subscribe(
        self, dataset: str, max_pending: Optional[int] = None
    ) -> Subscription:
        """Subscribe from the current version: the subscription's
        baseline is the latest published skyline; every later publish
        arrives as a diff."""
        with self._lock:
            version, sky = self._seed_locked(dataset)
            sub = Subscription(
                self,
                dataset,
                max_pending or self.default_max_pending,
                start_version=version,
                start_sky_ids=sky,
            )
            self._subs.setdefault(dataset, []).append(sub)
        if self.metrics is not None:
            self.metrics.inc(STREAMING_GROUP, "subscribers")
        return sub

    def subscribe_from(
        self,
        dataset: str,
        version: int,
        max_pending: Optional[int] = None,
    ) -> Subscription:
        """Resume a cursor: replay retained diffs from ``version`` when
        the ring still covers it, else start with one full-state sync.

        The caller claims to hold the skyline id-set of ``version``;
        the subscription's baseline reflects that claim (its
        ``start_sky_ids`` is only populated on the full-sync path,
        where the claim is discarded anyway).
        """
        version = int(version)
        full_sync = False
        with self._lock:
            current_version, current_sky = self._seed_locked(dataset)
            if version > current_version:
                raise DatasetError(
                    f"cannot resume {dataset!r} from future version "
                    f"{version} (current is {current_version})"
                )
            sub = Subscription(
                self,
                dataset,
                max_pending or self.default_max_pending,
                start_version=version,
                start_sky_ids=frozenset(),
            )
            if version != current_version:
                chain = self._chain_locked(dataset, version)
                if chain is None:
                    full_sync = True
                    sub._offer(
                        FullSync(
                            dataset=dataset,
                            version=current_version,
                            sky_ids=_ids_array(current_sky),
                            published_at=time.perf_counter(),
                        )
                    )
                    self.full_syncs += 1
                else:
                    for diff in chain:
                        sub._offer(diff)
            self._subs.setdefault(dataset, []).append(sub)
        if self.metrics is not None:
            self.metrics.inc(STREAMING_GROUP, "subscribers")
            if full_sync:
                self.metrics.inc(STREAMING_GROUP, "full_syncs")
        return sub

    def _chain_locked(
        self, dataset: str, version: int
    ) -> Optional[List[SkylineDiff]]:
        """The retained diff chain starting exactly at ``version``, or
        None when retention no longer covers it.  Ring entries are
        consecutive by construction, so an exact ``from_version`` match
        is sufficient."""
        ring = self._recent.get(dataset)
        if not ring:
            return None
        for i, diff in enumerate(ring):
            if diff.from_version == version:
                return list(ring)[i:]
        return None

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            subs = self._subs.get(sub.dataset, [])
            if sub in subs:
                subs.remove(sub)
        sub._close()

    # ------------------------------------------------------------------
    def subscriber_count(self, dataset: Optional[str] = None) -> int:
        with self._lock:
            if dataset is not None:
                return len(self._subs.get(dataset, []))
            return sum(len(subs) for subs in self._subs.values())

    def retained_range(self, dataset: str) -> Optional[Tuple[int, int]]:
        """(oldest resumable from-version, latest to-version) or None."""
        with self._lock:
            ring = self._recent.get(dataset)
            if not ring:
                return None
            return ring[0].from_version, ring[-1].to_version

    def stats(self) -> dict:
        with self._lock:
            return {
                "datasets": sorted(self._last),
                "subscribers": sum(
                    len(subs) for subs in self._subs.values()
                ),
                "diffs_published": self.diffs_published,
                "full_syncs": self.full_syncs,
                "retention": self.retention,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"SubscriptionHub(datasets={len(stats['datasets'])}, "
            f"subscribers={stats['subscribers']}, "
            f"diffs={stats['diffs_published']})"
        )
