"""CDC-style ingest: append-stream records batched into registry
mutations, backpressured through the admission controller.

An :class:`IngestFeed` is the write side of the streaming layer: callers
append individual records; the feed buffers them and flushes fixed-size
batches as ordinary ``registry.insert`` mutations (one published
version per batch — the same WAL records, recovery semantics, and
publish hooks as any other writer).  When a window is configured, the
feed also retires records that fell out of the window with ordinary
``registry.delete`` batches — window expiration is **deterministic
replay** (a delete batch in the WAL), never a new record type.

Backpressure goes through the shared
:class:`~repro.serving.admission.AdmissionController`:

* ``on_overload="shed"`` — the flush raises
  :class:`~repro.core.exceptions.OverloadedError` and the buffered
  records stay pending (counted in ``streaming.feed_batches_shed``);
  nothing is ever dropped silently.
* ``on_overload="block"`` — the flush sleeps out the controller's
  retry-after hint and re-tries, up to ``block_max_seconds``, then
  raises.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError, OverloadedError
from repro.observability.metrics import MetricsRegistry
from repro.serving.admission import MUTATE, AdmissionController
from repro.streaming.continuous import STREAMING_GROUP
from repro.streaming.window import WindowSpec

SHED = "shed"
BLOCK = "block"


class FeedConfig:
    """Tuning for one :class:`IngestFeed`."""

    __slots__ = ("batch_size", "on_overload", "block_max_seconds")

    def __init__(
        self,
        batch_size: int = 64,
        on_overload: str = SHED,
        block_max_seconds: float = 5.0,
    ) -> None:
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if on_overload not in (SHED, BLOCK):
            raise ConfigurationError(
                f"on_overload must be {SHED!r} or {BLOCK!r}, "
                f"got {on_overload!r}"
            )
        if not (block_max_seconds > 0):
            raise ConfigurationError("block_max_seconds must be positive")
        self.batch_size = int(batch_size)
        self.on_overload = on_overload
        self.block_max_seconds = float(block_max_seconds)


class IngestFeed:
    """Buffers appended records and flushes them as mutation batches.

    Ids are auto-assigned past the dataset's current maximum (or
    caller-supplied); timestamps are a logical clock that defaults to
    the record's arrival sequence number.  With a ``window``, each
    flush also expires out-of-window records it previously ingested —
    one delete batch per flush, issued *after* the insert so a replayed
    WAL reproduces the exact publish sequence.

    Not thread-safe by design: one feed is one logical CDC stream.
    Run several feeds (on several datasets or shards) for parallelism.
    """

    def __init__(
        self,
        registry,
        dataset: str,
        admission: Optional[AdmissionController] = None,
        config: Optional[FeedConfig] = None,
        window: Optional[WindowSpec] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.registry = registry
        self.dataset = dataset
        self.admission = admission
        self.config = config or FeedConfig()
        self.window = window
        self.metrics = metrics
        snapshot = registry.snapshot(dataset)
        self._dimensions = snapshot.dimensions
        self._next_id = int(snapshot.ids.max()) + 1 if snapshot.ids.size else 0
        self._clock = 0.0
        #: records waiting for the next flush: (point, id, timestamp)
        self._pending: List[Tuple[np.ndarray, int, float]] = []
        #: (timestamp, id) of feed-ingested records still in the window
        self._window_entries: List[Tuple[float, int]] = []
        self.batches_flushed = 0
        self.records_flushed = 0
        self.records_expired = 0
        self.batches_shed = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Records buffered but not yet flushed."""
        return len(self._pending)

    @property
    def window_population(self) -> int:
        """Feed-ingested records currently inside the window."""
        return len(self._window_entries)

    def append(
        self,
        point: Sequence[float],
        point_id: Optional[int] = None,
        timestamp: Optional[float] = None,
    ) -> int:
        """Buffer one record; flushes when the batch fills.  Returns
        the record's id."""
        row = np.asarray(point, dtype=np.float64)
        if row.shape != (self._dimensions,):
            raise ConfigurationError(
                f"expected a {self._dimensions}-d point, "
                f"got shape {row.shape}"
            )
        if point_id is None:
            point_id = self._next_id
            self._next_id += 1
        else:
            point_id = int(point_id)
            self._next_id = max(self._next_id, point_id + 1)
        if timestamp is None:
            self._clock += 1.0
            timestamp = self._clock
        else:
            timestamp = float(timestamp)
            if timestamp < self._clock:
                raise ConfigurationError(
                    f"timestamp {timestamp} precedes the feed clock "
                    f"({self._clock}); logical time moves forward"
                )
            self._clock = timestamp
        self._pending.append((row, point_id, timestamp))
        if len(self._pending) >= self.config.batch_size:
            self.flush()
        return point_id

    def extend(
        self, points: np.ndarray, timestamps: Optional[Sequence[float]] = None
    ) -> List[int]:
        """Buffer a batch of records; returns their assigned ids."""
        points = np.asarray(points, dtype=np.float64)
        return [
            self.append(
                row, timestamp=None if timestamps is None else timestamps[i]
            )
            for i, row in enumerate(points)
        ]

    # ------------------------------------------------------------------
    def flush(self):
        """Publish all buffered records as one insert batch (plus one
        delete batch when the window expired records).

        Returns the insert's ``PublishResult``, or None when nothing
        was pending.  On shed, the buffer survives intact — re-call
        ``flush()`` (or keep appending) to retry.
        """
        if not self._pending:
            return None
        ticket = self._admit()
        try:
            result = self._flush_admitted()
        except Exception:
            if ticket is not None:
                self.admission.finished(ticket, ok=False)
            raise
        if ticket is not None:
            self.admission.finished(ticket)
        return result

    def _admit(self):
        """One admission ticket per flush; sheds or blocks per config."""
        if self.admission is None:
            return None
        waited = 0.0
        while True:
            try:
                ticket = self.admission.admit(MUTATE)
            except OverloadedError as exc:
                if (
                    self.config.on_overload == SHED
                    or waited >= self.config.block_max_seconds
                ):
                    self.batches_shed += 1
                    if self.metrics is not None:
                        self.metrics.inc(
                            STREAMING_GROUP, "feed_batches_shed"
                        )
                    raise
                pause = min(
                    max(exc.retry_after_seconds or 0.0, 0.005),
                    self.config.block_max_seconds - waited,
                )
                time.sleep(pause)
                waited += pause
                continue
            self.admission.started(ticket)
            return ticket

    def _flush_admitted(self):
        batch = self._pending
        points = np.stack([row for row, _, _ in batch])
        ids = [pid for _, pid, _ in batch]
        result = self.registry.insert(self.dataset, points, ids)
        # Success: the batch is durable (WAL) and published.
        self._pending = []
        self.batches_flushed += 1
        self.records_flushed += len(batch)
        if self.metrics is not None:
            self.metrics.inc(STREAMING_GROUP, "feed_batches")
            self.metrics.inc(STREAMING_GROUP, "feed_records", len(batch))
        if self.window is not None:
            self._window_entries.extend(
                (stamp, pid) for _, pid, stamp in batch
            )
            expired = self._expired_ids()
            if expired:
                result = self.registry.delete(self.dataset, expired)
                self.records_expired += len(expired)
                if self.metrics is not None:
                    self.metrics.inc(
                        STREAMING_GROUP, "feed_expirations", len(expired)
                    )
        return result

    def _expired_ids(self) -> List[int]:
        """Pop and return window-expired ids (oldest first)."""
        entries = self._window_entries
        if self.window.kind == WindowSpec.COUNT:
            overflow = len(entries) - self.window.count_size
            if overflow <= 0:
                return []
            expired = [pid for _, pid in entries[:overflow]]
            self._window_entries = entries[overflow:]
            return expired
        cutoff = self._clock - self.window.horizon
        keep = 0
        while keep < len(entries) and entries[keep][0] <= cutoff:
            keep += 1
        expired = [pid for _, pid in entries[:keep]]
        self._window_entries = entries[keep:]
        return expired

    def stats(self) -> dict:
        return {
            "dataset": self.dataset,
            "pending": self.pending,
            "batches_flushed": self.batches_flushed,
            "records_flushed": self.records_flushed,
            "records_expired": self.records_expired,
            "batches_shed": self.batches_shed,
            "window_population": self.window_population,
        }

    def __repr__(self) -> str:
        return (
            f"IngestFeed({self.dataset!r}, pending={self.pending}, "
            f"flushed={self.records_flushed}, shed={self.batches_shed})"
        )
