"""Phase 0: preprocessing on the master node (§5.1).

Collect a reservoir sample, compute its skyline, learn the partition rule
(with grouping for ZHG/ZDG), and build the SZB-tree — the ZB-tree over
the sample skyline that the phase-1 mappers use to prefilter obviously
dominated input points.  Everything the mappers need is then published to
the distributed cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.algorithms.zs import zs_skyline
from repro.core.dataset import Dataset
from repro.mapreduce.cache import DistributedCache
from repro.partitioning.base import PartitionRule, get_partitioner
from repro.partitioning.sampling import reservoir_sample
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import ZBTree, build_zbtree

#: distributed-cache keys (Algorithm 3 loads these in every mapper)
CACHE_RULE = "partition_rule"
CACHE_CODEC = "codec"
CACHE_SAMPLE_SKYLINE = "sample_skyline"
CACHE_SZB_TREE = "szb_tree"


@dataclass
class PreprocessResult:
    """Everything phase 0 learned, plus its cost."""

    rule: PartitionRule
    codec: ZGridCodec
    sample: Dataset
    sample_skyline: np.ndarray
    szb_tree: ZBTree
    seconds: float
    details: Dict[str, object] = field(default_factory=dict)

    def publish(self, cache: DistributedCache) -> None:
        """Ship the learned artefacts to the mappers.

        Idempotent against a live runtime: when preprocessing re-runs
        in the same process (e.g. a supervised resume reusing its
        runtime), re-publishing the identical payloads is a no-op; only
        a *conflicting* payload — a different rule or sample skyline
        under the same key — raises (see
        :meth:`~repro.mapreduce.cache.DistributedCache.put`).
        """
        cache.put(CACHE_RULE, self.rule)
        cache.put(CACHE_CODEC, self.codec)
        cache.put(CACHE_SAMPLE_SKYLINE, self.sample_skyline)
        cache.put(CACHE_SZB_TREE, self.szb_tree)


def preprocess(
    dataset: Dataset,
    codec: ZGridCodec,
    partitioner_name: str,
    num_groups: int,
    sample_ratio: float = 0.02,
    expansion: int = 4,
    seed: int = 0,
) -> PreprocessResult:
    """Learn the data partitioning policy from a sample.

    ``dataset`` must already be grid-snapped with ``codec``.  The
    returned :class:`PreprocessResult` carries the fitted rule, the
    sample skyline and its SZB-tree, and the preprocessing wall time
    (which Figure 13's sampling study reports).
    """
    started = time.perf_counter()
    sample = reservoir_sample(dataset, ratio=sample_ratio, seed=seed)

    partitioner_kwargs: Dict[str, object] = {}
    if partitioner_name in (
        "zhg", "zdg", "grid-grouped", "angle-grouped", "kdtree-grouped"
    ):
        partitioner_kwargs["expansion"] = expansion
    partitioner = get_partitioner(partitioner_name, **partitioner_kwargs)
    rule = partitioner.fit(sample, codec, num_groups, seed=seed)

    sample_skyline, _ = zs_skyline(sample.points, sample.ids, None, codec)
    szb_tree = build_zbtree(codec, sample_skyline)

    seconds = time.perf_counter() - started
    return PreprocessResult(
        rule=rule,
        codec=codec,
        sample=sample,
        sample_skyline=sample_skyline,
        szb_tree=szb_tree,
        seconds=seconds,
        details={
            "partitioner": partitioner_name,
            "sample_size": sample.size,
            "sample_skyline_size": int(sample_skyline.shape[0]),
            "rule": rule.describe(),
        },
    )
