"""Distributed skyline ranking: a follow-up MapReduce job.

The paper defers ranking skyline results to user-defined functions
([15], §1).  Dominance-score ranking — "how much of the dataset does
each skyline point beat?" — needs a pass over the *full* data, which on
the platform is naturally a third MapReduce job:

* **mapper** — for its input block, count how many block records each
  skyline point dominates (the skyline rides in via the distributed
  cache, like phase 1's side data);
* **reducer** — sum the per-block count vectors.

The result orders the skyline best-first and feeds top-k selection
without ever moving the dataset.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.point import dominates_block
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.job import JobResult, MapReduceJob, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block, split_dataset

_CACHE_SKYLINE = "ranking_skyline"
_SCORE_KEY = 0


def _make_ranking_job() -> MapReduceJob:
    def mapper(block: Block, ctx: TaskContext) -> Iterable[Tuple[int, Block]]:
        skyline: np.ndarray = ctx.cache.get(_CACHE_SKYLINE)
        counts = np.zeros(skyline.shape[0], dtype=np.int64)
        for i in range(skyline.shape[0]):
            ctx.ops.point_tests += block.size
            counts[i] = int(dominates_block(skyline[i], block.points).sum())
        # Ship the count vector as a 1-column block (ids = positions).
        yield _SCORE_KEY, Block(
            np.arange(skyline.shape[0], dtype=np.int64),
            counts[:, None].astype(np.float64),
        )

    def reducer(key: int, blocks: List[Block], ctx: TaskContext) -> Block:
        total = np.zeros_like(blocks[0].points)
        for block in blocks:
            total += block.points
        return Block(blocks[0].ids, total)

    return MapReduceJob(
        name="phase3-ranking", mapper=mapper, reducer=reducer
    )


def distributed_dominance_scores(
    dataset: Dataset,
    skyline_points: np.ndarray,
    skyline_ids: Sequence[int],
    num_workers: int = 8,
    num_input_splits: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, JobResult]:
    """Rank a skyline by dominance score with a MapReduce pass.

    Returns ``(ordered_ids, ordered_scores, job_result)`` best-first.
    Matches :func:`repro.extensions.ranking.dominance_scores` exactly
    (tested), while scaling out the dataset scan.
    """
    cluster = SimulatedCluster(num_workers)
    cache = DistributedCache()
    cache.put(_CACHE_SKYLINE, np.asarray(skyline_points, dtype=np.float64))
    runtime = MapReduceRuntime(cluster, cache=cache)
    splits = split_dataset(dataset, num_input_splits or num_workers * 2)
    result = runtime.run(_make_ranking_job(), splits)
    totals = result.outputs[_SCORE_KEY].points[:, 0]
    order = np.argsort(-totals, kind="stable")
    ids = np.asarray(skyline_ids, dtype=np.int64)
    return ids[order], totals[order].astype(np.int64), result
