"""JSON (de)serialisation of partition rules and run reports.

In a real deployment the phase-0 rule is *learned once* on the master
and shipped to hundreds of mappers; these helpers give it a stable
wire format.  Run-report summaries serialise for experiment logging.

Z-addresses can exceed 64 bits, so pivots are serialised as decimal
strings.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.partitioning.angle import AngleRule
from repro.partitioning.base import PartitionRule
from repro.partitioning.generic_grouping import GroupedRule
from repro.partitioning.grid import GridRule
from repro.partitioning.kdtree import KDTreeRule, _Leaf, _Split
from repro.partitioning.random_part import RandomRule
from repro.partitioning.zcurve import ZCurveRule
from repro.pipeline.driver import RunReport
from repro.zorder.encoding import ZGridCodec

_FORMAT_VERSION = 1


def codec_to_dict(codec: ZGridCodec) -> Dict[str, Any]:
    """Serialise a codec's parameters."""
    return {
        "lows": [float(v) for v in codec.lows],
        "spans": [float(v) for v in codec.spans],
        "bits_per_dim": codec.bits_per_dim,
    }


def codec_from_dict(data: Dict[str, Any]) -> ZGridCodec:
    """Rebuild a codec from :func:`codec_to_dict` output."""
    lows = np.asarray(data["lows"], dtype=np.float64)
    spans = np.asarray(data["spans"], dtype=np.float64)
    return ZGridCodec(lows, lows + spans, bits_per_dim=data["bits_per_dim"])


def rule_to_dict(rule: PartitionRule) -> Dict[str, Any]:
    """Serialise any built-in partition rule."""
    if isinstance(rule, ZCurveRule):
        return {
            "version": _FORMAT_VERSION,
            "kind": "zcurve",
            "codec": codec_to_dict(rule.codec),
            "pivots": [str(p) for p in rule.pivots],
            "group_map": rule.group_map.tolist(),
        }
    if isinstance(rule, GridRule):
        return {
            "version": _FORMAT_VERSION,
            "kind": "grid",
            "lows": rule._lo.tolist(),
            "spans": rule._span.tolist(),
            "splits": rule._splits.tolist(),
        }
    if isinstance(rule, AngleRule):
        return {
            "version": _FORMAT_VERSION,
            "kind": "angle",
            "boundaries": [b.tolist() for b in rule._boundaries],
            "angle_dims": list(rule._angle_dims),
        }
    if isinstance(rule, RandomRule):
        return {
            "version": _FORMAT_VERSION,
            "kind": "random",
            "num_groups": rule.num_groups,
        }
    if isinstance(rule, KDTreeRule):
        return {
            "version": _FORMAT_VERSION,
            "kind": "kdtree",
            "num_groups": rule.num_groups,
            "root": _kdnode_to_dict(rule._root),
        }
    if isinstance(rule, GroupedRule):
        return {
            "version": _FORMAT_VERSION,
            "kind": "grouped",
            "base": rule_to_dict(rule.base),
            "group_map": rule.group_map.tolist(),
        }
    raise ConfigurationError(
        f"cannot serialise rule type {type(rule).__name__}"
    )


def _kdnode_to_dict(node) -> Dict[str, Any]:
    if isinstance(node, _Leaf):
        return {"leaf": node.pid}
    return {
        "dim": node.dim,
        "threshold": node.threshold,
        "below": _kdnode_to_dict(node.below),
        "above": _kdnode_to_dict(node.above),
    }


def _kdnode_from_dict(data: Dict[str, Any]):
    if "leaf" in data:
        return _Leaf(int(data["leaf"]))
    return _Split(
        int(data["dim"]),
        float(data["threshold"]),
        _kdnode_from_dict(data["below"]),
        _kdnode_from_dict(data["above"]),
    )


def rule_from_dict(data: Dict[str, Any]) -> PartitionRule:
    """Rebuild a partition rule from :func:`rule_to_dict` output."""
    import numpy as np

    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported rule format version {version!r}"
        )
    kind = data.get("kind")
    if kind == "zcurve":
        return ZCurveRule(
            codec_from_dict(data["codec"]),
            [int(p) for p in data["pivots"]],
            group_map=data["group_map"],
        )
    if kind == "grid":
        grid_lows = np.asarray(data["lows"], dtype=np.float64)
        grid_spans = np.asarray(data["spans"], dtype=np.float64)
        return GridRule(grid_lows, grid_lows + grid_spans, data["splits"])
    if kind == "angle":
        return AngleRule(
            [np.asarray(b, dtype=np.float64) for b in data["boundaries"]],
            list(data["angle_dims"]),
        )
    if kind == "random":
        return RandomRule(data["num_groups"])
    if kind == "kdtree":
        return KDTreeRule(
            _kdnode_from_dict(data["root"]), int(data["num_groups"])
        )
    if kind == "grouped":
        return GroupedRule(
            rule_from_dict(data["base"]), data["group_map"]
        )
    raise ConfigurationError(f"unknown rule kind {kind!r}")


def rule_to_json(rule: PartitionRule) -> str:
    """Partition rule -> JSON string."""
    return json.dumps(rule_to_dict(rule))


def rule_from_json(payload: str) -> PartitionRule:
    """JSON string -> partition rule."""
    return rule_from_dict(json.loads(payload))


def report_to_dict(report: RunReport) -> Dict[str, Any]:
    """Flatten a run report for experiment logging (JSON-safe)."""
    return {
        "version": _FORMAT_VERSION,
        "plan": report.plan.label,
        "summary": {
            k: (float(v) if isinstance(v, float) else v)
            for k, v in report.summary().items()
        },
        "details": {k: str(v) for k, v in report.details.items()},
        "counters": {
            "phase1": report.phase1.counters.as_dict(),
            "phase2": report.phase2.counters.as_dict(),
        },
        "faults": report.fault_summary(),
        "recovery_cost": report.recovery_cost,
        "skyline_ids": report.skyline.ids.tolist(),
    }


def report_to_json(report: RunReport) -> str:
    """Run report -> JSON string."""
    return json.dumps(report_to_dict(report))
