"""MR-GPMRS baseline: grid partitioning + bitstring + multi-reducer merge.

The paper's strongest published competitor [12] differs from the other
baselines in its *merge* phase: instead of funnelling all candidates into
one reducer, it uses the grid-cell bitstring to ship each cell's
candidates only to the reducers of cells they could dominate, letting
several reducers compute disjoint parts of the global skyline in
parallel.

Structure here:

* **job 1** — grid-partition the input; combiner/reducer compute each
  cell's local skyline with the bitstring algorithm;
* **job 2** — each cell's candidate block is replicated to every
  occupied cell it can reach downward (cell coordinates componentwise
  ``<=``); the reducer for cell ``c`` filters ``c``'s own candidates
  against all received contenders, producing ``c``'s slice of the global
  skyline.  Reduce tasks (one per cell) spread round-robin over the
  workers — the "multiple reducers compute global skyline" behaviour.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Tuple

import numpy as np

from repro.algorithms.bitstring import bitstring_skyline
from repro.core.dataset import Dataset
from repro.core.point import dominated_mask
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block, split_dataset
from repro.partitioning.grid import GridRule
from repro.pipeline.driver import EngineConfig, RunReport
from repro.pipeline.plans import PlanConfig
from repro.pipeline.preprocess import CACHE_RULE, preprocess

_CACHE_OCCUPIED = "gpmrs_occupied_cells"


def _make_local_job() -> MapReduceJob:
    def mapper(block: Block, ctx: TaskContext) -> Iterable[Tuple[int, Block]]:
        rule: GridRule = ctx.cache.get(CACHE_RULE)
        gids = rule.assign_groups(block.points, block.ids)
        for gid in np.unique(gids):
            mask = gids == gid
            yield int(gid), block.select(mask)

    def combiner(gid: int, blocks: List[Block], ctx: TaskContext) -> List[Block]:
        merged = Block.concat(blocks)
        points, ids = bitstring_skyline(merged.points, merged.ids, ctx.ops)
        return [Block(ids, points)]

    def reducer(gid: int, blocks: List[Block], ctx: TaskContext) -> Block:
        merged = Block.concat(blocks)
        points, ids = bitstring_skyline(merged.points, merged.ids, ctx.ops)
        ctx.counters.inc("phase1", "candidates", points.shape[0])
        return Block(ids, points)

    return MapReduceJob(
        name="phase1-candidates", mapper=mapper, combiner=combiner,
        reducer=reducer,
    )


def _make_merge_job() -> MapReduceJob:
    def mapper(block: Block, ctx: TaskContext) -> Iterable[Tuple[int, Block]]:
        if block.size == 0:
            return
        rule: GridRule = ctx.cache.get(CACHE_RULE)
        occupied: List[int] = ctx.cache.get(_CACHE_OCCUPIED)
        own_gid = int(rule.assign_groups(block.points[:1], block.ids[:1])[0])
        own_cell = rule.cell_of_gid(own_gid)
        for gid in occupied:
            # Replicate to every occupied cell this cell can reach
            # downward (the bitstring tells which cells interact).
            if np.all(own_cell <= rule.cell_of_gid(gid)):
                yield gid, block

    def reducer(gid: int, blocks: List[Block], ctx: TaskContext) -> Block:
        rule: GridRule = ctx.cache.get(CACHE_RULE)
        contenders = Block.concat(blocks)
        own_mask = (
            rule.assign_groups(contenders.points, contenders.ids) == gid
        )
        own = contenders.select(own_mask)
        if own.size == 0:
            return Block.empty(contenders.dimensions)
        ctx.ops.point_tests += own.size * contenders.size
        dominated = dominated_mask(own.points, contenders.points)
        return own.select(~dominated)

    return MapReduceJob(name="phase2-merge", mapper=mapper, reducer=reducer)


def run_gpmrs(dataset: Dataset, config: EngineConfig) -> RunReport:
    """Run the MR-GPMRS pipeline; returns the same report shape as
    :class:`~repro.pipeline.driver.SkylineEngine` for side-by-side rows.

    ``config.plan`` is ignored except for bookkeeping; the report is
    labelled ``MR-GPMRS``.
    """
    from repro.zorder.encoding import quantize_dataset

    started = time.perf_counter()
    snapped, codec = quantize_dataset(
        dataset, bits_per_dim=config.bits_per_dim
    )
    pre = preprocess(
        snapped,
        codec,
        "grid",
        config.num_groups,
        sample_ratio=config.sample_ratio,
        seed=config.seed,
    )
    cluster = SimulatedCluster(
        config.num_workers,
        slowdown_factors=config.slowdown_factors,
        speculative=config.speculative,
        fault_plan=config.fault_plan,
    )
    cache = DistributedCache()
    pre.publish(cache)
    runtime = MapReduceRuntime(
        cluster, dfs=InMemoryDFS(), cache=cache,
        fault_plan=config.fault_plan,
    )

    splits = split_dataset(
        snapped, config.num_input_splits or config.num_workers * 2
    )
    result1 = runtime.run(_make_local_job(), splits)

    candidate_blocks = [
        block
        for block in result1.outputs.values()
        if isinstance(block, Block) and block.size > 0
    ]
    occupied = sorted(result1.outputs.keys())
    cache.put(_CACHE_OCCUPIED, occupied)
    if not candidate_blocks:
        candidate_blocks = [Block.empty(snapped.dimensions)]

    result2 = runtime.run(_make_merge_job(), candidate_blocks)
    pieces = [
        block
        for block in result2.outputs.values()
        if isinstance(block, Block) and block.size > 0
    ]
    skyline = (
        Block.concat(pieces) if pieces else Block.empty(snapped.dimensions)
    )

    plan = PlanConfig(
        partitioner="grid",
        local_algorithm="SB",
        merge_algorithm="SB",
        prefilter=False,
        label="MR-GPMRS",
    )
    return RunReport(
        plan=plan,
        skyline=skyline,
        preprocess_result=pre,
        phase1=result1,
        phase2=result2,
        total_seconds=time.perf_counter() - started,
        details={
            "n": dataset.size,
            "d": dataset.dimensions,
            "num_groups": pre.rule.num_groups,
            "num_workers": config.num_workers,
        },
    )
