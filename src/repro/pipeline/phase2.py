"""Phase 2: the second MapReduce job — merge skyline candidates (§5.3).

The mapper shuffles every group's candidate block to a single reducer
key; the reducer merges with the configured strategy:

* ``ZM`` — the paper's Z-merge: build a ZB-tree per candidate group and
  fold them with Algorithm 4's BFS region-pruned merge;
* ``ZS`` — concatenate candidates and run Z-search over one ZB-tree;
* ``SB`` / ``BNL`` — concatenate and run the block-based algorithm.

Each group's candidate set is dominance-free (it is a local skyline), so
the Z-merge contract holds and the fold yields the exact global skyline.

As in phase 1, the mapper/reducer callables are picklable dataclasses
(or module-level functions) so the process-pool executor can ship them
to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.algorithms.registry import get_algorithm
from repro.core.exceptions import ConfigurationError
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.types import Block
from repro.pipeline.plans import PlanConfig
from repro.pipeline.preprocess import CACHE_CODEC
from repro.zorder.zbtree import build_zbtree
from repro.zorder.zmerge import zmerge_all

_MERGE_KEY = 0


def _merge_mapper(
    block: Block, ctx: TaskContext
) -> Iterable[Tuple[int, Block]]:
    # Pure shuffle: candidates flow unchanged to the merge reducer.
    yield _MERGE_KEY, block


def make_phase2_job(plan: PlanConfig) -> MapReduceJob:
    """Build the candidate-merging job for a plan."""
    if plan.merge_algorithm in ("ZM", "ZMP"):
        # ZMP's *final* round is a plain Z-merge fold; its partial round
        # is built by make_partial_merge_job below.
        reducer = _zmerge_reducer
    elif plan.merge_algorithm in ("ZS", "SB", "BNL"):
        reducer = AlgorithmReducer(plan.merge_algorithm)
    else:  # pragma: no cover - PlanConfig validates earlier
        raise ConfigurationError(
            f"unknown merge algorithm {plan.merge_algorithm!r}"
        )

    return MapReduceJob(
        name="phase2-merge",
        mapper=_merge_mapper,
        reducer=reducer,
    )


@dataclass(frozen=True)
class PartialMergeMapper:
    """Spread candidate blocks over ``ways`` reduce keys (ZMP round 1)."""

    ways: int

    def __call__(
        self, block: Block, ctx: TaskContext
    ) -> Iterable[Tuple[int, Block]]:
        if block.size == 0:
            return
        # Deterministic spread: key by the block's first record id.
        yield int(block.ids[0]) % self.ways, block


def make_partial_merge_job(ways: int) -> MapReduceJob:
    """First round of the parallel Z-merge extension (ZMP).

    Candidate blocks are spread over ``ways`` reduce keys; each reducer
    Z-merges its share into a partial skyline.  Partials are
    dominance-free, so a final single-reducer Z-merge fold over the
    ``ways`` partials yields the exact global skyline — a two-level
    merge tree that removes the paper's single-reducer merge bottleneck
    (its §5.3 job merges everything in one reducer).
    """
    if ways <= 0:
        raise ConfigurationError("ZMP needs a positive number of ways")

    return MapReduceJob(
        name="phase2-merge-partial",
        mapper=PartialMergeMapper(ways=ways),
        reducer=_zmerge_reducer,
    )


def _zmerge_reducer(key: int, blocks: List[Block], ctx: TaskContext) -> Block:
    codec = ctx.cache.get(CACHE_CODEC)
    # Candidate blocks arrive with the Z-addresses phase 1 computed for
    # routing; the tree builds reuse them instead of re-encoding (a
    # block that lost them — e.g. a legacy checkpoint — re-encodes).
    trees = [
        build_zbtree(
            codec, block.points, ids=block.ids, zaddresses=block.zaddresses
        )
        for block in blocks
        if block.size > 0
    ]
    if not trees:
        return Block.empty(blocks[0].dimensions if blocks else 1)
    merged = zmerge_all(trees, counter=ctx.ops)
    zs, points, ids = merged.collect()
    # How many candidate trees each merge reducer folds — the fan-in
    # the two-level ZMP merge is designed to shrink.
    ctx.observe("phase2.merge_fanin", len(trees))
    # ZMP partials feed a final fold: keep the addresses on the output.
    return Block(ids, points, zaddresses=codec.as_zbatch(zs))


@dataclass(frozen=True)
class AlgorithmReducer:
    """Concatenate candidates and run a registry algorithm over them."""

    algorithm: str

    def __call__(
        self, key: int, blocks: List[Block], ctx: TaskContext
    ) -> Block:
        algorithm = get_algorithm(self.algorithm)
        merged = Block.concat(blocks)
        points, ids = algorithm(merged.points, merged.ids, ctx.ops)
        return Block(ids, points)
