"""Phase 1: the first MapReduce job — compute skyline candidates (§5.2).

Algorithm 3's mapper, with combiners:

* **mapper** — (optionally) screen input points against the SZB-tree of
  the sample skyline; points dominated by a *sample* skyline point are
  certainly not global skyline points and die here, before any shuffle.
  Survivors are routed ``point -> z-address -> partition -> group``; a
  point whose partition was pruned by dominance grouping is dropped
  (Algorithm 3 line 7, "if m is not NULL").
* **combiner** — per map task and group, replace the routed points by
  their local skyline (this is what keeps the shuffle volume at
  candidate scale rather than input scale).
* **reducer** — per group, compute the group's skyline candidates with
  the configured local algorithm (SB or ZS in the paper).

The mapper/combiner/reducer are small **picklable** callables (plain
dataclasses over plan fields, resolving the algorithm registry lazily)
rather than closures over the plan: the process-pool executor ships the
whole task — callable included — across the pool boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.mapreduce.job import MapReduceJob, TaskContext
from repro.mapreduce.types import Block
from repro.partitioning.base import DROPPED
from repro.pipeline.plans import PlanConfig
from repro.pipeline.preprocess import CACHE_CODEC, CACHE_RULE, CACHE_SZB_TREE


def _carry_z(merged: Block, sky_ids: np.ndarray) -> Optional[np.ndarray]:
    """Z-addresses of the skyline subset of ``merged``, by id lookup.

    Local skyline algorithms return points in their own order (Z-order
    for ZS, scan order for SB/BNL), so the carried batch is aligned to
    the output by matching record ids — globally unique by contract —
    rather than positions.  Returns ``None`` when ``merged`` carries no
    addresses.
    """
    z = merged.zaddresses
    if z is None:
        return None
    order = np.argsort(merged.ids, kind="stable")
    positions = order[np.searchsorted(merged.ids[order], sky_ids)]
    return z[positions]


@dataclass(frozen=True)
class Phase1Mapper:
    """Algorithm 3's mapper: prefilter, encode, route to groups."""

    prefilter: bool

    def __call__(
        self, block: Block, ctx: TaskContext
    ) -> Iterable[Tuple[int, Block]]:
        rule = ctx.cache.get(CACHE_RULE)
        codec = ctx.cache.get(CACHE_CODEC)
        points = block.points
        ids = block.ids

        if self.prefilter:
            # Screen the block against the SZB-tree (the ZB-tree over the
            # sample skyline): region pruning makes this far cheaper than
            # an all-pairs test against the sample skyline.
            szb_tree = ctx.cache.get(CACHE_SZB_TREE)
            dominated = szb_tree.dominated_mask_tree(points, ctx.ops)
            if dominated.any():
                ctx.counters.inc(
                    "phase1", "prefiltered_records", int(dominated.sum())
                )
                keep = ~dominated
                points = points[keep]
                ids = ids[keep]
        if points.shape[0] == 0:
            return

        # Encode once, in the kernel's native batch form; the addresses
        # route the points here and then ride along on the emitted
        # blocks so no later stage re-encodes them.
        zbatch = codec.encode_grid_batch(points.astype(np.int64))
        gids = rule.assign_groups(points, ids, zbatch)
        dropped = gids == DROPPED
        if dropped.any():
            ctx.counters.inc("phase1", "dropped_records", int(dropped.sum()))
        for gid in np.unique(gids[~dropped]):
            mask = gids == gid
            yield int(gid), Block(
                ids[mask], points[mask], zaddresses=zbatch[mask]
            )


@dataclass(frozen=True)
class Phase1Combiner:
    """Per map task and group, reduce routed points to a local skyline."""

    local_algorithm: str

    def __call__(
        self, gid: int, blocks: List[Block], ctx: TaskContext
    ) -> List[Block]:
        algorithm = get_algorithm(self.local_algorithm)
        merged = Block.concat(blocks)
        sky_points, sky_ids = algorithm(merged.points, merged.ids, ctx.ops)
        ctx.counters.inc(
            "phase1", "combiner_pruned", merged.size - sky_points.shape[0]
        )
        return [
            Block(sky_ids, sky_points, zaddresses=_carry_z(merged, sky_ids))
        ]


@dataclass(frozen=True)
class Phase1Reducer:
    """Per group, compute the group's skyline candidates."""

    local_algorithm: str

    def __call__(
        self, gid: int, blocks: List[Block], ctx: TaskContext
    ) -> Block:
        algorithm = get_algorithm(self.local_algorithm)
        merged = Block.concat(blocks)
        sky_points, sky_ids = algorithm(merged.points, merged.ids, ctx.ops)
        ctx.counters.inc("phase1", "candidates", sky_points.shape[0])
        # Per-group candidate counts — the distribution Figure 9 plots
        # (one histogram sample per reduce group).
        ctx.observe("phase1.group_candidates", sky_points.shape[0])
        ctx.observe("phase1.group_input_records", merged.size)
        return Block(sky_ids, sky_points, zaddresses=_carry_z(merged, sky_ids))


def make_phase1_job(plan: PlanConfig) -> MapReduceJob:
    """Build the candidate-computation job for a plan."""
    # Validate the algorithm name eagerly so a bad plan fails in the
    # coordinator, not inside a pool worker.
    get_algorithm(plan.local_algorithm)
    return MapReduceJob(
        name="phase1-candidates",
        mapper=Phase1Mapper(prefilter=plan.prefilter),
        combiner=Phase1Combiner(local_algorithm=plan.local_algorithm),
        reducer=Phase1Reducer(local_algorithm=plan.local_algorithm),
    )
