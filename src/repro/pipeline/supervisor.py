"""The pipeline supervisor: checkpointed, resumable, degradable runs.

:class:`SkylineEngine` is all-or-nothing: any terminal fault discards
the preprocessing rule, every phase-1 candidate block, and any partial
merge.  The supervisor drives the same stage machine —

    preprocess -> phase1 -> partial-merge (ZMP) -> phase2

— but makes each completed stage **durable** in a
:class:`~repro.pipeline.checkpoint.CheckpointStore`, so that:

* **resume** — a restarted run picks up from the last durable stage and
  produces a bit-identical skyline (candidate blocks round-trip through
  npz exactly; merge order is the checkpointed key order);
* **deadlines** — a whole-run budget plus optional per-stage budgets,
  enforced at stage boundaries and at reduce-task starts, raise a clean
  :class:`~repro.core.exceptions.DeadlineExceededError`; terminal stage
  faults are retried as whole jobs a bounded number of times (each
  retry re-draws the fault schedule under a fresh attempt tag);
* **graceful degradation** — with ``degraded_ok`` a phase-1 group that
  is terminally lost (retry budget exhausted, or its reduce task never
  started before the deadline) does not abort the run: the surviving
  groups' candidates are merged and every merged point that could
  possibly be dominated by the lost groups' records (certified via the
  lost keys' componentwise floors) is masked out, so the returned
  :class:`PartialRunReport` skyline is always a *subset* of the true
  skyline;
* **input hardening** — raw record input is validated first; malformed
  records (NaN/±inf, wrong dimensionality, duplicate ids) are
  quarantined into ``input.quarantined_records`` counters instead of
  crashing a mapper mid-job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    FaultInjectionError,
)
from repro.data.io import QUARANTINE_KEYS, sanitize_records
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterMetrics
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import JobResult
from repro.mapreduce.runtime import MapReduceRuntime, ReducePolicy
from repro.mapreduce.types import Block, split_dataset
from repro.observability import MetricsRegistry, Tracer
from repro.pipeline.checkpoint import (
    STAGE_FINAL,
    STAGE_PARTIAL_MERGE,
    STAGE_PHASE1,
    STAGE_PREPROCESS,
    CheckpointStore,
)
from repro.pipeline.driver import (
    EngineConfig,
    RunReport,
    export_observability,
    make_cluster,
)
from repro.pipeline.phase1 import make_phase1_job
from repro.pipeline.phase2 import make_partial_merge_job, make_phase2_job
from repro.pipeline.preprocess import PreprocessResult, preprocess
from repro.pipeline.serialization import (
    codec_from_dict,
    codec_to_dict,
    rule_from_dict,
    rule_to_dict,
)
from repro.zorder.encoding import quantize_dataset
from repro.zorder.zbtree import build_zbtree


@dataclass
class SupervisorConfig:
    """Durability/robustness knobs of a supervised run."""

    #: checkpoint directory; ``None`` disables durability
    checkpoint_dir: Optional[str] = None
    #: reuse durable stages from ``checkpoint_dir`` (run key must match)
    resume: bool = False
    #: whole-run wall-clock budget in seconds
    deadline_seconds: Optional[float] = None
    #: optional per-stage budgets, e.g. ``{"phase1": 30.0}``
    stage_timeouts: Dict[str, float] = field(default_factory=dict)
    #: return a :class:`PartialRunReport` instead of raising when a
    #: phase-1 group is terminally lost or the deadline fires mid-phase
    degraded_ok: bool = False
    #: whole-job retries per stage after a terminal fault
    max_stage_retries: int = 1

    def __post_init__(self) -> None:
        if self.max_stage_retries < 0:
            raise ConfigurationError("max_stage_retries must be >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ConfigurationError("deadline_seconds must be >= 0")
        for stage, budget in self.stage_timeouts.items():
            if budget < 0:
                raise ConfigurationError(
                    f"stage timeout for {stage!r} must be >= 0"
                )
        if self.resume and not self.checkpoint_dir:
            raise ConfigurationError(
                "resume requires a checkpoint_dir to resume from"
            )


@dataclass
class PartialRunReport(RunReport):
    """A degraded run's outcome: a certified subset of the skyline.

    ``completeness`` is the fraction of phase-1 groups whose candidates
    made it into the merge (< 1.0 whenever anything was lost);
    ``completeness_detail`` carries the full accounting — groups
    completed/lost, candidate-record coverage, which lost groups'
    regions may still hide skyline points, and how many merged
    candidates were masked because a lost region could dominate them.
    """

    completeness: float = 1.0
    lost_groups: List[int] = field(default_factory=list)
    masked_candidates: int = 0
    completeness_detail: Dict[str, object] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return True

    def summary(self) -> Dict[str, object]:
        out = super().summary()
        out["completeness"] = round(self.completeness, 4)
        out["lost_groups"] = len(self.lost_groups)
        out["masked_candidates"] = self.masked_candidates
        return out


class PipelineSupervisor:
    """Run the stage machine with checkpoints, deadlines, degradation."""

    def __init__(
        self,
        config: EngineConfig,
        supervisor: Optional[SupervisorConfig] = None,
    ) -> None:
        self.config = config
        self.supervisor = supervisor or SupervisorConfig()
        # Built lazily by the first run(); later run() calls on the
        # same supervisor (e.g. a resume after a deadline abort) reuse
        # the live runtime — its cache and DFS survive, which is what
        # makes idempotent cache re-publication and attempt-scoped
        # output resolution observable behaviours.  On a process-pool
        # executor the worker processes survive with it, so a resumed
        # run() reuses warm workers; call :meth:`close` (or use the
        # supervisor as a context manager) when done.
        self._runtime: Optional[MapReduceRuntime] = None

    def close(self) -> None:
        """Release the reusable runtime's cluster (idempotent).

        Pool-backed executors hold real worker processes between run()
        calls; closing terminates them.  The in-process executors treat
        this as a no-op.
        """
        runtime = self._runtime
        if runtime is not None:
            runtime.cluster.shutdown()

    def __enter__(self) -> "PipelineSupervisor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(
        self,
        data: Union[Dataset, Sequence[Sequence[float]]],
        ids: Optional[Sequence[int]] = None,
    ) -> RunReport:
        """Compute the skyline of ``data`` under supervision.

        ``data`` may be a validated :class:`Dataset` or raw rows
        (possibly ragged/dirty — they go through the hardening pass
        first).  Returns a :class:`RunReport`, or a
        :class:`PartialRunReport` when the run had to degrade.
        """
        cfg = self.config
        sup = self.supervisor
        started = time.perf_counter()
        deadline = (
            time.monotonic() + sup.deadline_seconds
            if sup.deadline_seconds is not None
            else None
        )

        if isinstance(data, Dataset):
            dataset = data
            quarantine = {key: 0 for key in QUARANTINE_KEYS}
        else:
            dataset, quarantine = sanitize_records(data, ids=ids)

        snapped, codec = quantize_dataset(
            dataset, bits_per_dim=cfg.bits_per_dim
        )

        tracer = cfg.resolve_tracer()
        registry = (
            MetricsRegistry() if cfg.observability_enabled else None
        )
        run_span = tracer.start_span(
            "run", plan=cfg.plan.label, n=dataset.size,
            d=dataset.dimensions, supervised=True, resume=sup.resume,
        )

        store: Optional[CheckpointStore] = None
        resumed: List[str] = []
        if sup.checkpoint_dir:
            store = CheckpointStore(sup.checkpoint_dir)
            store.begin(self._run_key(dataset), resume=sup.resume)

        # ---------------- stage: preprocess ----------------
        if store is not None and sup.resume and store.has_stage(
            STAGE_PREPROCESS
        ):
            with tracer.span(
                "preprocess", parent=run_span, resumed=True
            ):
                pre = self._load_preprocess(store)
            resumed.append(STAGE_PREPROCESS)
        else:
            # In a degraded-ok run the deadline only gates phase-1
            # reduce scheduling (overdue keys are lost, not fatal);
            # master-side preprocessing is never aborted.
            with tracer.span("preprocess", parent=run_span) as pre_span:
                pre = self._run_stage(
                    STAGE_PREPROCESS,
                    None if sup.degraded_ok else deadline,
                    lambda attempt, stage_deadline: preprocess(
                        snapped,
                        codec,
                        cfg.plan.partitioner,
                        cfg.num_groups,
                        sample_ratio=cfg.sample_ratio,
                        expansion=cfg.expansion,
                        seed=cfg.seed,
                    ),
                )
                pre_span.update(
                    sample_size=pre.sample.size,
                    sample_skyline=int(pre.sample_skyline.shape[0]),
                    seconds=pre.seconds,
                )
            if store is not None:
                self._save_preprocess(store, pre)

        runtime = self._acquire_runtime(cfg, pre, tracer, registry)

        # ---------------- stage: phase 1 ----------------
        if store is not None and sup.resume and store.has_stage(
            STAGE_PHASE1
        ):
            with tracer.span("phase1", parent=run_span, resumed=True):
                result1 = self._restore_job_result(
                    store, STAGE_PHASE1, "phase1-candidates"
                )
            resumed.append(STAGE_PHASE1)
        else:
            job1 = make_phase1_job(cfg.plan)
            splits = split_dataset(
                snapped, cfg.num_input_splits or cfg.num_workers * 2
            )

            with tracer.span("phase1", parent=run_span) as stage_span:

                def run_phase1(
                    attempt: int, stage_deadline: Optional[float]
                ):
                    policy = ReducePolicy(
                        lenient=sup.degraded_ok, deadline=stage_deadline
                    )
                    return runtime.run(
                        job1,
                        splits,
                        output_path="phase1/candidates",
                        reduce_policy=policy,
                        attempt=attempt,
                        parent_span=stage_span,
                    )

                # In lenient mode the reduce phase enforces the
                # deadline itself (overdue keys become lost keys, not
                # errors), so the stage runner never raises for it.
                result1 = self._run_stage(
                    STAGE_PHASE1, deadline, run_phase1,
                    strict=not sup.degraded_ok,
                )
                stage_span.set("attempt", result1.attempt)
            if store is not None:
                self._save_job_result(store, STAGE_PHASE1, result1)

        lost_keys: List[int] = list(result1.extras.get("lost_keys", []))
        candidate_blocks = self._candidate_blocks(result1, snapped.dimensions)

        # ---------------- stage: partial merge (ZMP) ----------------
        partial_result: Optional[JobResult] = None
        if cfg.plan.merge_algorithm == "ZMP":
            if store is not None and sup.resume and store.has_stage(
                STAGE_PARTIAL_MERGE
            ):
                with tracer.span(
                    "partial-merge", parent=run_span, resumed=True
                ):
                    partial_result = self._restore_job_result(
                        store, STAGE_PARTIAL_MERGE, "phase2-merge-partial"
                    )
                resumed.append(STAGE_PARTIAL_MERGE)
            else:
                partial_job = make_partial_merge_job(cfg.num_workers)
                with tracer.span(
                    "partial-merge", parent=run_span
                ) as stage_span:
                    partial_result = self._run_stage(
                        STAGE_PARTIAL_MERGE,
                        None if sup.degraded_ok else deadline,
                        lambda attempt, stage_deadline: runtime.run(
                            partial_job, candidate_blocks,
                            attempt=attempt, parent_span=stage_span,
                        ),
                    )
                    stage_span.set("attempt", partial_result.attempt)
                if store is not None:
                    self._save_job_result(
                        store, STAGE_PARTIAL_MERGE, partial_result
                    )
            candidate_blocks = self._candidate_blocks(
                partial_result, snapped.dimensions
            )

        # ---------------- stage: final merge ----------------
        # In a degraded-ok run the merges are the answer assembly for
        # whatever survived phase 1 — they run even past the deadline
        # (aborting them would discard the partial answer the degraded
        # contract promises).
        merge_deadline = None if sup.degraded_ok else deadline
        degrade_meta: Dict[str, Any] = {}
        if store is not None and sup.resume and store.has_stage(STAGE_FINAL):
            with tracer.span("phase2", parent=run_span, resumed=True):
                result2 = self._restore_job_result(
                    store, STAGE_FINAL, "phase2-merge"
                )
            resumed.append(STAGE_FINAL)
            payload = store.stage_payload(STAGE_FINAL)
            degrade_meta = payload.get("degradation", {})
            skyline = result2.outputs.get(
                0, Block.empty(snapped.dimensions)
            )
            masked = int(degrade_meta.get("masked_candidates", 0))
        else:
            job2 = make_phase2_job(cfg.plan)
            with tracer.span("phase2", parent=run_span) as stage_span:
                result2 = self._run_stage(
                    STAGE_FINAL,
                    merge_deadline,
                    lambda attempt, stage_deadline: runtime.run(
                        job2, candidate_blocks, output_path="skyline",
                        attempt=attempt, parent_span=stage_span,
                    ),
                )
                stage_span.set("attempt", result2.attempt)
            skyline = result2.outputs.get(
                0, Block.empty(snapped.dimensions)
            )
            skyline, masked = self._mask_uncertain(skyline, result1)
            if lost_keys:
                degrade_meta = self._degradation_meta(
                    result1, lost_keys, masked
                )
            if store is not None:
                self._save_job_result(
                    store,
                    STAGE_FINAL,
                    result2,
                    outputs_override=[(0, skyline)],
                    extra_payload={"degradation": degrade_meta},
                )

        if registry is not None:
            # Record which kernel path (uint64 fast vs packed-byte
            # wide) served this run, mirroring the unsupervised driver.
            for name, value in codec.kernel_stats.snapshot().items():
                registry.inc("zkernel", name, value)

        total_seconds = time.perf_counter() - started
        details = {
            "n": dataset.size,
            "d": dataset.dimensions,
            "num_groups": pre.rule.num_groups,
            "num_workers": cfg.num_workers,
            "supervised": True,
            "checkpoint_dir": sup.checkpoint_dir,
            "resumed_stages": resumed,
            "input": dict(quarantine),
        }
        run_span.set("skyline", skyline.size)
        run_span.set("resumed_stages", len(resumed))
        run_span.finish()
        base = dict(
            plan=cfg.plan,
            skyline=skyline,
            preprocess_result=pre,
            phase1=result1,
            phase2=result2,
            total_seconds=total_seconds,
            details=details,
            phase2_partial=partial_result,
            trace=tracer if tracer.enabled else None,
            observed_metrics=registry,
        )
        if degrade_meta:
            report: RunReport = PartialRunReport(
                completeness=float(degrade_meta["completeness"]),
                lost_groups=list(degrade_meta["groups_lost"]),
                masked_candidates=int(degrade_meta["masked_candidates"]),
                completeness_detail=dict(degrade_meta),
                **base,
            )
        else:
            report = RunReport(**base)
        export_observability(cfg, report)
        return report

    # ------------------------------------------------------------------
    # runtime lifecycle
    # ------------------------------------------------------------------
    def _acquire_runtime(
        self,
        cfg: EngineConfig,
        pre: PreprocessResult,
        tracer: Tracer,
        registry: Optional[MetricsRegistry],
    ) -> MapReduceRuntime:
        """Build the runtime once and reuse it across run() calls.

        A resumed run() on the same supervisor keeps the live cache and
        DFS: re-publishing the (identical) preprocessing artefacts is an
        idempotent no-op, and re-executed jobs write attempt-scoped
        output paths that readers resolve with
        :meth:`~repro.mapreduce.hdfs.InMemoryDFS.latest`.
        """
        runtime = self._runtime
        if runtime is None:
            runtime = MapReduceRuntime(
                make_cluster(cfg),
                dfs=InMemoryDFS(),
                cache=DistributedCache(),
                fault_plan=cfg.fault_plan,
            )
            self._runtime = runtime
        # Observability handles are per-run, not per-runtime.
        runtime.tracer = tracer
        runtime.metrics = registry
        runtime.cluster.observer = registry
        pre.publish(runtime.cache)
        return runtime

    # ------------------------------------------------------------------
    # stage driver
    # ------------------------------------------------------------------
    def _run_stage(self, name, deadline, fn, strict=True):
        """Run one stage under the deadline/retry policy.

        ``fn(attempt, stage_deadline)`` does the work; attempt numbers
        tag the retried job so a deterministic fault schedule is
        re-drawn rather than replayed.  A stage budget narrows the
        effective deadline for that stage only.  ``strict=False``
        (lenient phase 1) still *computes* the effective deadline —
        which the reduce policy turns into lost keys — but never raises
        for it: the overdue work degrades instead of aborting.
        """
        sup = self.supervisor
        budget = sup.stage_timeouts.get(name)
        last_error: Optional[FaultInjectionError] = None
        for attempt in range(sup.max_stage_retries + 1):
            now = time.monotonic()
            if strict and deadline is not None and now >= deadline:
                raise DeadlineExceededError(
                    f"run deadline exhausted before stage {name!r}"
                ) from last_error
            stage_deadline = deadline
            if budget is not None:
                stage_deadline = (
                    now + budget if deadline is None
                    else min(deadline, now + budget)
                )
            stage_start = now
            try:
                result = fn(attempt, stage_deadline)
            except FaultInjectionError as exc:
                last_error = exc
                continue
            if (
                strict
                and budget is not None
                and time.monotonic() - stage_start > budget
            ):
                raise DeadlineExceededError(
                    f"stage {name!r} exceeded its {budget}s budget"
                )
            return result
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # checkpoint adapters
    # ------------------------------------------------------------------
    def _run_key(self, dataset: Dataset) -> Dict[str, Any]:
        cfg = self.config
        return {
            "plan": cfg.plan.plan_string(),
            "n": dataset.size,
            "d": dataset.dimensions,
            "dataset_crc32": Block.from_dataset(dataset).checksum(),
            "num_groups": cfg.num_groups,
            "sample_ratio": cfg.sample_ratio,
            "bits_per_dim": cfg.bits_per_dim,
            "expansion": cfg.expansion,
            "seed": cfg.seed,
        }

    def _save_preprocess(
        self, store: CheckpointStore, pre: PreprocessResult
    ) -> None:
        sky = np.asarray(pre.sample_skyline, dtype=np.float64)
        sky_block = Block(np.arange(sky.shape[0], dtype=np.int64), sky)
        sample_block = Block(pre.sample.ids, pre.sample.points)
        store.save_stage(
            STAGE_PREPROCESS,
            payload={
                "rule": rule_to_dict(pre.rule),
                "codec": codec_to_dict(pre.codec),
                "seconds": pre.seconds,
                "details": {k: str(v) for k, v in pre.details.items()},
            },
            blocks=[(0, sky_block), (1, sample_block)],
        )

    def _load_preprocess(self, store: CheckpointStore) -> PreprocessResult:
        payload = store.stage_payload(STAGE_PREPROCESS)
        blocks = dict(store.load_blocks(STAGE_PREPROCESS))
        codec = codec_from_dict(payload["codec"])
        sample_skyline = blocks[0].points
        sample = Dataset(
            blocks[1].points, ids=blocks[1].ids, name="checkpointed-sample"
        )
        return PreprocessResult(
            rule=rule_from_dict(payload["rule"]),
            codec=codec,
            sample=sample,
            sample_skyline=sample_skyline,
            szb_tree=build_zbtree(codec, sample_skyline),
            seconds=float(payload.get("seconds", 0.0)),
            details=dict(payload.get("details", {})),
        )

    def _save_job_result(
        self,
        store: CheckpointStore,
        stage: str,
        result: JobResult,
        outputs_override: Optional[List[Tuple[int, Block]]] = None,
        extra_payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        if outputs_override is not None:
            keyed = outputs_override
        else:
            keyed = [
                (key, value)
                for key, value in sorted(result.outputs.items())
                if isinstance(value, Block)
            ]
        lost = {
            "keys": list(result.extras.get("lost_keys", [])),
            "reasons": {
                str(k): v
                for k, v in result.extras.get("lost_reasons", {}).items()
            },
            "floors": {
                str(k): list(v)
                for k, v in result.extras.get("lost_floors", {}).items()
            },
            "records": {
                str(k): int(v)
                for k, v in result.extras.get(
                    "reduce_input_records", {}
                ).items()
            },
        }
        payload = {
            "counters": result.counters.as_dict(),
            "shuffle_records": result.shuffle_records,
            "shuffle_bytes": result.shuffle_bytes,
            "elapsed_seconds": result.elapsed_seconds,
            "attempt": result.attempt,
            "lost": lost,
        }
        payload.update(extra_payload or {})
        store.save_stage(stage, payload=payload, blocks=keyed)

    def _restore_job_result(
        self, store: CheckpointStore, stage: str, job_name: str
    ) -> JobResult:
        payload = store.stage_payload(stage)
        counters = Counters.from_dict(payload.get("counters", {}))
        outputs: Dict[int, Any] = {
            key: block for key, block in store.load_blocks(stage)
        }
        result = JobResult(
            job_name=job_name,
            outputs=outputs,
            counters=counters,
            # a resumed stage costs nothing this run: empty ledgers
            map_metrics=ClusterMetrics(phase=f"{stage}:checkpoint"),
            reduce_metrics=ClusterMetrics(phase=f"{stage}:checkpoint"),
            shuffle_records=int(payload.get("shuffle_records", 0)),
            shuffle_bytes=int(payload.get("shuffle_bytes", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            attempt=int(payload.get("attempt", 0)),
        )
        lost = payload.get("lost", {})
        if lost.get("keys"):
            result.extras["lost_keys"] = [int(k) for k in lost["keys"]]
            result.extras["lost_reasons"] = {
                int(k): v for k, v in lost.get("reasons", {}).items()
            }
            result.extras["lost_floors"] = {
                int(k): v for k, v in lost.get("floors", {}).items()
            }
            result.extras["reduce_input_records"] = {
                int(k): v for k, v in lost.get("records", {}).items()
            }
        return result

    # ------------------------------------------------------------------
    # degradation
    # ------------------------------------------------------------------
    @staticmethod
    def _candidate_blocks(
        result: JobResult, dimensions: int
    ) -> List[Block]:
        blocks = [
            value
            for _key, value in sorted(result.outputs.items())
            if isinstance(value, Block) and value.size > 0
        ]
        return blocks or [Block.empty(dimensions)]

    @staticmethod
    def _mask_uncertain(
        skyline: Block, result1: JobResult
    ) -> Tuple[Block, int]:
        """Drop merged points a lost group's records could dominate.

        Every record a lost reducer held is ``>=`` its key's floor in
        each dimension, so a merged point the floor does *not* dominate
        is certainly undominated by the lost group — what survives this
        mask is a certified subset of the true skyline.
        """
        floors = result1.extras.get("lost_floors", {})
        if not floors or skyline.size == 0:
            return skyline, 0
        uncertain = np.zeros(skyline.size, dtype=bool)
        for floor in floors.values():
            f = np.asarray(floor, dtype=np.float64)
            dominated = (
                (f <= skyline.points).all(axis=1)
                & (f < skyline.points).any(axis=1)
            )
            uncertain |= dominated
        if not uncertain.any():
            return skyline, 0
        return skyline.select(~uncertain), int(uncertain.sum())

    @staticmethod
    def _degradation_meta(
        result1: JobResult, lost_keys: List[int], masked: int
    ) -> Dict[str, Any]:
        records = result1.extras.get("reduce_input_records", {})
        total_records = sum(records.values())
        lost_records = sum(records.get(key, 0) for key in lost_keys)
        groups_total = len(records) if records else len(lost_keys)
        groups_lost = sorted(int(k) for k in lost_keys)
        completed = max(groups_total - len(groups_lost), 0)
        coverage = (
            (total_records - lost_records) / total_records
            if total_records
            else 0.0
        )
        return {
            "groups_total": groups_total,
            "groups_completed": completed,
            "groups_lost": groups_lost,
            "completeness": (
                completed / groups_total if groups_total else 0.0
            ),
            "candidate_coverage": coverage,
            # the lost groups' routed regions were never locally merged:
            # each may still hide true skyline points
            "uncertain_regions": groups_lost,
            "masked_candidates": int(masked),
            "lost_reasons": {
                str(k): v
                for k, v in result1.extras.get("lost_reasons", {}).items()
            },
        }


def supervised_run(
    plan: str,
    data: Union[Dataset, Sequence[Sequence[float]]],
    ids: Optional[Sequence[int]] = None,
    supervisor: Optional[SupervisorConfig] = None,
    **config_kwargs: object,
) -> RunReport:
    """One-call convenience mirroring :func:`repro.pipeline.driver.run_plan`."""
    config = EngineConfig.from_plan_string(plan, **config_kwargs)
    with PipelineSupervisor(config, supervisor) as driver:
        return driver.run(data, ids=ids)
