"""The end-to-end skyline engine.

:class:`SkylineEngine` wires the three phases over the simulated
platform and returns a :class:`RunReport` carrying the final skyline and
every measurement the paper's figures plot: per-phase wall and abstract
cost, candidate counts, shuffle volume, prefilter/pruning counts, worker
skew, and preprocessing time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.job import FAULT_COUNTER_KEYS
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import JobResult
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block, split_dataset
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.pipeline.phase1 import make_phase1_job
from repro.pipeline.phase2 import make_phase2_job
from repro.pipeline.plans import PlanConfig, parse_plan
from repro.pipeline.preprocess import PreprocessResult, preprocess
from repro.zorder.encoding import quantize_dataset


@dataclass
class EngineConfig:
    """Tunable knobs of a run (defaults follow the paper's setup where
    one exists: M=32 groups, 2% sample)."""

    plan: PlanConfig
    num_groups: int = 32
    num_workers: int = 8
    sample_ratio: float = 0.02
    bits_per_dim: int = 12
    expansion: int = 4
    seed: int = 0
    num_input_splits: Optional[int] = None
    slowdown_factors: Optional[Sequence[float]] = None
    speculative: bool = False
    failed_workers: Optional[Sequence[int]] = None
    #: seeded fault-injection schedule (also accepts a spec string such
    #: as ``"seed=7,task=0.1,crash=0.2,corrupt=0.05"``); works on both
    #: executors — the keyed-draw schedule is thread-order independent
    fault_plan: Optional[FaultPlan] = None
    #: "simulated" (sequential, deterministic, supports fault injection),
    #: "threaded" (thread-per-worker parallelism), or "procpool"
    #: (process-per-worker multicore parallelism); see ``EXECUTORS``
    executor: str = "simulated"
    #: JSONL span-trace output path; setting it enables tracing
    trace_out: Optional[str] = None
    #: JSONL metrics output path (counters + timers + histograms)
    metrics_out: Optional[str] = None
    #: explicit tracer instance (enables tracing even without
    #: ``trace_out``; useful for in-process inspection in tests)
    tracer: Optional[Tracer] = None

    @classmethod
    def from_plan_string(cls, plan: str, **kwargs: object) -> "EngineConfig":
        return cls(plan=parse_plan(plan), **kwargs)  # type: ignore[arg-type]

    def resolve_tracer(self) -> Tracer:
        """The tracer a run should use: the explicit one, a fresh one
        when ``trace_out`` asks for an export, else the shared no-op."""
        if self.tracer is not None:
            return self.tracer
        if self.trace_out is not None:
            return Tracer()
        return NULL_TRACER

    @property
    def observability_enabled(self) -> bool:
        return (
            self.tracer is not None
            or self.trace_out is not None
            or self.metrics_out is not None
        )

    def __post_init__(self) -> None:
        if self.num_groups <= 0 or self.num_workers <= 0:
            raise ConfigurationError(
                "num_groups and num_workers must be positive"
            )
        if not (0.0 < self.sample_ratio <= 1.0):
            raise ConfigurationError("sample_ratio must be in (0, 1]")
        if self.executor not in EXECUTORS:
            names = ", ".join(repr(name) for name in sorted(EXECUTORS))
            raise ConfigurationError(
                f"executor must be one of {names}; got {self.executor!r}"
            )
        if self.executor != "simulated" and (
            self.slowdown_factors is not None
            or self.speculative
            or self.failed_workers is not None
        ):
            raise ConfigurationError(
                "straggler injection and speculation need the simulated "
                "executor (FaultPlan injection works on all executors)"
            )
        if isinstance(self.fault_plan, str):
            self.fault_plan = FaultPlan.parse(self.fault_plan)
        elif self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise ConfigurationError(
                "fault_plan must be a FaultPlan or a spec string"
            )


@dataclass
class RunReport:
    """Outcome + measurements of one end-to-end run."""

    plan: PlanConfig
    skyline: Block
    preprocess_result: PreprocessResult
    phase1: JobResult
    phase2: JobResult
    total_seconds: float
    details: Dict[str, object] = field(default_factory=dict)
    #: first merge round of the parallel Z-merge extension (ZMP only)
    phase2_partial: Optional[JobResult] = None
    #: the run's span tracer (None when tracing was disabled)
    trace: Optional[Tracer] = None
    #: live histogram/counter observations collected during the run
    #: (per-task wall seconds, per-group candidates); None when off
    observed_metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------------
    # The quantities the paper's figures plot
    # ------------------------------------------------------------------
    @property
    def skyline_size(self) -> int:
        return self.skyline.size

    @property
    def num_candidates(self) -> int:
        """Skyline candidates emitted by phase 1 (Figure 9's metric)."""
        return self.phase1.counters.get("phase1", "candidates")

    @property
    def preprocess_seconds(self) -> float:
        return self.preprocess_result.seconds

    @property
    def phase1_seconds(self) -> float:
        return self.phase1.elapsed_seconds

    @property
    def merge_seconds(self) -> float:
        """Phase-2 time (Figure 8's metric); includes ZMP's first round."""
        extra = (
            self.phase2_partial.elapsed_seconds
            if self.phase2_partial is not None
            else 0.0
        )
        return self.phase2.elapsed_seconds + extra

    @property
    def phase1_makespan_cost(self) -> int:
        """Slowest phase-1 reducer's abstract cost — the straggler view."""
        return self.phase1.reduce_metrics.makespan_cost

    @property
    def merge_cost(self) -> int:
        partial = (
            self.phase2_partial.reduce_metrics.total_cost
            if self.phase2_partial is not None
            else 0
        )
        return self.phase2.reduce_metrics.total_cost + partial

    @property
    def merge_makespan_cost(self) -> int:
        """Makespan of the merge stage (partial + final rounds)."""
        partial = (
            self.phase2_partial.map_metrics.makespan_cost
            + self.phase2_partial.reduce_metrics.makespan_cost
            if self.phase2_partial is not None
            else 0
        )
        return (
            partial
            + self.phase2.map_metrics.makespan_cost
            + self.phase2.reduce_metrics.makespan_cost
        )

    @property
    def total_cost(self) -> int:
        """End-to-end abstract cost (map+reduce of all jobs)."""
        total = (
            self.phase1.map_metrics.total_cost
            + self.phase1.reduce_metrics.total_cost
            + self.phase2.map_metrics.total_cost
            + self.phase2.reduce_metrics.total_cost
        )
        if self.phase2_partial is not None:
            total += (
                self.phase2_partial.map_metrics.total_cost
                + self.phase2_partial.reduce_metrics.total_cost
            )
        return total

    @property
    def makespan_cost(self) -> int:
        """Sum of per-phase makespans: the simulated distributed runtime."""
        return (
            self.phase1.map_metrics.makespan_cost
            + self.phase1.reduce_metrics.makespan_cost
            + self.merge_makespan_cost
        )

    @property
    def shuffle_records(self) -> int:
        partial = (
            self.phase2_partial.shuffle_records
            if self.phase2_partial is not None
            else 0
        )
        return (
            self.phase1.shuffle_records
            + self.phase2.shuffle_records
            + partial
        )

    @property
    def reducer_skew(self) -> float:
        """Max/mean abstract cost across phase-1 reduce workers."""
        return self.phase1.reduce_metrics.cost_skew()

    # ------------------------------------------------------------------
    # fault tolerance observability
    # ------------------------------------------------------------------
    def _jobs(self):
        jobs = [self.phase1, self.phase2]
        if self.phase2_partial is not None:
            jobs.append(self.phase2_partial)
        return jobs

    def merged_counters(self) -> MetricsRegistry:
        """Every executed job's counters folded into one registry —
        the cross-job aggregation the fault summary and metrics export
        read from."""
        merged = MetricsRegistry()
        for job in self._jobs():
            merged.absorb_counters(job.counters)
        return merged

    def fault_summary(self) -> Dict[str, int]:
        """Failure/recovery counters summed over every executed job
        (``"group.name" -> value``; all zero on a clean run)."""
        merged = self.merged_counters()
        return {
            f"{group}.{name}": merged.counter(group, name)
            for group, name in FAULT_COUNTER_KEYS
        }

    # ------------------------------------------------------------------
    # unified metrics
    # ------------------------------------------------------------------
    def metrics(self) -> MetricsRegistry:
        """The run's unified metrics: job counters, stage timers, and
        load-balance histograms, merged with whatever was observed live
        (per-task wall seconds, per-group candidate counts).

        This is what ``--metrics-out`` exports; every quantity in
        :meth:`summary` is derivable from it.
        """
        registry = self.merged_counters()
        if self.observed_metrics is not None:
            registry.merge(self.observed_metrics)
        registry.record_time("preprocess.seconds", self.preprocess_seconds)
        registry.record_time("phase1.seconds", self.phase1_seconds)
        registry.record_time("merge.seconds", self.merge_seconds)
        registry.record_time("total.seconds", self.total_seconds)
        # Per-worker load balance (Figure 7's quantity) as histograms.
        for ledger in self.phase1.reduce_metrics.active_ledgers():
            registry.observe(
                "phase1.worker_wall_seconds", ledger.wall_seconds
            )
            registry.observe("phase1.worker_cost_units", ledger.cost_units)
        # Per-group candidate counts (Figure 9's quantity), recomputed
        # from the outputs when no live observation captured them.
        if self.observed_metrics is None or not self.observed_metrics.histogram(
            "phase1.group_candidates"
        ):
            for value in self.phase1.outputs.values():
                if isinstance(value, Block):
                    registry.observe("phase1.group_candidates", value.size)
        return registry

    @property
    def recovery_cost(self) -> int:
        """Abstract cost spent re-executing crash-lost map tasks."""
        return sum(job.recovery_cost for job in self._jobs())

    def summary(self) -> Dict[str, object]:
        """Flat dict of the headline numbers (bench harness rows),
        including the failure/recovery counters — a row from a faulty
        run is distinguishable from a clean one at a glance."""
        out = {
            "plan": self.plan.label,
            "skyline": self.skyline_size,
            "candidates": self.num_candidates,
            "prefiltered": self.phase1.counters.get(
                "phase1", "prefiltered_records"
            ),
            "dropped": self.phase1.counters.get("phase1", "dropped_records"),
            "shuffle_records": self.shuffle_records,
            "preprocess_s": round(self.preprocess_seconds, 4),
            "phase1_s": round(self.phase1_seconds, 4),
            "merge_s": round(self.merge_seconds, 4),
            "total_s": round(self.total_seconds, 4),
            "makespan_cost": self.makespan_cost,
            "reducer_skew": round(self.reducer_skew, 3),
            "recovery_cost": self.recovery_cost,
            # whole-job execution attempts: a supervisor-level stage
            # retry shows up here, so a retried run is distinguishable
            "phase1_attempt": self.phase1.attempt,
            "phase2_attempt": self.phase2.attempt,
        }
        out.update(self.fault_summary())
        return out


def _make_simulated(cfg: EngineConfig) -> SimulatedCluster:
    return SimulatedCluster(
        cfg.num_workers,
        slowdown_factors=cfg.slowdown_factors,
        speculative=cfg.speculative,
        failed_workers=cfg.failed_workers,
        fault_plan=cfg.fault_plan,
    )


def _make_threaded(cfg: EngineConfig) -> SimulatedCluster:
    from repro.mapreduce.parallel import ThreadedCluster

    return ThreadedCluster(cfg.num_workers, fault_plan=cfg.fault_plan)


def _make_procpool(cfg: EngineConfig) -> SimulatedCluster:
    from repro.mapreduce.procpool import ProcessPoolCluster

    return ProcessPoolCluster(cfg.num_workers, fault_plan=cfg.fault_plan)


#: executor plug-in registry: ``EngineConfig.executor`` selects one of
#: these factories; :func:`register_executor` adds new ones without
#: touching the engine (the executors are interchangeable because the
#: engine boundary is stateless — see :func:`execute`)
EXECUTORS: Dict[str, Callable[[EngineConfig], SimulatedCluster]] = {
    "simulated": _make_simulated,
    "threaded": _make_threaded,
    "procpool": _make_procpool,
}


def register_executor(
    name: str, factory: Callable[[EngineConfig], SimulatedCluster]
) -> None:
    """Register a cluster factory under an ``EngineConfig.executor`` name."""
    EXECUTORS[name] = factory


def make_cluster(cfg: EngineConfig) -> SimulatedCluster:
    """Build the configured executor (shared by engine and supervisor)."""
    try:
        factory = EXECUTORS[cfg.executor]
    except KeyError:
        names = ", ".join(repr(name) for name in sorted(EXECUTORS))
        raise ConfigurationError(
            f"executor must be one of {names}; got {cfg.executor!r}"
        ) from None
    return factory(cfg)


def export_observability(
    cfg: EngineConfig, report: RunReport
) -> None:
    """Write the JSONL trace/metrics files a config asked for."""
    if cfg.trace_out is not None and report.trace is not None:
        report.trace.export_jsonl(cfg.trace_out)
        report.details["trace_out"] = cfg.trace_out
    if cfg.metrics_out is not None:
        report.metrics().export_jsonl(cfg.metrics_out)
        report.details["metrics_out"] = cfg.metrics_out


class SkylineEngine:
    """Run the three-phase pipeline for one plan configuration."""

    def __init__(self, config: EngineConfig) -> None:
        self.config = config

    def run(self, dataset: Dataset) -> RunReport:
        """Compute the skyline of ``dataset`` end to end.

        The dataset is grid-snapped once (see
        :func:`repro.zorder.encoding.quantize_dataset`); the report's
        skyline holds grid coordinates with original row ids.
        """
        cfg = self.config
        started = time.perf_counter()
        tracer = cfg.resolve_tracer()
        registry = (
            MetricsRegistry() if cfg.observability_enabled else None
        )
        run_span = tracer.start_span(
            "run", plan=cfg.plan.label, n=dataset.size,
            d=dataset.dimensions,
        )

        snapped, codec = quantize_dataset(
            dataset, bits_per_dim=cfg.bits_per_dim
        )

        with tracer.span("preprocess", parent=run_span) as pre_span:
            pre = preprocess(
                snapped,
                codec,
                cfg.plan.partitioner,
                cfg.num_groups,
                sample_ratio=cfg.sample_ratio,
                expansion=cfg.expansion,
                seed=cfg.seed,
            )
            pre_span.update(
                sample_size=pre.sample.size,
                sample_skyline=int(pre.sample_skyline.shape[0]),
                seconds=pre.seconds,
            )

        cluster = make_cluster(cfg)
        cluster.observer = registry
        try:
            cache = DistributedCache()
            pre.publish(cache)
            runtime = MapReduceRuntime(
                cluster, dfs=InMemoryDFS(), cache=cache,
                fault_plan=cfg.fault_plan,
                tracer=tracer, metrics=registry,
            )

            splits = split_dataset(
                snapped, cfg.num_input_splits or cfg.num_workers * 2
            )

            job1 = make_phase1_job(cfg.plan)
            with tracer.span("phase1", parent=run_span) as stage_span:
                result1 = runtime.run(
                    job1, splits, output_path="phase1/candidates",
                    parent_span=stage_span,
                )

            candidate_blocks = [
                block
                for block in result1.outputs.values()
                if isinstance(block, Block) and block.size > 0
            ]
            if not candidate_blocks:
                candidate_blocks = [Block.empty(snapped.dimensions)]

            partial_result: Optional[JobResult] = None
            if cfg.plan.merge_algorithm == "ZMP":
                # Parallel merge extension: first fold candidate trees on
                # every worker, then fold the few partial skylines once.
                from repro.pipeline.phase2 import make_partial_merge_job

                partial_job = make_partial_merge_job(cfg.num_workers)
                with tracer.span(
                    "partial-merge", parent=run_span
                ) as stage_span:
                    partial_result = runtime.run(
                        partial_job, candidate_blocks,
                        parent_span=stage_span,
                    )
                candidate_blocks = [
                    block
                    for block in partial_result.outputs.values()
                    if isinstance(block, Block) and block.size > 0
                ] or [Block.empty(snapped.dimensions)]

            job2 = make_phase2_job(cfg.plan)
            with tracer.span("phase2", parent=run_span) as stage_span:
                result2 = runtime.run(
                    job2, candidate_blocks, output_path="skyline",
                    parent_span=stage_span,
                )
        finally:
            # Remote executors own worker processes; the in-process ones
            # make this a no-op.
            cluster.shutdown()

        skyline = result2.outputs.get(0, Block.empty(snapped.dimensions))
        # On the procpool path the per-worker deltas were merged back
        # into this stats object by the runtime, so the snapshot covers
        # remote work too.
        kernel_stats = codec.kernel_stats.snapshot()
        if registry is not None:
            # Which kernel path (uint64 fast vs packed-byte wide) served
            # this run, and how many rows went through it.
            for name, value in kernel_stats.items():
                registry.inc("zkernel", name, value)
        total_seconds = time.perf_counter() - started
        run_span.set("skyline", skyline.size)
        run_span.finish()
        report = RunReport(
            plan=cfg.plan,
            skyline=skyline,
            preprocess_result=pre,
            phase1=result1,
            phase2=result2,
            total_seconds=total_seconds,
            details={
                "n": dataset.size,
                "d": dataset.dimensions,
                "num_groups": pre.rule.num_groups,
                "num_workers": cfg.num_workers,
                "executor": cfg.executor,
                "kernel_stats": kernel_stats,
            },
            phase2_partial=partial_result,
            trace=tracer if tracer.enabled else None,
            observed_metrics=registry,
        )
        export_observability(cfg, report)
        return report


def run_plan(
    plan: str, dataset: Dataset, **config_kwargs: object
) -> RunReport:
    """One-call convenience: ``run_plan("ZDG+ZS+ZM", dataset)``."""
    config = EngineConfig.from_plan_string(plan, **config_kwargs)
    return SkylineEngine(config).run(dataset)


# ----------------------------------------------------------------------
# the stateless engine boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """A pure, picklable description of one engine run.

    ``execute(request)`` is a function of this value alone: the engine
    keeps no per-run instance state, so requests can be executed in any
    process — the coordinator, a worker, a batch harness — and under any
    registered executor interchangeably.  Live observability handles
    (an explicit ``tracer`` instance) are rejected because they cannot
    cross a process boundary; use ``trace_out`` / ``metrics_out`` file
    exports instead.
    """

    dataset: Dataset
    config: EngineConfig

    def __post_init__(self) -> None:
        if self.config.tracer is not None:
            raise ConfigurationError(
                "RunRequest must be pure data: pass trace_out instead of "
                "a live tracer instance"
            )


@dataclass
class RunResult:
    """The picklable distillation of a :class:`RunReport`.

    Everything here is plain data (the skyline block, the summary row,
    merged counters, and the kernel-stats snapshot carried explicitly —
    ``KernelStats`` pickles empty by design, so the stats ride this
    result instead of the codec).
    """

    plan: str
    executor: str
    skyline: Block
    summary: Dict[str, object]
    counters: Dict[str, Dict[str, int]]
    kernel_stats: Dict[str, int]
    details: Dict[str, object]

    @classmethod
    def from_report(cls, report: RunReport) -> "RunResult":
        merged = Counters()
        for job in report._jobs():
            merged.merge(job.counters)
        details = dict(report.details)
        kernel_stats = dict(details.pop("kernel_stats", {}))
        return cls(
            plan=report.plan.label,
            executor=str(details.get("executor", "simulated")),
            skyline=report.skyline,
            summary=report.summary(),
            counters=merged.as_dict(),
            kernel_stats=kernel_stats,
            details=details,
        )


def execute(request: RunRequest) -> RunResult:
    """Run one request end to end: the stateless engine entry point."""
    report = SkylineEngine(request.config).run(request.dataset)
    return RunResult.from_report(report)
