"""Plan advisor: pick a strategy from cheap sample statistics.

A small optimizer in the spirit of the paper's findings: the best
strategy depends on the workload regime (§6) —

* high dimensionality or a fat skyline makes the *merge* the
  bottleneck, so Z-merge (parallel ZMP when many workers are available)
  matters most;
* strongly correlated data is almost entirely removed by the SZB
  prefilter, so the cheap sort-based local algorithm suffices;
* otherwise Z-search locals with the standard Z-merge are the solid
  default.

The advisor measures a reservoir sample (never the full data) and
returns the plan plus its reasoning, so callers can override it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.distribution import workload_profile
from repro.core.dataset import Dataset
from repro.partitioning.sampling import reservoir_sample
from repro.pipeline.plans import PlanConfig, parse_plan

_HIGH_DIMENSIONALITY = 7
_FAT_SKYLINE_FRACTION = 0.15
_STRONG_CORRELATION = 0.30
_MAX_ADVISOR_SAMPLE = 2000


@dataclass
class Advice:
    """The advisor's recommendation."""

    plan: PlanConfig
    num_groups: int
    rationale: List[str] = field(default_factory=list)

    def plan_string(self) -> str:
        return self.plan.label


def advise(
    dataset: Dataset,
    num_workers: int = 8,
    sample_ratio: float = 0.02,
    seed: int = 0,
) -> Advice:
    """Recommend a plan and group count for a dataset."""
    size = min(
        _MAX_ADVISOR_SAMPLE, max(50, int(dataset.size * sample_ratio))
    )
    sample = reservoir_sample(dataset, size=size, seed=seed)
    profile = workload_profile(sample)
    rationale: List[str] = [
        f"sampled {sample.size} of {dataset.size} points",
        f"estimated skyline fraction {profile['skyline_fraction']:.3f}, "
        f"mean pairwise correlation "
        f"{profile['mean_pairwise_correlation']:.2f}",
    ]

    d = dataset.dimensions
    fat_skyline = profile["skyline_fraction"] >= _FAT_SKYLINE_FRACTION
    correlated = (
        profile["mean_pairwise_correlation"] >= _STRONG_CORRELATION
    )

    if d >= _HIGH_DIMENSIONALITY or fat_skyline:
        merge = "ZMP" if num_workers > 1 else "ZM"
        plan = parse_plan(f"ZDG+ZS+{merge}")
        rationale.append(
            f"high-dimensional / fat-skyline regime (d={d}): the merge "
            f"dominates, so Z-merge ({merge}) is decisive"
        )
    elif correlated:
        plan = parse_plan("ZDG+SB+ZM")
        rationale.append(
            "strongly correlated data: the SZB prefilter removes most "
            "points, a sort-based local pass suffices"
        )
    else:
        plan = parse_plan("ZDG+ZS+ZM")
        rationale.append("default regime: dominance grouping + Z-search")

    num_groups = max(num_workers * 4, 8)
    rationale.append(
        f"{num_groups} groups (~4 per worker) keeps reducers busy "
        "without exploding candidate counts"
    )
    return Advice(plan=plan, num_groups=num_groups, rationale=rationale)
