"""Versioned on-disk checkpoints for the three-phase pipeline.

A checkpoint directory holds one run's durable lineage (cf. RDD
checkpointing): a JSON **manifest** describing which stages completed —
written atomically via tmp+rename so a crash mid-write never corrupts an
existing checkpoint — plus one ``.npz`` payload file per checkpointed
:class:`~repro.mapreduce.types.Block`, each guarded by the block's CRC32
(:meth:`Block.checksum`), mirroring HDFS's per-block CRC files.

Layout::

    <root>/manifest.json            # version, run key, stage records
    <root>/blocks/<stage>-NNNN.npz  # ids + points arrays per block

The manifest's ``run_key`` fingerprints the inputs that determine the
result (plan, dataset checksum, grouping knobs, seed): resuming against
a checkpoint written for different inputs is a
:class:`~repro.core.exceptions.ConfigurationError`, as is an unknown
``version`` or a payload whose CRC no longer matches.

Partition rules and codecs are serialised through the existing
:mod:`repro.pipeline.serialization` codecs, so the checkpointed phase-0
rule is exactly the wire format a real deployment would ship to its
mappers.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.mapreduce.types import Block

_FORMAT_VERSION = 1

#: stage names, in pipeline order
STAGE_PREPROCESS = "preprocess"
STAGE_PHASE1 = "phase1"
STAGE_PARTIAL_MERGE = "partial_merge"
STAGE_FINAL = "final"
STAGE_ORDER: Tuple[str, ...] = (
    STAGE_PREPROCESS, STAGE_PHASE1, STAGE_PARTIAL_MERGE, STAGE_FINAL
)

_MANIFEST = "manifest.json"
_BLOCKS_DIR = "blocks"


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write via tmp file + ``os.replace`` so readers never observe a
    half-written file (the crash-consistency contract of the store).

    Shared by this store and the serving tier's WAL/durable-snapshot
    store (:mod:`repro.serving.wal`) so every durable artefact in the
    repo has the same torn-write guarantee.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


#: backwards-compatible private alias (pre-serving-tier name)
_atomic_write_bytes = atomic_write_bytes


class CheckpointStore:
    """Durable stage artefacts of one pipeline run."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(os.path.join(root, _BLOCKS_DIR), exist_ok=True)
        self._manifest: Optional[Dict[str, Any]] = self._read_manifest()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, _MANIFEST)

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        if not os.path.exists(self.manifest_path):
            return None
        with open(self.manifest_path, "r") as handle:
            try:
                manifest = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"checkpoint manifest {self.manifest_path!r} is not "
                    f"valid JSON: {exc}"
                ) from exc
        version = manifest.get("version")
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported checkpoint format version {version!r} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        return manifest

    def _write_manifest(self) -> None:
        assert self._manifest is not None
        payload = json.dumps(self._manifest, indent=1).encode("utf-8")
        _atomic_write_bytes(self.manifest_path, payload)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self, run_key: Dict[str, Any], resume: bool) -> List[str]:
        """Open the store for a run; returns the resumable stage names.

        ``resume=True`` keeps completed stages but requires the stored
        run key to match (resuming a checkpoint written for a different
        plan/dataset/config would silently produce a wrong skyline).
        ``resume=False`` discards any previous content.
        """
        # JSON round-trip normalises types (tuples->lists, int keys->str)
        # so stored and freshly-built keys compare structurally.
        run_key = json.loads(json.dumps(run_key))
        if resume and self._manifest is not None:
            stored = self._manifest.get("run_key")
            if stored != run_key:
                raise ConfigurationError(
                    "checkpoint run key mismatch: the checkpoint was "
                    f"written for {stored!r} but this run is {run_key!r}; "
                    "refusing to resume"
                )
            return self.completed_stages()
        self._manifest = {
            "version": _FORMAT_VERSION,
            "run_key": run_key,
            "stages": {},
        }
        self._clear_blocks()
        self._write_manifest()
        return []

    def _clear_blocks(self) -> None:
        blocks_dir = os.path.join(self.root, _BLOCKS_DIR)
        for name in os.listdir(blocks_dir):
            if name.endswith(".npz"):
                os.remove(os.path.join(blocks_dir, name))

    def completed_stages(self) -> List[str]:
        """Durable stages, in pipeline order."""
        if self._manifest is None:
            return []
        stages = self._manifest.get("stages", {})
        return [name for name in STAGE_ORDER if name in stages]

    def has_stage(self, stage: str) -> bool:
        return (
            self._manifest is not None
            and stage in self._manifest.get("stages", {})
        )

    # ------------------------------------------------------------------
    # stage records
    # ------------------------------------------------------------------
    def save_stage(
        self,
        stage: str,
        payload: Optional[Dict[str, Any]] = None,
        blocks: Optional[List[Tuple[int, Block]]] = None,
    ) -> None:
        """Persist one completed stage: JSON payload + keyed blocks.

        Every block lands in its own ``.npz`` (tmp+rename) with its
        CRC32 recorded in the manifest; the manifest itself is rewritten
        last, so a stage is either fully durable or absent.
        """
        if stage not in STAGE_ORDER:
            raise ConfigurationError(f"unknown checkpoint stage {stage!r}")
        if self._manifest is None:
            raise ConfigurationError(
                "checkpoint store not opened; call begin() first"
            )
        entries = []
        for index, (key, block) in enumerate(blocks or []):
            name = f"{stage}-{index:04d}.npz"
            path = os.path.join(self.root, _BLOCKS_DIR, name)
            tmp = f"{path}.tmp.npz"
            arrays = {"ids": block.ids, "points": block.points}
            if block.zaddresses is not None:
                # Carried Z-addresses persist too, so a resumed run's
                # phase 2 never re-encodes candidates.  Older payloads
                # without the array load fine (the field is derived).
                arrays["zaddresses"] = block.zaddresses
            np.savez(tmp, **arrays)
            os.replace(tmp, path)
            entries.append(
                {
                    "file": name,
                    "key": int(key),
                    "crc32": block.checksum(),
                    "records": block.size,
                    "dimensions": block.dimensions,
                }
            )
        self._manifest["stages"][stage] = {
            "payload": payload or {},
            "blocks": entries,
        }
        self._write_manifest()

    def stage_payload(self, stage: str) -> Dict[str, Any]:
        if not self.has_stage(stage):
            raise ConfigurationError(
                f"checkpoint has no completed stage {stage!r}"
            )
        assert self._manifest is not None
        return self._manifest["stages"][stage]["payload"]

    def load_blocks(self, stage: str) -> List[Tuple[int, Block]]:
        """Read a stage's keyed blocks back, verifying every CRC."""
        if not self.has_stage(stage):
            raise ConfigurationError(
                f"checkpoint has no completed stage {stage!r}"
            )
        assert self._manifest is not None
        out: List[Tuple[int, Block]] = []
        for entry in self._manifest["stages"][stage]["blocks"]:
            path = os.path.join(self.root, _BLOCKS_DIR, entry["file"])
            if not os.path.exists(path):
                raise ConfigurationError(
                    f"checkpoint block {entry['file']!r} is missing"
                )
            with np.load(path) as payload:
                zaddresses = (
                    payload["zaddresses"] if "zaddresses" in payload else None
                )
                block = Block(
                    payload["ids"], payload["points"], zaddresses=zaddresses
                )
            if block.checksum() != entry["crc32"]:
                raise ConfigurationError(
                    f"checkpoint block {entry['file']!r} failed its CRC "
                    "check; the checkpoint is corrupt"
                )
            out.append((int(entry["key"]), block))
        return out
