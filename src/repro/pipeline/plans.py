"""Plan strings: the paper's strategy names.

The evaluation names strategies ``<Partitioner>+<LocalAlgo>[+<Merge>]``:
``Grid+SB``, ``Angle+ZS``, ``ZDG+ZS+ZM`` and so on.  :func:`parse_plan`
turns such a string into a :class:`PlanConfig`.

Defaults: the merge algorithm is ``ZS`` unless named (the benchmarks set
``ZM`` exactly where the paper does), and the SZB-tree mapper prefilter
is enabled for the Z-order family only — it requires the sample skyline
computed by the Z-order preprocessing and is part of the paper's
approach, not of the Grid/Angle baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.core.exceptions import ConfigurationError

_PARTITIONER_ALIASES: Dict[str, str] = {
    "GRID": "grid",
    "ANGLE": "angle",
    "RANDOM": "random",
    "NAIVE-Z": "naive-z",
    "NAIVEZ": "naive-z",
    "NZ": "naive-z",
    "ZHG": "zhg",
    "ZDG": "zdg",
    "GRID-GROUPED": "grid-grouped",
    "GRIDG": "grid-grouped",
    "ANGLE-GROUPED": "angle-grouped",
    "ANGLEG": "angle-grouped",
    "KDTREE": "kdtree",
    "KD": "kdtree",
    "KDTREE-GROUPED": "kdtree-grouped",
    "KDG": "kdtree-grouped",
}

_LOCAL_ALGOS = {"SB", "ZS", "BNL", "DNC", "BBS", "SALSA"}
_MERGE_ALGOS = {"ZM", "ZMP", "ZS", "SB", "BNL"}
#: strategies that ship the sample skyline to mappers for prefiltering
#: (the Z-order family, plus the generic-grouping ablation variants so
#: grouping comparisons are apples-to-apples)
_Z_FAMILY = {
    "naive-z", "zhg", "zdg",
    "grid-grouped", "angle-grouped", "kdtree-grouped",
}


@dataclass(frozen=True)
class PlanConfig:
    """A fully resolved strategy."""

    partitioner: str
    local_algorithm: str
    merge_algorithm: str
    prefilter: bool
    label: str = field(default="")

    def __post_init__(self) -> None:
        if self.partitioner not in set(_PARTITIONER_ALIASES.values()):
            raise ConfigurationError(
                f"unknown partitioner {self.partitioner!r}"
            )
        if self.local_algorithm not in _LOCAL_ALGOS:
            raise ConfigurationError(
                f"unknown local algorithm {self.local_algorithm!r}"
            )
        if self.merge_algorithm not in _MERGE_ALGOS:
            raise ConfigurationError(
                f"unknown merge algorithm {self.merge_algorithm!r}"
            )
        if not self.label:
            object.__setattr__(self, "label", self.plan_string())

    def plan_string(self) -> str:
        """Canonical paper-style name."""
        inverse = {v: k for k, v in _PARTITIONER_ALIASES.items()}
        part = inverse.get(self.partitioner, self.partitioner).title()
        return f"{part}+{self.local_algorithm}+{self.merge_algorithm}"

    def with_merge(self, merge_algorithm: str) -> "PlanConfig":
        """Copy of this plan with a different merge stage."""
        return replace(
            self, merge_algorithm=merge_algorithm.upper(), label=""
        )


def parse_plan(plan: str) -> PlanConfig:
    """Parse ``"ZDG+ZS+ZM"``-style strings (case-insensitive)."""
    parts = [token.strip().upper() for token in plan.split("+")]
    if not (2 <= len(parts) <= 3):
        raise ConfigurationError(
            f"plan {plan!r} must look like '<Partitioner>+<Local>[+<Merge>]'"
        )
    part_token = parts[0]
    if part_token not in _PARTITIONER_ALIASES:
        raise ConfigurationError(
            f"unknown partitioner {parts[0]!r} in plan {plan!r}; "
            f"choose one of {sorted(_PARTITIONER_ALIASES)}"
        )
    partitioner = _PARTITIONER_ALIASES[part_token]
    local = parts[1]
    if local not in _LOCAL_ALGOS:
        raise ConfigurationError(
            f"unknown local algorithm {parts[1]!r} in plan {plan!r}"
        )
    merge = parts[2] if len(parts) == 3 else "ZS"
    if merge not in _MERGE_ALGOS:
        raise ConfigurationError(
            f"unknown merge algorithm {parts[2]!r} in plan {plan!r}"
        )
    return PlanConfig(
        partitioner=partitioner,
        local_algorithm=local,
        merge_algorithm=merge,
        prefilter=partitioner in _Z_FAMILY,
        label=plan,
    )
