"""Side-by-side strategy comparison (programmatic + CLI ``compare``).

Runs several plans on one dataset and tabulates the measurements the
paper's evaluation revolves around.  Verifies that all strategies agree
on the skyline — a cheap end-to-end cross-check that has caught real
bugs in development.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable, run_plan_measured
from repro.core.dataset import Dataset
from repro.core.exceptions import ReproError

DEFAULT_PLANS = (
    "Grid+ZS",
    "Angle+ZS",
    "KDTree+ZS",
    "Naive-Z+ZS",
    "ZHG+ZS",
    "ZDG+ZS+ZM",
    "ZDG+ZS+ZMP",
    "MR-GPMRS",
)


def compare_plans(
    dataset: Dataset,
    plans: Sequence[str] = DEFAULT_PLANS,
    num_groups: int = 32,
    num_workers: int = 8,
    seed: int = 0,
    verify_agreement: bool = True,
    **engine_kwargs: object,
) -> ResultTable:
    """Run every plan on ``dataset`` and return a comparison table."""
    table = ResultTable(
        f"Strategy comparison on {dataset.name}",
        [
            "plan", "skyline", "candidates", "shuffle_records",
            "reducer_skew", "makespan_cost", "total_cost", "wall_s",
        ],
    )
    skyline_sizes = set()
    for plan in plans:
        report = run_plan_measured(
            plan,
            dataset,
            num_groups=num_groups,
            num_workers=num_workers,
            seed=seed,
            **engine_kwargs,  # type: ignore[arg-type]
        )
        skyline_sizes.add(report.skyline_size)
        table.add(
            plan=plan,
            skyline=report.skyline_size,
            candidates=report.num_candidates,
            shuffle_records=report.shuffle_records,
            reducer_skew=round(report.reducer_skew, 3),
            makespan_cost=report.makespan_cost,
            total_cost=report.total_cost,
            wall_s=round(report.total_seconds, 3),
        )
    if verify_agreement and len(skyline_sizes) > 1:
        raise ReproError(
            f"strategies disagree on the skyline size: {skyline_sizes}"
        )
    return table
