"""The paper's three-phase distributed skyline engine.

* :mod:`repro.pipeline.plans` — named strategies ("ZDG+ZS+ZM",
  "Grid+SB", ...) parsed into a :class:`~repro.pipeline.plans.PlanConfig`;
* :mod:`repro.pipeline.preprocess` — phase 0 on the master: sample,
  sample skyline, partition rule, group map (§5.1);
* :mod:`repro.pipeline.phase1` — the 1st MapReduce job computing skyline
  candidates (Algorithm 3 + combiners, §5.2);
* :mod:`repro.pipeline.phase2` — the 2nd MapReduce job merging
  candidates via Z-merge / Z-search / sort-based (§5.3);
* :mod:`repro.pipeline.driver` — :class:`~repro.pipeline.driver.SkylineEngine`
  tying the phases together and producing a
  :class:`~repro.pipeline.driver.RunReport`;
* :mod:`repro.pipeline.gpmrs` — the MR-GPMRS baseline (grid + bitstring
  + multi-reducer merge) [12];
* :mod:`repro.pipeline.checkpoint` — versioned on-disk stage
  checkpoints (atomic manifest + CRC-guarded block payloads);
* :mod:`repro.pipeline.supervisor` — the checkpointed, resumable,
  gracefully-degrading driver around the same three phases.
"""

from repro.pipeline.advisor import Advice, advise
from repro.pipeline.checkpoint import CheckpointStore
from repro.pipeline.compare import compare_plans
from repro.pipeline.driver import EngineConfig, RunReport, SkylineEngine
from repro.pipeline.gpmrs import run_gpmrs
from repro.pipeline.plans import PlanConfig, parse_plan
from repro.pipeline.preprocess import PreprocessResult, preprocess
from repro.pipeline.ranking_job import distributed_dominance_scores
from repro.pipeline.serialization import (
    report_to_json,
    rule_from_json,
    rule_to_json,
)
from repro.pipeline.supervisor import (
    PartialRunReport,
    PipelineSupervisor,
    SupervisorConfig,
    supervised_run,
)

__all__ = [
    "Advice",
    "CheckpointStore",
    "EngineConfig",
    "PartialRunReport",
    "PipelineSupervisor",
    "PlanConfig",
    "PreprocessResult",
    "RunReport",
    "SkylineEngine",
    "SupervisorConfig",
    "advise",
    "compare_plans",
    "distributed_dominance_scores",
    "parse_plan",
    "preprocess",
    "report_to_json",
    "rule_from_json",
    "rule_to_json",
    "run_gpmrs",
    "supervised_run",
]
