"""R-tree structure and Sort-Tile-Recursive bulk loading.

STR (Leutenegger et al.) packs points into leaves by recursively sorting
and tiling one dimension at a time, producing a balanced tree with high
leaf utilisation — the standard way to build an R-tree for a static
dataset like a skyline workload.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.core.exceptions import ReproError
from repro.rtree.mbr import MBR

DEFAULT_LEAF_CAPACITY = 32
DEFAULT_FANOUT = 8


class RTreeLeaf:
    """Leaf node: a block of points with their ids."""

    __slots__ = ("points", "ids", "mbr")

    def __init__(self, points: np.ndarray, ids: np.ndarray) -> None:
        self.points = points
        self.ids = ids
        self.mbr = MBR.of_points(points)

    @property
    def is_leaf(self) -> bool:
        return True

    @property
    def size(self) -> int:
        return int(self.points.shape[0])


class RTreeInternal:
    """Internal node: children plus the covering MBR."""

    __slots__ = ("children", "mbr")

    def __init__(self, children: List["RTreeNode"]) -> None:
        self.children = children
        self.mbr = MBR.union([c.mbr for c in children])

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def size(self) -> int:
        return sum(c.size for c in self.children)


RTreeNode = Union[RTreeLeaf, RTreeInternal]


class RTree:
    """A bulk-loaded R-tree over a static point set."""

    def __init__(self, root: Optional[RTreeNode], dimensions: int) -> None:
        self.root = root
        self.dimensions = dimensions

    @property
    def is_empty(self) -> bool:
        return self.root is None

    @property
    def size(self) -> int:
        return 0 if self.root is None else self.root.size

    def height(self) -> int:
        h = 0
        node = self.root
        while node is not None:
            h += 1
            if node.is_leaf:
                break
            node = node.children[0]  # type: ignore[union-attr]
        return h

    def leaves(self) -> Iterator[RTreeLeaf]:
        if self.root is None:
            return
        stack: List[RTreeNode] = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node  # type: ignore[misc]
            else:
                stack.extend(node.children)  # type: ignore[union-attr]

    def range_query(self, box: MBR) -> np.ndarray:
        """Ids of all points inside ``box``."""
        if self.root is None:
            return np.empty(0, dtype=np.int64)
        hits: List[np.ndarray] = []
        stack: List[RTreeNode] = [self.root]
        while stack:
            node = stack.pop()
            if not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                inside = np.all(
                    (box.lower <= node.points)  # type: ignore[union-attr]
                    & (node.points <= box.upper),  # type: ignore[union-attr]
                    axis=1,
                )
                if inside.any():
                    hits.append(node.ids[inside])  # type: ignore[union-attr]
            else:
                stack.extend(node.children)  # type: ignore[union-attr]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def validate(self) -> None:
        """Structural invariants: MBR containment and balance."""
        if self.root is None:
            return
        depths = set()

        def walk(node: RTreeNode, depth: int) -> None:
            if node.is_leaf:
                depths.add(depth)
                for row in node.points:  # type: ignore[union-attr]
                    if not node.mbr.contains_point(row):
                        raise ReproError("leaf point escapes its MBR")
                return
            for child in node.children:  # type: ignore[union-attr]
                if not (
                    np.all(node.mbr.lower <= child.mbr.lower)
                    and np.all(child.mbr.upper <= node.mbr.upper)
                ):
                    raise ReproError("child MBR escapes parent MBR")
                walk(child, depth + 1)

        walk(self.root, 0)
        if len(depths) > 1:
            raise ReproError(f"unbalanced tree: leaf depths {sorted(depths)}")


def bulk_load_str(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    leaf_capacity: int = DEFAULT_LEAF_CAPACITY,
    fanout: int = DEFAULT_FANOUT,
) -> RTree:
    """Build an R-tree with Sort-Tile-Recursive packing."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ReproError(f"points must be 2-D; got shape {pts.shape}")
    if leaf_capacity < 2 or fanout < 2:
        raise ReproError("leaf_capacity and fanout must both be >= 2")
    n, d = pts.shape
    if ids is None:
        id_arr = np.arange(n, dtype=np.int64)
    else:
        id_arr = np.asarray(ids, dtype=np.int64)
        if id_arr.shape != (n,):
            raise ReproError("ids must match points length")
    if n == 0:
        return RTree(None, d)

    order = _str_order(pts, leaf_capacity)
    sorted_pts = pts[order]
    sorted_ids = id_arr[order]
    leaves: List[RTreeNode] = [
        RTreeLeaf(sorted_pts[i : i + leaf_capacity],
                  sorted_ids[i : i + leaf_capacity])
        for i in range(0, n, leaf_capacity)
    ]
    level: List[RTreeNode] = leaves
    while len(level) > 1:
        level = [
            RTreeInternal(level[i : i + fanout])
            for i in range(0, len(level), fanout)
        ]
    return RTree(level[0], d)


def _str_order(points: np.ndarray, leaf_capacity: int) -> np.ndarray:
    """Row ordering that tiles space dimension by dimension (STR)."""
    n, d = points.shape
    index = np.arange(n, dtype=np.int64)

    def recurse(idx: np.ndarray, dim: int) -> np.ndarray:
        if idx.size <= leaf_capacity or dim >= d:
            return idx
        idx = idx[np.argsort(points[idx, dim], kind="stable")]
        leaves_needed = math.ceil(idx.size / leaf_capacity)
        # Number of slabs along this dimension: the (d-dim)-th root of
        # the remaining leaf count.
        slabs = max(1, round(leaves_needed ** (1.0 / (d - dim))))
        slab_size = math.ceil(idx.size / slabs)
        pieces = [
            recurse(idx[i : i + slab_size], dim + 1)
            for i in range(0, idx.size, slab_size)
        ]
        return np.concatenate(pieces)

    return recurse(index, 0)
