"""R-tree substrate for the BBS skyline baseline.

The paper's related work ([2], Papadias et al.) computes skylines with
branch-and-bound search over an R-tree; BBS is the classic progressive
baseline every skyline paper compares against, so the substrate is built
here from scratch: minimum bounding rectangles, Sort-Tile-Recursive bulk
loading, and the tree structure with the queries BBS needs.
"""

from repro.rtree.mbr import MBR
from repro.rtree.tree import RTree, bulk_load_str

__all__ = ["MBR", "RTree", "bulk_load_str"]
