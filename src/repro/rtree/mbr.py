"""Minimum bounding rectangles with the dominance helpers BBS needs."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.exceptions import ReproError
from repro.core.point import dominates


class MBR:
    """An axis-aligned box ``[lower, upper]`` (inclusive corners)."""

    __slots__ = ("lower", "upper")

    def __init__(self, lower: Sequence[float], upper: Sequence[float]) -> None:
        lo = np.asarray(lower, dtype=np.float64)
        hi = np.asarray(upper, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ReproError("MBR corners must be 1-D arrays of equal length")
        if np.any(hi < lo):
            raise ReproError("MBR upper corner must be >= lower corner")
        self.lower = lo
        self.upper = hi

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """Tightest box around a non-empty point block."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ReproError("of_points needs a non-empty (n, d) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @classmethod
    def union(cls, boxes: Sequence["MBR"]) -> "MBR":
        """Smallest box covering all the given boxes."""
        if not boxes:
            raise ReproError("union of zero MBRs is undefined")
        lower = np.min([b.lower for b in boxes], axis=0)
        upper = np.max([b.upper for b in boxes], axis=0)
        return cls(lower, upper)

    @property
    def dimensions(self) -> int:
        return int(self.lower.shape[0])

    def mindist_key(self) -> float:
        """BBS priority: the L1 norm of the lower corner.

        Processing entries in ascending key guarantees no later entry can
        contain a dominator of an already-reported skyline point (a
        dominator has a strictly smaller coordinate sum).
        """
        return float(self.lower.sum())

    def contains_point(self, point: np.ndarray) -> bool:
        p = np.asarray(point)
        return bool(np.all(self.lower <= p) and np.all(p <= self.upper))

    def intersects(self, other: "MBR") -> bool:
        return bool(
            np.all(self.lower <= other.upper)
            and np.all(other.lower <= self.upper)
        )

    def all_points_dominated_by(self, point: np.ndarray) -> bool:
        """True when ``point`` dominates the lower corner — then it
        dominates every point inside the box."""
        return dominates(point, self.lower)

    def area(self) -> float:
        return float(np.prod(self.upper - self.lower))

    def __repr__(self) -> str:
        return f"MBR({self.lower.tolist()}, {self.upper.tolist()})"
