"""The :class:`Dataset` container.

A dataset is an immutable ``(n, d)`` float64 matrix plus stable integer row
identifiers.  Identifiers survive partitioning, shuffling, and merging, so a
skyline result can always be traced back to the original input rows — the
distributed pipeline moves ``(id, point)`` records around, exactly like rows
with keys in the paper's MapReduce implementation.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError


class Dataset:
    """An immutable multidimensional dataset with stable row identifiers.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``; copied and frozen.
    ids:
        Optional integer identifiers, one per row.  Defaults to
        ``0..n-1``.  Must be unique.
    name:
        Optional human-readable label used in reports.
    """

    __slots__ = ("_points", "_ids", "name")

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        ids: Optional[Sequence[int]] = None,
        name: str = "dataset",
    ) -> None:
        arr = np.array(points, dtype=np.float64, copy=True)
        if arr.ndim != 2:
            raise DatasetError(
                f"points must be 2-D (n, d); got shape {arr.shape}"
            )
        if arr.shape[0] == 0:
            raise DatasetError("dataset must contain at least one point")
        if arr.shape[1] == 0:
            raise DatasetError("dataset must have at least one dimension")
        if not np.isfinite(arr).all():
            raise DatasetError("dataset contains NaN or infinite values")
        if ids is None:
            id_arr = np.arange(arr.shape[0], dtype=np.int64)
        else:
            id_arr = np.array(ids, dtype=np.int64, copy=True)
            if id_arr.shape != (arr.shape[0],):
                raise DatasetError(
                    "ids must be a 1-D array with one entry per point; got "
                    f"shape {id_arr.shape} for {arr.shape[0]} points"
                )
            if len(np.unique(id_arr)) != len(id_arr):
                raise DatasetError("ids must be unique")
        arr.setflags(write=False)
        id_arr.setflags(write=False)
        self._points = arr
        self._ids = id_arr
        self.name = name

    @property
    def points(self) -> np.ndarray:
        """The read-only ``(n, d)`` point matrix."""
        return self._points

    @property
    def ids(self) -> np.ndarray:
        """The read-only ``(n,)`` identifier vector."""
        return self._ids

    @property
    def size(self) -> int:
        """Number of points ``n``."""
        return int(self._points.shape[0])

    @property
    def dimensions(self) -> int:
        """Number of dimensions ``d``."""
        return int(self._points.shape[1])

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate over ``(id, point)`` pairs."""
        for i in range(self.size):
            yield int(self._ids[i]), self._points[i]

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n={self.size}, "
            f"d={self.dimensions})"
        )

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the bounding box as ``(mins, maxs)`` arrays."""
        return self._points.min(axis=0), self._points.max(axis=0)

    def select(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """Return a sub-dataset of the given row *positions* (not ids)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise DatasetError("cannot select an empty subset")
        return Dataset(
            self._points[idx],
            ids=self._ids[idx],
            name=name or f"{self.name}[subset]",
        )

    def select_by_mask(self, mask: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a sub-dataset of rows where ``mask`` is True."""
        if mask.dtype != np.bool_ or mask.shape != (self.size,):
            raise DatasetError("mask must be a boolean array of length n")
        return self.select(np.flatnonzero(mask), name=name)

    @staticmethod
    def concat(parts: Sequence["Dataset"], name: str = "concat") -> "Dataset":
        """Concatenate datasets, preserving ids (which must stay unique)."""
        if not parts:
            raise DatasetError("cannot concatenate zero datasets")
        dims = {p.dimensions for p in parts}
        if len(dims) != 1:
            raise DatasetError(f"dimension mismatch across parts: {dims}")
        points = np.vstack([p.points for p in parts])
        ids = np.concatenate([p.ids for p in parts])
        return Dataset(points, ids=ids, name=name)

    def oriented(self, directions: Sequence[str]) -> "Dataset":
        """Return a copy with 'max' dimensions flipped to minimisation.

        The library minimises every dimension; real data often mixes
        goals (minimise price, *maximise* rating).  ``directions`` gives
        one of ``"min"`` / ``"max"`` per dimension; max dimensions are
        reflected as ``column_max - value`` so smaller stays better and
        values remain non-negative.
        """
        if len(directions) != self.dimensions:
            raise DatasetError(
                f"need {self.dimensions} directions; got {len(directions)}"
            )
        flipped = self._points.copy()
        for k, direction in enumerate(directions):
            if direction == "max":
                flipped[:, k] = flipped[:, k].max() - flipped[:, k]
            elif direction != "min":
                raise DatasetError(
                    f"direction must be 'min' or 'max'; got {direction!r}"
                )
        return Dataset(flipped, ids=self._ids, name=f"{self.name}[oriented]")

    def normalized(self) -> "Dataset":
        """Return a copy scaled to the unit hypercube per dimension.

        Constant dimensions map to 0.  Used by the grid partitioner, which
        follows the paper in normalising values by projection before
        assigning grid cells.
        """
        lo, hi = self.bounds()
        span = hi - lo
        span[span == 0.0] = 1.0
        scaled = (self._points - lo) / span
        return Dataset(scaled, ids=self._ids, name=f"{self.name}[norm]")
