"""Dominance tests between points.

The library uses the *minimisation* convention throughout: a point ``p``
dominates a point ``q`` when ``p[k] <= q[k]`` in every dimension ``k`` and
``p[j] < q[j]`` in at least one dimension ``j``.  This matches the paper's
hotel example where both distance-to-downtown and daily rate are minimised.

Two families of helpers are provided:

* scalar tests over single points (``dominates``, ``compare``) used by the
  tree algorithms where points arrive one at a time, and
* vectorised tests over numpy blocks (``dominates_block``,
  ``block_dominates``, ``dominance_counts``) used by the block-oriented
  algorithms (BNL/SFS) and the verification oracle.
"""

from __future__ import annotations

import enum
from typing import Sequence, Union

import numpy as np

PointLike = Union[Sequence[float], np.ndarray]


class DominanceRelation(enum.Enum):
    """Outcome of a three-way dominance comparison between two points."""

    DOMINATES = "dominates"
    DOMINATED = "dominated"
    INCOMPARABLE = "incomparable"
    EQUAL = "equal"


def dominates(p: PointLike, q: PointLike) -> bool:
    """Return True when ``p`` dominates ``q`` (minimisation convention).

    ``p`` dominates ``q`` iff ``p <= q`` componentwise and ``p != q``.
    """
    p = np.asarray(p)
    q = np.asarray(q)
    return bool(np.all(p <= q) and np.any(p < q))


def strictly_dominates(p: PointLike, q: PointLike) -> bool:
    """Return True when ``p < q`` in *every* dimension.

    Strict dominance is what Lemma 1 needs for region-level pruning: if the
    max corner of one RZ-region strictly dominates the min corner of
    another, every point of the second region is dominated.
    """
    p = np.asarray(p)
    q = np.asarray(q)
    return bool(np.all(p < q))


def dominates_or_equal(p: PointLike, q: PointLike) -> bool:
    """Return True when ``p <= q`` in every dimension (weak dominance)."""
    p = np.asarray(p)
    q = np.asarray(q)
    return bool(np.all(p <= q))


def compare(p: PointLike, q: PointLike) -> DominanceRelation:
    """Three-way dominance comparison between points ``p`` and ``q``."""
    p = np.asarray(p)
    q = np.asarray(q)
    le = bool(np.all(p <= q))
    ge = bool(np.all(p >= q))
    if le and ge:
        return DominanceRelation.EQUAL
    if le:
        return DominanceRelation.DOMINATES
    if ge:
        return DominanceRelation.DOMINATED
    return DominanceRelation.INCOMPARABLE


def dominates_block(p: PointLike, block: np.ndarray) -> np.ndarray:
    """Vectorised test of one point against a block of points.

    Returns a boolean array where entry ``i`` is True iff ``p`` dominates
    ``block[i]``.  ``block`` must be a 2-D ``(n, d)`` array.
    """
    p = np.asarray(p)
    le = np.all(p <= block, axis=1)
    lt = np.any(p < block, axis=1)
    return le & lt


def block_dominates(block: np.ndarray, p: PointLike) -> np.ndarray:
    """Vectorised test of a block of points against one point.

    Returns a boolean array where entry ``i`` is True iff ``block[i]``
    dominates ``p``.
    """
    p = np.asarray(p)
    le = np.all(block <= p, axis=1)
    lt = np.any(block < p, axis=1)
    return le & lt


def any_dominates(block: np.ndarray, p: PointLike) -> bool:
    """Return True when any point of ``block`` dominates ``p``."""
    if block.shape[0] == 0:
        return False
    return bool(block_dominates(block, p).any())


def dominated_mask(
    points: np.ndarray, dominators: np.ndarray, chunk: int = 2048
) -> np.ndarray:
    """For each row of ``points``, is it dominated by any ``dominators`` row?

    Fully vectorised in chunks (memory ``chunk * len(dominators)``
    booleans).  This is the workhorse of the mapper-side SZB prefilter,
    where every input point is screened against the sample skyline.
    """
    points = np.asarray(points, dtype=np.float64)
    dominators = np.asarray(dominators, dtype=np.float64)
    n = points.shape[0]
    out = np.zeros(n, dtype=bool)
    if dominators.shape[0] == 0 or n == 0:
        return out
    for start in range(0, n, chunk):
        part = points[start : start + chunk]
        le = np.all(dominators[None, :, :] <= part[:, None, :], axis=2)
        lt = np.any(dominators[None, :, :] < part[:, None, :], axis=2)
        out[start : start + chunk] = (le & lt).any(axis=1)
    return out


def dominance_counts(points: np.ndarray, chunk: int = 2048) -> np.ndarray:
    """Return, for each point, the number of points that dominate it.

    Quadratic work, vectorised with chunked broadcasting like
    :func:`dominated_mask` (memory ``chunk * n`` booleans per pass).
    Entry ``i`` is the count of indices ``j`` with ``points[j]``
    dominating ``points[i]``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    for start in range(0, n, chunk):
        part = points[start : start + chunk]
        le = np.all(points[None, :, :] <= part[:, None, :], axis=2)
        lt = np.any(points[None, :, :] < part[:, None, :], axis=2)
        counts[start : start + chunk] = (le & lt).sum(axis=1)
    return counts
