"""Core data model: points, dominance, datasets, and the skyline oracle.

Everything in the rest of the library is built on three ideas defined here:

* a *point* is a fixed-length vector of numeric attributes where smaller
  values are preferred in every dimension (the paper's hotel example:
  distance and price are both minimised);
* *dominance* (:func:`repro.core.point.dominates`): ``p`` dominates ``q``
  when ``p`` is no worse in every dimension and strictly better in at least
  one;
* the *skyline* of a dataset is the set of points not dominated by any other
  point (:func:`repro.core.skyline.skyline_oracle` computes it with a simple,
  obviously-correct algorithm used to verify every other implementation).
"""

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    ReproError,
    ZOrderError,
)
from repro.core.point import (
    DominanceRelation,
    compare,
    dominance_counts,
    dominates,
    dominates_or_equal,
    strictly_dominates,
)
from repro.core.skyline import (
    is_skyline_of,
    skyline_indices_oracle,
    skyline_oracle,
)

__all__ = [
    "ConfigurationError",
    "Dataset",
    "DatasetError",
    "DominanceRelation",
    "ReproError",
    "ZOrderError",
    "compare",
    "dominance_counts",
    "dominates",
    "dominates_or_equal",
    "is_skyline_of",
    "skyline_indices_oracle",
    "skyline_oracle",
    "strictly_dominates",
]
