"""Reference skyline oracle.

A deliberately simple, vectorised skyline used to verify every other
algorithm in the library.  It is quadratic in the worst case but fast enough
(numpy inner loop) for the test and benchmark sizes we use.
"""

from __future__ import annotations

import numpy as np



def skyline_indices_oracle(points: np.ndarray) -> np.ndarray:
    """Return the sorted row indices of the skyline of ``points``.

    Duplicate points are handled the way the dominance definition implies:
    exact duplicates do not dominate each other, so all copies of a
    non-dominated point are part of the skyline.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Sort by sum of coordinates: a point can only be dominated by a point
    # with a smaller-or-equal coordinate sum, so scanning in sum order lets
    # each point be tested only against the survivors found so far.
    order = np.argsort(points.sum(axis=1), kind="stable")
    survivors: list[int] = []
    for idx in order:
        p = points[idx]
        if survivors:
            block = points[survivors]
            if dominates_block_any(block, p):
                continue
        survivors.append(int(idx))
    return np.sort(np.array(survivors, dtype=np.int64))


def dominates_block_any(block: np.ndarray, p: np.ndarray) -> bool:
    """Return True when any row of ``block`` dominates ``p``."""
    le = np.all(block <= p, axis=1)
    if not le.any():
        return False
    lt = np.any(block[le] < p, axis=1)
    return bool(lt.any())


def skyline_oracle(points: np.ndarray) -> np.ndarray:
    """Return the skyline rows of ``points`` (sorted by original index)."""
    idx = skyline_indices_oracle(points)
    return np.asarray(points, dtype=np.float64)[idx]


def is_skyline_of(candidate: np.ndarray, points: np.ndarray) -> bool:
    """Check whether ``candidate`` equals the skyline of ``points``.

    Comparison is as *multisets of rows*, so candidate row order does not
    matter.  Useful in tests where an algorithm returns points in its own
    order.
    """
    expected = skyline_oracle(points)
    candidate = np.asarray(candidate, dtype=np.float64)
    if candidate.shape != expected.shape:
        return False
    if candidate.size == 0:
        return True

    def canonical(a: np.ndarray) -> np.ndarray:
        return a[np.lexsort(a.T[::-1])]

    return bool(np.array_equal(canonical(candidate), canonical(expected)))
