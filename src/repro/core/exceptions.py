"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class at an API boundary while tests can assert on specific
subclasses.

Serving-layer errors additionally carry **structured context** (queue
depth, wait so far, a suggested ``retry_after_seconds``) so retry
policies and circuit breakers can act on typed data instead of parsing
message strings.  Every such error answers :func:`is_retryable`.
"""

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DatasetError(ReproError):
    """Raised for malformed dataset inputs (wrong shape, empty, NaN...)."""


class ZOrderError(ReproError):
    """Raised for invalid Z-order encoding parameters or addresses."""


class ConfigurationError(ReproError):
    """Raised when an engine/partitioner configuration is inconsistent."""


class PartitioningError(ReproError):
    """Raised when a partitioner cannot produce a valid assignment."""


class MapReduceError(ReproError):
    """Raised by the simulated MapReduce runtime for invalid job specs."""


class FaultInjectionError(MapReduceError):
    """Raised when fault injection exhausts a task's retry budget."""


class ServingError(ReproError):
    """Base class for errors raised by the query-serving layer."""

    #: does retrying (after backoff) have a chance of succeeding?
    retryable: bool = False
    #: suggested wait before retrying, when the server can estimate one
    retry_after_seconds: Optional[float] = None


class OverloadedError(ServingError):
    """Raised when admission control sheds a request.

    The bounded request queue for the request's class (read or mutate)
    is full; the caller should back off and retry.  Carries no partial
    result — the request was never admitted.

    Structured context: ``queue_depth`` / ``queue_limit`` (the state
    that triggered the shed) and ``retry_after_seconds`` (the
    controller's drain-time estimate from its service-time EWMA).
    """

    retryable = True

    def __init__(
        self,
        message: str = "",
        *,
        queue_depth: Optional[int] = None,
        queue_limit: Optional[int] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        self.retry_after_seconds = retry_after_seconds


class DeadlineExceededError(MapReduceError):
    """Raised when a stage or whole-run wall-clock budget is exhausted.

    The supervisor raises it cleanly at stage boundaries; in lenient
    (degraded-ok) runs the reduce phase converts it into lost keys
    instead so the run can still return a partial answer.

    When raised by the serving layer it carries structured context:
    how long the request waited in queue (``queue_wait_seconds``), the
    queue depth at expiry, and a suggested ``retry_after_seconds``.
    """

    #: a fresh attempt with a fresh deadline may succeed
    retryable = False

    def __init__(
        self,
        message: str = "",
        *,
        queue_wait_seconds: Optional[float] = None,
        queue_depth: Optional[int] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.queue_wait_seconds = queue_wait_seconds
        self.queue_depth = queue_depth
        self.retry_after_seconds = retry_after_seconds


class WriterDownError(ServingError):
    """The dataset's writer has crashed and not yet recovered.

    Reads keep serving the last published (bounded-staleness) snapshot;
    mutations fail with this error until
    :meth:`~repro.serving.registry.DatasetRegistry.recover` replays the
    WAL and republishes.  ``applied`` reports whether the failed batch
    reached the durable WAL (and will therefore take effect on
    recovery): ``True`` / ``False`` when known, ``None`` when the crash
    point makes it uncertain.
    """

    retryable = True

    def __init__(
        self,
        message: str = "",
        *,
        dataset: Optional[str] = None,
        stale_version: Optional[int] = None,
        applied: Optional[bool] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.dataset = dataset
        self.stale_version = stale_version
        self.applied = applied
        self.retry_after_seconds = retry_after_seconds


class CircuitOpenError(ServingError):
    """The per-dataset circuit breaker is open: recent requests failed
    repeatedly, so new ones are rejected immediately instead of piling
    onto a failing dependency.  ``retry_after_seconds`` is the remaining
    cooldown before the breaker half-opens."""

    retryable = True

    def __init__(
        self,
        message: str = "",
        *,
        dataset: Optional[str] = None,
        failures: Optional[int] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.dataset = dataset
        self.failures = failures
        self.retry_after_seconds = retry_after_seconds


class ShardDownError(ServingError):
    """A shard of a sharded dataset is down and could not be failed
    over in time.

    Reads route around a down shard (the router answers with a
    certified partial skyline); mutations that must touch it fail with
    this error.  ``terminal`` distinguishes a shard inside its
    failover-retry budget (a retry after ``retry_after_seconds`` will
    hit the WAL-recovered replacement) from one that has exhausted it
    (the router is in a permanent certified-partial regime for that
    shard; retrying cannot help).
    """

    def __init__(
        self,
        message: str = "",
        *,
        dataset: Optional[str] = None,
        shard: Optional[int] = None,
        terminal: bool = False,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.dataset = dataset
        self.shard = shard
        self.terminal = terminal
        self.retryable = not terminal
        self.retry_after_seconds = retry_after_seconds


class QueryPoisonedError(ServingError):
    """The request crashed its worker on every allowed attempt and was
    quarantined (a "poison pill") instead of being re-enqueued forever."""

    retryable = False

    def __init__(
        self, message: str = "", *, attempts: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts


class InjectedCrashError(ServingError):
    """The injected fault itself (a worker/writer death mid-operation).

    Internal to the fault subsystem: the service converts it into the
    appropriate public error (requeue, :class:`QueryPoisonedError`,
    :class:`WriterDownError`) before a caller ever sees it.
    """

    retryable = True


def is_retryable(exc: BaseException) -> bool:
    """Typed retryable/terminal classification for the retry policy.

    An error is retryable when it (or its class) says so via the
    ``retryable`` attribute; everything else — wrong inputs, unknown
    datasets, exhausted deadlines, poisoned queries — is terminal.
    """
    return bool(getattr(exc, "retryable", False))


def retry_after_hint(exc: BaseException) -> Optional[float]:
    """The server-suggested backoff carried by a typed error, if any."""
    value = getattr(exc, "retry_after_seconds", None)
    return None if value is None else float(value)
