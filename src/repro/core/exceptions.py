"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class at an API boundary while tests can assert on specific
subclasses.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DatasetError(ReproError):
    """Raised for malformed dataset inputs (wrong shape, empty, NaN...)."""


class ZOrderError(ReproError):
    """Raised for invalid Z-order encoding parameters or addresses."""


class ConfigurationError(ReproError):
    """Raised when an engine/partitioner configuration is inconsistent."""


class PartitioningError(ReproError):
    """Raised when a partitioner cannot produce a valid assignment."""


class MapReduceError(ReproError):
    """Raised by the simulated MapReduce runtime for invalid job specs."""


class FaultInjectionError(MapReduceError):
    """Raised when fault injection exhausts a task's retry budget."""


class ServingError(ReproError):
    """Base class for errors raised by the query-serving layer."""


class OverloadedError(ServingError):
    """Raised when admission control sheds a request.

    The bounded request queue for the request's class (read or mutate)
    is full; the caller should back off and retry.  Carries no partial
    result — the request was never admitted.
    """


class DeadlineExceededError(MapReduceError):
    """Raised when a stage or whole-run wall-clock budget is exhausted.

    The supervisor raises it cleanly at stage boundaries; in lenient
    (degraded-ok) runs the reduce phase converts it into lost keys
    instead so the run can still return a partial answer.
    """
