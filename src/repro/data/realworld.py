"""Simulators for the paper's real-world datasets.

The paper evaluates on five real datasets we cannot redistribute: NBA
player statistics, HOU household-expenditure fractions, NUS-WIDE 225-D
colour moments, Flickr 512-D GIST descriptors, and DBpedia 250-D LDA
topic vectors.  Each simulator below reproduces the *shape* that matters
for skyline processing — dimensionality, value range, correlation
structure, and sparsity — so the same code paths (high-dimensional
Z-addresses, grouping, candidate explosion) are exercised.  DESIGN.md §2
documents each substitution.

All outputs are oriented so that *smaller is better* in every dimension,
matching the library's minimisation convention (e.g. NBA stats are
negated: a high scorer has a small first coordinate).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError


def nba_like(n: int = 350, seed: int = 0) -> Dataset:
    """7-D NBA-player-style statistics (anti-correlated, per Example 2).

    Players have a latent overall skill plus a role vector: specialists
    trade off scoring against rebounds/assists, which produces the
    anti-correlated structure the paper observed in the real NBA data.
    Columns model (negated) points, rebounds, assists, steals, blocks,
    field-goal%, minutes.
    """
    _check(n)
    rng = np.random.default_rng(seed)
    d = 7
    skill = rng.beta(2.0, 5.0, (n, 1))
    role = rng.dirichlet(np.full(d, 0.35), n)
    noise = rng.normal(0.0, 0.05, (n, d))
    raw = skill * role * d + np.abs(noise)
    # Negate so larger stats become smaller (better) coordinates, then
    # shift to a non-negative range.
    oriented = raw.max() - raw
    return Dataset(oriented, name=f"nba_like(n={n})")


def hou_like(n: int = 1000, seed: int = 0) -> Dataset:
    """6-D household-expenditure data (independent-ish, Example 2).

    Each record is annual spending on six categories: a Dirichlet share
    vector scaled by the household's (log-normal) total budget.  The
    varying totals break the fixed-sum constraint of raw fractions —
    which would make every record a skyline point — and give the nearly
    independent marginals the paper reports for HOU.
    """
    _check(n)
    rng = np.random.default_rng(seed)
    alpha = np.array([4.0, 3.0, 2.5, 2.0, 1.5, 1.0])
    shares = rng.dirichlet(alpha, n)
    totals = rng.lognormal(mean=0.0, sigma=0.45, size=(n, 1))
    points = shares * totals
    return Dataset(points, name=f"hou_like(n={n})")


def nuswide_like(n: int = 2000, dimensions: int = 225, seed: int = 0) -> Dataset:
    """225-D block-wise colour moments in the style of NUS-WIDE.

    Images fall into visual clusters (scenes); within a cluster the 225
    block-wise moments are correlated through a low-rank factor model plus
    non-negative noise — high ambient dimension, much lower intrinsic
    dimension, exactly the regime where grid/angle partitioning breaks
    down in the paper.
    """
    return _clustered_features(
        n, dimensions, n_clusters=12, rank=8, seed=seed, name="nuswide_like"
    )


def flickr_gist_like(n: int = 2000, dimensions: int = 512, seed: int = 0) -> Dataset:
    """512-D GIST-style descriptors: correlated Gabor-energy bands."""
    return _clustered_features(
        n, dimensions, n_clusters=20, rank=16, seed=seed, name="flickr_gist_like"
    )


def dbpedia_lda_like(
    n: int = 2000,
    dimensions: int = 250,
    seed: int = 0,
    topics_per_doc: int = 8,
) -> Dataset:
    """250-D LDA topic vectors: sparse points on the probability simplex.

    Each document concentrates its mass on a handful of topics (sparse
    Dirichlet), as LDA posteriors do.  Coordinates are ``1 - weight`` so
    that strong topic affinity means a small (good) value.
    """
    _check(n)
    if not (1 <= topics_per_doc <= dimensions):
        raise DatasetError("topics_per_doc must be in [1, dimensions]")
    rng = np.random.default_rng(seed)
    points = np.full((n, dimensions), 1.0)
    for i in range(n):
        active = rng.choice(dimensions, size=topics_per_doc, replace=False)
        weights = rng.dirichlet(np.full(topics_per_doc, 0.5))
        points[i, active] = 1.0 - weights
    return Dataset(points, name=f"dbpedia_lda_like(n={n}, d={dimensions})")


def _clustered_features(
    n: int, dimensions: int, n_clusters: int, rank: int, seed: int, name: str
) -> Dataset:
    """Low-rank clustered non-negative feature model shared by the image
    descriptor simulators."""
    _check(n)
    if dimensions <= 0:
        raise DatasetError("dimensions must be positive")
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dimensions))
    factors = rng.normal(0.0, 1.0, (n_clusters, rank, dimensions))
    assignment = rng.integers(0, n_clusters, n)
    latent = rng.normal(0.0, 1.0, (n, rank))
    points = np.empty((n, dimensions))
    for c in range(n_clusters):
        mask = assignment == c
        if not mask.any():
            continue
        points[mask] = centers[c] + 0.08 * latent[mask] @ factors[c]
    points += np.abs(rng.normal(0.0, 0.02, (n, dimensions)))
    points -= points.min()
    points /= max(points.max(), 1e-12)
    return Dataset(points, name=f"{name}(n={n}, d={dimensions})")


def _check(n: int) -> None:
    if n <= 0:
        raise DatasetError(f"n must be positive; got {n}")
