"""Dataset import/export and input hardening.

Real deployments feed the engine CSV extracts (the paper's NBA/HOU
datasets are exactly that); these helpers round-trip
:class:`~repro.core.dataset.Dataset` objects through CSV with an
optional id column and header.

Billion-point extracts are never pristine: :func:`sanitize_records`
(and its CSV front-end :func:`load_csv_hardened`) validates raw rows
and **quarantines** malformed ones — NaN/±inf coordinates, wrong
dimensionality, duplicate ids, non-numeric cells — into counters
instead of letting one bad record abort a long run.  The pipeline
supervisor threads those counters into its run report as
``input.quarantined_records``.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError

ID_COLUMN = "id"

#: quarantine counter names, in reporting order
QUARANTINE_KEYS = (
    "quarantined_records",
    "nonfinite",
    "dimension_mismatch",
    "duplicate_ids",
    "non_numeric",
)


def save_csv(
    dataset: Dataset,
    path: str,
    column_names: Optional[Sequence[str]] = None,
    include_ids: bool = True,
) -> None:
    """Write a dataset as CSV (header + one row per point)."""
    d = dataset.dimensions
    if column_names is None:
        column_names = [f"dim_{k}" for k in range(d)]
    elif len(column_names) != d:
        raise DatasetError(
            f"need {d} column names; got {len(column_names)}"
        )
    if ID_COLUMN in column_names:
        raise DatasetError(f"{ID_COLUMN!r} is reserved for the id column")
    header = ([ID_COLUMN] if include_ids else []) + list(column_names)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for pid, point in dataset:
            row: List[object] = [pid] if include_ids else []
            row.extend(repr(float(v)) for v in point)
            writer.writerow(row)


def load_csv(path: str, name: Optional[str] = None) -> Dataset:
    """Read a dataset written by :func:`save_csv` (or any numeric CSV
    with a header; a leading ``id`` column is honoured)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty file") from None
        has_ids = bool(header) and header[0] == ID_COLUMN
        ids: List[int] = []
        rows: List[List[float]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                if has_ids:
                    ids.append(int(row[0]))
                    rows.append([float(v) for v in row[1:]])
                else:
                    rows.append([float(v) for v in row])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_no}: non-numeric value ({exc})"
                ) from None
    if not rows:
        raise DatasetError(f"{path}: no data rows")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise DatasetError(f"{path}: ragged rows (widths {sorted(widths)})")
    points = np.asarray(rows, dtype=np.float64)
    return Dataset(
        points,
        ids=np.asarray(ids, dtype=np.int64) if has_ids else None,
        name=name or path,
    )


def sanitize_records(
    rows: Sequence[Sequence[float]],
    ids: Optional[Sequence[int]] = None,
    dimensions: Optional[int] = None,
    name: str = "hardened",
) -> Tuple[Dataset, Dict[str, int]]:
    """Validate raw records, quarantining malformed ones.

    ``rows`` may be ragged; the reference dimensionality is
    ``dimensions`` when given, else the most common row length (ties
    broken toward the smaller width, deterministically).  Quarantined
    rows are *counted*, never raised:

    * ``nonfinite`` — a NaN or ±inf coordinate;
    * ``dimension_mismatch`` — wrong number of coordinates;
    * ``duplicate_ids`` — an id already seen (first occurrence wins);
    * ``non_numeric`` — a cell that does not convert to float;
    * ``quarantined_records`` — total of the above.

    Returns the clean :class:`Dataset` plus the counter dict.  A fully
    quarantined input is still an error (there is nothing to compute a
    skyline of).
    """
    counts: Dict[str, int] = {key: 0 for key in QUARANTINE_KEYS}
    parsed: List[Tuple[Optional[int], List[float]]] = []
    widths: Dict[int, int] = {}
    id_list = list(ids) if ids is not None else None
    if id_list is not None and len(id_list) != len(rows):
        raise DatasetError(
            f"ids must match rows: {len(id_list)} ids for {len(rows)} rows"
        )
    for position, row in enumerate(rows):
        try:
            values = [float(v) for v in row]
        except (TypeError, ValueError):
            counts["non_numeric"] += 1
            parsed.append((None, []))
            continue
        row_id = int(id_list[position]) if id_list is not None else None
        parsed.append((row_id, values))
        widths[len(values)] = widths.get(len(values), 0) + 1
    if dimensions is None:
        if not widths:
            raise DatasetError("every input record was quarantined")
        dimensions = min(
            widths, key=lambda width: (-widths[width], width)
        )
    seen_ids: set = set()
    kept_ids: List[int] = []
    kept_rows: List[List[float]] = []
    for row_id, values in parsed:
        if not values and row_id is None:
            continue  # already counted as non_numeric
        if len(values) != dimensions:
            counts["dimension_mismatch"] += 1
            continue
        if not all(np.isfinite(values)):
            counts["nonfinite"] += 1
            continue
        if row_id is not None:
            if row_id in seen_ids:
                counts["duplicate_ids"] += 1
                continue
            seen_ids.add(row_id)
            kept_ids.append(row_id)
        kept_rows.append(values)
    counts["quarantined_records"] = (
        counts["nonfinite"]
        + counts["dimension_mismatch"]
        + counts["duplicate_ids"]
        + counts["non_numeric"]
    )
    if not kept_rows:
        raise DatasetError("every input record was quarantined")
    dataset = Dataset(
        np.asarray(kept_rows, dtype=np.float64),
        ids=np.asarray(kept_ids, dtype=np.int64) if id_list is not None
        else None,
        name=name,
    )
    return dataset, counts


def load_csv_hardened(
    path: str, name: Optional[str] = None
) -> Tuple[Dataset, Dict[str, int]]:
    """Like :func:`load_csv`, but malformed rows are quarantined
    (counted) instead of raising — the ingest path for dirty extracts.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty file") from None
        has_ids = bool(header) and header[0] == ID_COLUMN
        raw_ids: List[int] = []
        raw_rows: List[List[str]] = []
        bad_ids = 0
        for row in reader:
            if not row:
                continue
            if has_ids:
                try:
                    raw_ids.append(int(row[0]))
                except ValueError:
                    bad_ids += 1
                    continue
                raw_rows.append(row[1:])
            else:
                raw_rows.append(row)
    if not raw_rows:
        raise DatasetError(f"{path}: no data rows")
    dataset, counts = sanitize_records(
        raw_rows,
        ids=raw_ids if has_ids else None,
        name=name or path,
    )
    counts["non_numeric"] += bad_ids
    counts["quarantined_records"] += bad_ids
    return dataset, counts
