"""Dataset import/export.

Real deployments feed the engine CSV extracts (the paper's NBA/HOU
datasets are exactly that); these helpers round-trip
:class:`~repro.core.dataset.Dataset` objects through CSV with an
optional id column and header.
"""

from __future__ import annotations

import csv
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError

ID_COLUMN = "id"


def save_csv(
    dataset: Dataset,
    path: str,
    column_names: Optional[Sequence[str]] = None,
    include_ids: bool = True,
) -> None:
    """Write a dataset as CSV (header + one row per point)."""
    d = dataset.dimensions
    if column_names is None:
        column_names = [f"dim_{k}" for k in range(d)]
    elif len(column_names) != d:
        raise DatasetError(
            f"need {d} column names; got {len(column_names)}"
        )
    if ID_COLUMN in column_names:
        raise DatasetError(f"{ID_COLUMN!r} is reserved for the id column")
    header = ([ID_COLUMN] if include_ids else []) + list(column_names)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for pid, point in dataset:
            row: List[object] = [pid] if include_ids else []
            row.extend(repr(float(v)) for v in point)
            writer.writerow(row)


def load_csv(path: str, name: Optional[str] = None) -> Dataset:
    """Read a dataset written by :func:`save_csv` (or any numeric CSV
    with a header; a leading ``id`` column is honoured)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DatasetError(f"{path}: empty file") from None
        has_ids = bool(header) and header[0] == ID_COLUMN
        ids: List[int] = []
        rows: List[List[float]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                if has_ids:
                    ids.append(int(row[0]))
                    rows.append([float(v) for v in row[1:]])
                else:
                    rows.append([float(v) for v in row])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_no}: non-numeric value ({exc})"
                ) from None
    if not rows:
        raise DatasetError(f"{path}: no data rows")
    widths = {len(r) for r in rows}
    if len(widths) != 1:
        raise DatasetError(f"{path}: ragged rows (widths {sorted(widths)})")
    points = np.asarray(rows, dtype=np.float64)
    return Dataset(
        points,
        ids=np.asarray(ids, dtype=np.int64) if has_ids else None,
        name=name or path,
    )
