"""Synthetic workloads: independent, correlated, anti-correlated.

These follow the constructions of Börzsönyi, Kossmann & Stocker (ICDE
2001), the de-facto standard benchmark distributions for skyline work and
the ones this paper sweeps in §6:

* **independent** — uniform on the unit hypercube; skyline size grows
  roughly as ``O((ln n)^(d-1) / (d-1)!)``;
* **correlated** — points concentrated around the main diagonal: a point
  good in one dimension tends to be good in all, so the skyline is tiny;
* **anti-correlated** — points concentrated around the hyperplane
  ``sum(x) = const``: a point good in one dimension tends to be bad in
  others, producing very large skylines (the hard case that motivates the
  paper's straggler and candidate-explosion analysis).

All generators return values in ``[0, 1]^d`` and take an explicit seed.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError

_CORRELATION_SPREAD = 0.10
_ANTICORRELATION_SPREAD = 0.08


def independent(n: int, dimensions: int, seed: int = 0) -> Dataset:
    """Uniformly distributed points on the unit hypercube."""
    _check(n, dimensions)
    rng = np.random.default_rng(seed)
    points = rng.random((n, dimensions))
    return Dataset(points, name=f"independent(n={n}, d={dimensions})")


def correlated(n: int, dimensions: int, seed: int = 0) -> Dataset:
    """Points clustered around the main diagonal.

    Each point is a diagonal position ``t`` plus per-dimension Gaussian
    jitter, mirrored back into the unit cube.  Jitter is small relative to
    the diagonal spread, giving the strongly correlated regime where the
    skyline is tiny.
    """
    _check(n, dimensions)
    rng = np.random.default_rng(seed)
    t = rng.random((n, 1))
    jitter = rng.normal(0.0, _CORRELATION_SPREAD, (n, dimensions))
    points = _reflect(t + jitter)
    return Dataset(points, name=f"correlated(n={n}, d={dimensions})")


def anticorrelated(n: int, dimensions: int, seed: int = 0) -> Dataset:
    """Points clustered around the anti-diagonal hyperplane.

    Points start on the plane ``sum(x) = d/2`` (sampled via a normalised
    Dirichlet-style construction) and get small Gaussian jitter, mirrored
    back into the unit cube.  Being good in one dimension forces being bad
    in others — the large-skyline stress case.
    """
    _check(n, dimensions)
    rng = np.random.default_rng(seed)
    # Sample plane positions from a concentrated Dirichlet scaled so the
    # coordinate sum is d/2: on the plane, dominance is impossible (equal
    # sums), so the skyline explodes.  The concentration keeps individual
    # coordinates inside [0, 1] almost surely, so the rare reflection
    # does not disturb the structure.
    concentration = 5.0
    plane = rng.dirichlet(
        np.full(dimensions, concentration), n
    ) * (dimensions / 2.0)
    jitter = rng.normal(0.0, _ANTICORRELATION_SPREAD, (n, dimensions))
    points = _reflect(plane + jitter)
    return Dataset(points, name=f"anticorrelated(n={n}, d={dimensions})")


_GENERATORS: Dict[str, Callable[[int, int, int], Dataset]] = {
    "independent": independent,
    "correlated": correlated,
    "anticorrelated": anticorrelated,
    "anti-correlated": anticorrelated,
}


def generate(distribution: str, n: int, dimensions: int, seed: int = 0) -> Dataset:
    """Dispatch on a distribution name used throughout the benchmarks."""
    key = distribution.strip().lower()
    if key not in _GENERATORS:
        raise DatasetError(
            f"unknown distribution {distribution!r}; "
            f"choose one of {sorted(set(_GENERATORS))}"
        )
    return _GENERATORS[key](n, dimensions, seed)


def _reflect(values: np.ndarray) -> np.ndarray:
    """Mirror values into [0, 1] (reflection keeps the density shape
    near the boundary, unlike clipping which piles mass onto it)."""
    v = np.mod(values, 2.0)
    return np.where(v > 1.0, 2.0 - v, v)


def _check(n: int, dimensions: int) -> None:
    if n <= 0:
        raise DatasetError(f"n must be positive; got {n}")
    if dimensions <= 0:
        raise DatasetError(f"dimensions must be positive; got {dimensions}")
