"""Workload generators.

* :mod:`repro.data.synthetic` — the three classic Börzsönyi et al.
  distributions (independent, correlated, anti-correlated) used in every
  skyline paper's evaluation, including this one;
* :mod:`repro.data.realworld` — statistical simulators standing in for
  the paper's real datasets (NBA, HOU, NUS-WIDE, Flickr/GIST,
  DBpedia/LDA), matching their dimensionality and distribution class (see
  DESIGN.md §2 for the substitution rationale);
* :mod:`repro.data.scaling` — the paper's scale-factor protocol
  (``s ∈ [5, 25]``): grow a dataset while preserving its distribution.
"""

from repro.data.realworld import (
    dbpedia_lda_like,
    flickr_gist_like,
    hou_like,
    nba_like,
    nuswide_like,
)
from repro.data.scaling import scale_up
from repro.data.synthetic import (
    anticorrelated,
    correlated,
    generate,
    independent,
)

__all__ = [
    "anticorrelated",
    "correlated",
    "dbpedia_lda_like",
    "flickr_gist_like",
    "generate",
    "hou_like",
    "independent",
    "nba_like",
    "nuswide_like",
    "scale_up",
]
