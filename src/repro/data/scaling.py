"""Scale-factor resampling (the paper's ``s ∈ [5, 25]`` protocol).

"To evaluate the performance on larger data sizes, we synthetically
generate more data while maintaining the same distribution as the
original" (§6.1).  We implement the standard smoothed-bootstrap approach:
sample existing rows with replacement and add small Gaussian jitter scaled
to each dimension's spread, then clip to the original bounding box so the
support does not grow.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError

_JITTER_FRACTION = 0.01


def scale_up(dataset: Dataset, factor: float, seed: int = 0) -> Dataset:
    """Return a dataset ``factor`` times larger with the same distribution.

    The original rows are kept verbatim; the additional rows are smoothed
    bootstrap resamples.  Ids are fresh (``0..n_new-1``) since the new
    rows have no originals to map back to.
    """
    if factor < 1.0:
        raise DatasetError(f"scale factor must be >= 1; got {factor}")
    n = dataset.size
    target = int(round(n * factor))
    extra = target - n
    if extra <= 0:
        return Dataset(dataset.points, name=dataset.name)
    rng = np.random.default_rng(seed)
    base = dataset.points
    lo, hi = dataset.bounds()
    scale = (hi - lo) * _JITTER_FRACTION
    picks = rng.integers(0, n, extra)
    jitter = rng.normal(0.0, 1.0, (extra, dataset.dimensions)) * scale
    new_rows = np.clip(base[picks] + jitter, lo, hi)
    points = np.vstack([base, new_rows])
    return Dataset(
        points, name=f"{dataset.name}[x{factor:g}]"
    )
