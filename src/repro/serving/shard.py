"""Shard maps: the paper's Z-curve partitioning reused as a shard map.

The offline engine splits a dataset into contiguous Z-address ranges
(:class:`~repro.partitioning.zcurve.ZCurveRule`, §4.1) because every
range has a well-defined RZ-region the pruning machinery can reason
about.  A sharded serving topology wants exactly the same property:

* **routing** is a binary search over the pivots — one vectorised
  ``searchsorted`` assigns a whole mutation batch to shards;
* **degradation certificates** fall out of the region geometry: every
  point a shard owns is ``>=`` its RZ-region's min corner in each
  dimension, so when a shard is lost its region *floor* bounds what the
  lost points could have dominated.  Masking the merged answer with the
  lost floors (the PR-2 lenient-reduce argument, applied at the serving
  layer) yields a **certified subset** of the true answer.

The mask algebra, per query kind (floors are min corners; smaller is
better throughout):

* *full / subspace* — a lost point ``p >= f`` dominates ``q`` only if
  ``f`` dominates ``q`` (projected onto the query dims for subspace);
* *k-dominant* — ``p <= q`` on a dimension implies ``f <= q`` there and
  ``p < q`` implies ``f < q``, so ``p`` k-dominating ``q`` implies
  ``f`` k-dominates ``q``: the floor test is again a sound
  over-approximation (soundness survives k-dominance being
  non-transitive because the mask argues about *pairs*, not chains).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError, DatasetError
from repro.partitioning.zcurve import ZCurveRule, equidepth_pivots
from repro.zorder.encoding import ZGridCodec

__all__ = [
    "ShardMap",
    "floor_dominated_mask",
    "floor_k_dominated_mask",
]


class ShardMap:
    """Assignment of grid points to shards via Z-address equidepth ranges.

    Built once from the initial dataset (:meth:`fit`); later inserts
    route through the same fixed pivots, so a point's shard is a pure
    function of its coordinates.  Heavily tied data can collapse pivots
    (fewer effective shards than requested) — ``num_shards`` reports
    the real count.
    """

    def __init__(self, codec: ZGridCodec, rule: ZCurveRule) -> None:
        self.codec = codec
        self.rule = rule

    @classmethod
    def fit(
        cls, codec: ZGridCodec, points: np.ndarray, num_shards: int
    ) -> "ShardMap":
        """Equidepth Z-address pivots over ``points`` → shard ranges."""
        if num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise DatasetError("need a non-empty (n, d) point matrix")
        zbatch = codec.encode_grid_batch(points.astype(np.int64))
        kernel = codec.kernel
        sorted_z = kernel.to_int_list(zbatch[kernel.argsort(zbatch)])
        pivots = equidepth_pivots(sorted_z, num_shards)
        return cls(codec, ZCurveRule(codec, pivots))

    @property
    def num_shards(self) -> int:
        return self.rule.num_partitions

    def shard_of(self, points: np.ndarray) -> np.ndarray:
        """Shard id per point (vectorised pivot search)."""
        points = np.asarray(points, dtype=np.float64)
        zbatch = self.codec.encode_grid_batch(points.astype(np.int64))
        return self.rule.partition_of(zbatch)

    def split(
        self, points: np.ndarray, ids: np.ndarray
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Per-shard ``(points, ids)`` sub-batches (non-empty shards
        only), preserving within-shard input order."""
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        sids = self.shard_of(points)
        out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for sid in np.unique(sids):
            keep = sids == sid
            out[int(sid)] = (points[keep], ids[keep])
        return out

    def floor(self, sid: int) -> np.ndarray:
        """The shard's Z-region floor: the min corner of its RZ-region.

        Every point the shard can ever own (its Z-range is fixed) is
        ``>=`` this floor componentwise — the bound a degradation
        certificate carries when the shard is lost.
        """
        return self.rule.region(sid).minpt.astype(np.float64)

    def floors(self, sids: List[int]) -> np.ndarray:
        """Stacked ``(len(sids), d)`` floor matrix in the given order."""
        if not sids:
            return np.empty((0, self.codec.dimensions), dtype=np.float64)
        return np.vstack([self.floor(sid) for sid in sids])

    def describe(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "pivots": [int(p) for p in self.rule.pivots],
            "bits_per_dim": self.codec.bits_per_dim,
        }


def floor_dominated_mask(
    points: np.ndarray, floors: np.ndarray
) -> np.ndarray:
    """Rows of ``points`` that some floor dominates (could have been
    dominated by a lost shard's point) — the *uncertain* set.

    What the mask keeps (``~mask``) is certainly undominated by any
    lost point, hence a certified subset of the true skyline.
    """
    points = np.asarray(points, dtype=np.float64)
    uncertain = np.zeros(points.shape[0], dtype=bool)
    for f in np.asarray(floors, dtype=np.float64).reshape(-1, points.shape[1]):
        uncertain |= (
            (f <= points).all(axis=1) & (f < points).any(axis=1)
        )
    return uncertain


def floor_k_dominated_mask(
    points: np.ndarray, floors: np.ndarray, k: int
) -> np.ndarray:
    """Rows some floor *k-dominates* — the uncertain set for k-dominant
    queries.  Sound because a lost point ``p >= f`` k-dominating ``q``
    implies ``f`` k-dominates ``q`` (``p <= q`` ⇒ ``f <= q`` and
    ``p < q`` ⇒ ``f < q`` per dimension)."""
    points = np.asarray(points, dtype=np.float64)
    uncertain = np.zeros(points.shape[0], dtype=bool)
    for f in np.asarray(floors, dtype=np.float64).reshape(-1, points.shape[1]):
        le = f <= points
        lt = f < points
        uncertain |= (le.sum(axis=1) >= k) & (le & lt).any(axis=1)
    return uncertain
