"""In-process client facade + seeded workload replay.

:class:`SkylineClient` wraps a :class:`SkylineService` with one plain
method per query/mutation type, hiding the Query/Mutation dataclasses
and futures — the shape a normal caller wants.

:func:`replay_workload` drives a service with a seeded, mixed
read/write workload (the same generator backs the ``repro serve-bench``
CLI and ``benchmarks/test_serving.py``), and reports throughput,
latency percentiles, cache hit rate, shed/expired counts, and — under
chaos — retries, typed failures, and degraded-answer counts.

Replay is deterministic under retries: the operation stream is drawn
from one seeded generator that retries never touch, and retry backoff
comes from a seeded :class:`~repro.serving.resilience.RetryPolicy`
keyed by ``(operation index, attempt)`` — no wall-clock jitter — so
the same spec against the same fault plan issues the identical request
sequence with identical backoff schedules, run after run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    OverloadedError,
    ServingError,
)
from repro.serving.resilience import RetryBudget, RetryPolicy
from repro.serving.service import (
    Mutation,
    MutationResult,
    Query,
    QueryResult,
    SkylineService,
)


class SkylineClient:
    """Blocking convenience facade over a :class:`SkylineService`.

    Pass a :class:`~repro.serving.resilience.RetryPolicy` (and
    optionally a shared :class:`~repro.serving.resilience.RetryBudget`)
    to retry typed-retryable failures — shed requests, a crashed
    writer, an open circuit — with seeded deterministic backoff.
    """

    def __init__(
        self,
        service: SkylineService,
        dataset: str,
        retry_policy: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
        hub=None,
    ) -> None:
        self.service = service
        self.dataset = dataset
        self.retry_policy = retry_policy
        self.retry_budget = retry_budget
        #: a repro.streaming.SubscriptionHub attached to the service's
        #: registry; enables subscribe()/subscribe_from()
        self.hub = hub
        self._calls = 0

    def _call(self, fn: Callable[[], object]):
        if self.retry_policy is None:
            return fn()
        self._calls += 1
        return self.retry_policy.call(
            fn,
            key=(self.dataset, self._calls),
            budget=self.retry_budget,
        )

    # -- reads ---------------------------------------------------------
    def skyline(self, **kw: object) -> QueryResult:
        """The full skyline of the current version."""
        return self._call(
            lambda: self.service.query(Query.full(self.dataset, **kw))
        )

    def subspace(self, dims: Sequence[int], **kw: object) -> QueryResult:
        return self._call(
            lambda: self.service.query(
                Query.subspace(self.dataset, dims, **kw)
            )
        )

    def k_dominant(self, k: int, **kw: object) -> QueryResult:
        return self._call(
            lambda: self.service.query(
                Query.kdominant(self.dataset, k, **kw)
            )
        )

    def top_k(
        self,
        k: int,
        method: str = "sum",
        weights: Optional[Sequence[float]] = None,
        **kw: object,
    ) -> QueryResult:
        return self._call(
            lambda: self.service.query(
                Query.topk(
                    self.dataset, k, method=method, weights=weights, **kw
                )
            )
        )

    def why_not(
        self,
        point: Optional[Sequence[float]] = None,
        point_id: Optional[int] = None,
        **kw: object,
    ) -> QueryResult:
        return self._call(
            lambda: self.service.query(
                Query.explain(
                    self.dataset, point=point, point_id=point_id, **kw
                )
            )
        )

    # -- writes --------------------------------------------------------
    def insert(
        self, points: np.ndarray, ids: Sequence[int], **kw: object
    ) -> MutationResult:
        return self._call(
            lambda: self.service.mutate(
                Mutation.insert(self.dataset, points, ids, **kw)
            )
        )

    def delete(self, ids: Sequence[int], **kw: object) -> MutationResult:
        return self._call(
            lambda: self.service.mutate(
                Mutation.delete(self.dataset, ids, **kw)
            )
        )

    @property
    def version(self) -> int:
        return self.service.registry.version(self.dataset)

    # -- streaming -----------------------------------------------------
    def _require_hub(self):
        if self.hub is None:
            raise ConfigurationError(
                "SkylineClient(hub=...) is required for subscriptions; "
                "attach a repro.streaming.SubscriptionHub to the "
                "service's registry and pass it here"
            )
        return self.hub

    def subscribe(self, max_pending: Optional[int] = None):
        """Subscribe to skyline diffs from the current version.

        Returns a :class:`repro.streaming.Subscription`; iterate it (or
        call ``get(timeout)``) for :class:`repro.streaming.SkylineDiff`
        events.  The subscription's ``start_version`` /
        ``start_sky_ids`` are the baseline the diffs apply to.
        """
        return self._require_hub().subscribe(
            self.dataset, max_pending=max_pending
        )

    def subscribe_from(
        self, version: int, max_pending: Optional[int] = None
    ):
        """Resume a diff cursor from ``version`` (replays retained
        diffs, or starts with a full-state sync when out of
        retention)."""
        return self._require_hub().subscribe_from(
            self.dataset, version, max_pending=max_pending
        )

    def stream(self, timeout: Optional[float] = None):
        """Iterator of skyline diffs from the current version onward —
        the one-liner subscription: ``for diff in client.stream(1.0)``.

        With a ``timeout``, iteration ends after that long with no new
        event; without one it blocks until the subscription is closed.
        The subscription is released when iteration stops.
        """
        subscription = self.subscribe()
        try:
            for event in subscription.events(timeout):
                yield event
        finally:
            subscription.close()


# ----------------------------------------------------------------------
# workload replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded mixed read/write workload against one dataset.

    Reads are drawn from a small pool of distinct queries (so repeated
    queries exercise the cache, like real dashboards do); writes
    alternate inserts of fresh points with deletes of random alive ids.
    """

    dataset: str
    operations: int = 500
    read_fraction: float = 0.9
    #: distinct read queries in the rotation pool
    query_pool: int = 8
    #: points per insert batch / ids per delete batch
    batch_size: int = 8
    seed: int = 0
    timeout_seconds: Optional[float] = None
    #: total attempts per operation (1 = no retries); retried errors
    #: are the typed-retryable ones (shed, writer down, circuit open)
    retry_attempts: int = 1
    #: base backoff for the seeded retry schedule (grows 2x per
    #: attempt, deterministically jittered, capped at 20x base)
    retry_base_delay: float = 0.001

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ConfigurationError("operations must be positive")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.query_pool <= 0 or self.batch_size <= 0:
            raise ConfigurationError(
                "query_pool and batch_size must be positive"
            )
        if self.retry_attempts < 1:
            raise ConfigurationError("retry_attempts must be >= 1")
        if self.retry_base_delay < 0:
            raise ConfigurationError("retry_base_delay must be >= 0")


@dataclass
class ReplayReport:
    """What happened during one :func:`replay_workload` run."""

    operations: int = 0
    reads: int = 0
    writes: int = 0
    shed: int = 0
    expired: int = 0
    cache_hits: int = 0
    elapsed_seconds: float = 0.0
    read_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)
    final_version: int = 0
    final_skyline_size: int = 0
    #: retry attempts consumed across all operations
    retries: int = 0
    #: reads answered under a non-fresh certificate
    degraded_stale: int = 0
    degraded_partial: int = 0
    #: terminal typed failures by exception class name
    failures: Dict[str, int] = field(default_factory=dict)
    #: per-shard shed ratio over this replay (sharded services only;
    #: empty for single services or when no shard saw traffic)
    shard_shed_ratios: Dict[int, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed operations per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return (self.reads + self.writes) / self.elapsed_seconds

    @staticmethod
    def _percentile(values: Sequence[float], q: float) -> float:
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values, dtype=np.float64), q))

    def latency_percentiles(
        self, which: str = "read"
    ) -> Dict[str, float]:
        values = (
            self.read_latencies if which == "read" else self.write_latencies
        )
        return {
            "p50": self._percentile(values, 50),
            "p90": self._percentile(values, 90),
            "p99": self._percentile(values, 99),
        }

    def queue_wait_percentiles(self) -> Dict[str, float]:
        return {
            "p50": self._percentile(self.queue_waits, 50),
            "p90": self._percentile(self.queue_waits, 90),
            "p99": self._percentile(self.queue_waits, 99),
        }

    def summary(self) -> Dict[str, object]:
        return {
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "shed": self.shed,
            "expired": self.expired,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.reads if self.reads else 0.0
            ),
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_ops_per_second": self.throughput,
            "read_latency_seconds": self.latency_percentiles("read"),
            "write_latency_seconds": self.latency_percentiles("write"),
            "queue_wait_seconds": self.queue_wait_percentiles(),
            "final_version": self.final_version,
            "final_skyline_size": self.final_skyline_size,
            "retries": self.retries,
            "degraded_stale": self.degraded_stale,
            "degraded_partial": self.degraded_partial,
            "failures": dict(self.failures),
            "shard_shed_ratios": {
                int(sid): ratio
                for sid, ratio in sorted(self.shard_shed_ratios.items())
            },
            "shed_fairness": self.shed_fairness,
        }

    @property
    def shed_fairness(self) -> float:
        """Max/min per-shard shed ratio — 1.0 is perfectly even load
        shedding, large values mean one shard sheds far more than its
        peers (a routing or capacity imbalance).  With fewer than two
        shards reporting traffic the question is moot and this is 1.0;
        when some shard shed nothing while another shed, the ratio is
        ``inf`` (reported as-is; JSON emitters should guard)."""
        ratios = [r for r in self.shard_shed_ratios.values()]
        if len(ratios) < 2:
            return 1.0
        low, high = min(ratios), max(ratios)
        if high == 0.0:
            return 1.0
        if low == 0.0:
            return float("inf")
        return high / low

    @property
    def availability(self) -> float:
        """Fraction of *admitted* operations that ended in a usable
        answer (fresh or explicitly degraded) rather than a terminal
        failure.  Shed operations are excluded — they were refused at
        the door with a retry-after hint, not answered wrongly."""
        admitted = self.operations - self.shed
        if admitted <= 0:
            return 1.0
        return (self.reads + self.writes) / admitted


def shed_ratios_from_admission(
    before: Dict[int, Dict[str, Dict[str, int]]],
    after: Dict[int, Dict[str, Dict[str, int]]],
) -> Dict[int, float]:
    """Per-shard shed ratio from admission-counter snapshots taken
    around a replay: delta rejected over delta (admitted + rejected),
    summed across request classes.  Shards absent from ``before``
    (e.g. adopted mid-replay) count from zero; shards with no traffic
    in the window are omitted."""
    ratios: Dict[int, float] = {}
    for sid, stats in after.items():
        prior = before.get(sid, {})
        rejected = 0
        admitted = 0
        for klass, counters in stats.items():
            base = prior.get(klass, {})
            rejected += counters["rejected"] - base.get("rejected", 0)
            admitted += counters["admitted"] - base.get("admitted", 0)
        total = admitted + rejected
        if total > 0:
            ratios[int(sid)] = rejected / total
    return ratios


def _build_query_pool(
    spec: WorkloadSpec, dimensions: int, rng: np.random.Generator
) -> List[Query]:
    """A deterministic rotation of distinct read queries."""
    pool: List[Query] = [
        Query.full(spec.dataset, timeout_seconds=spec.timeout_seconds)
    ]
    while len(pool) < spec.query_pool:
        kind = len(pool) % 4
        if kind == 0 and dimensions > 1:
            keep = 2 + int(rng.integers(0, max(1, dimensions - 1)))
            dims = sorted(
                int(d) for d in
                rng.choice(dimensions, size=min(keep, dimensions),
                           replace=False)
            )
            pool.append(
                Query.subspace(
                    spec.dataset, dims,
                    timeout_seconds=spec.timeout_seconds,
                )
            )
        elif kind == 1 and dimensions > 2:
            pool.append(
                Query.kdominant(
                    spec.dataset, int(rng.integers(2, dimensions)),
                    timeout_seconds=spec.timeout_seconds,
                )
            )
        elif kind == 2:
            pool.append(
                Query.topk(
                    spec.dataset, int(rng.integers(1, 8)), method="sum",
                    timeout_seconds=spec.timeout_seconds,
                )
            )
        else:
            pool.append(
                Query.full(spec.dataset, timeout_seconds=spec.timeout_seconds)
            )
    return pool[: spec.query_pool]


def replay_workload(
    service: SkylineService, spec: WorkloadSpec
) -> ReplayReport:
    """Replay a seeded mixed workload and collect latency statistics.

    Shed (:class:`OverloadedError`) and expired
    (:class:`DeadlineExceededError`) requests are counted, not raised —
    under deliberate overload they are the expected outcome.  Other
    typed serving failures (writer down without recovery, poisoned
    requests, open circuits) land in ``report.failures`` by class name.

    With ``spec.retry_attempts > 1``, retryable errors are retried
    through a seeded :class:`RetryPolicy` keyed by ``(class, operation
    index, attempt)``.  Retries deliberately do **not** consume the
    workload generator — the submitted operation stream is identical
    with or without retries enabled.
    """
    snapshot = service.registry.snapshot(spec.dataset)
    d = snapshot.dimensions
    cells = snapshot.codec.cells_per_dim
    rng = np.random.default_rng(spec.seed)
    pool = _build_query_pool(spec, d, rng)
    next_id = int(snapshot.ids.max()) + 1 if snapshot.ids.size else 0

    report = ReplayReport()
    policy: Optional[RetryPolicy] = None
    budget: Optional[RetryBudget] = None
    if spec.retry_attempts > 1:
        policy = RetryPolicy(
            max_attempts=spec.retry_attempts,
            base_delay=spec.retry_base_delay,
            max_delay=spec.retry_base_delay * 20,
            seed=spec.seed,
        )
        budget = RetryBudget(
            capacity=max(10.0, spec.operations * 0.1)
        )

    def _issue(fn: Callable[[], object], op: int) -> object:
        if policy is None:
            return fn()

        def _count_retry(
            attempt: int, exc: BaseException, pause: float
        ) -> None:
            report.retries += 1

        return policy.call(
            fn, key=("op", op), budget=budget,
            on_retry=_count_retry,
        )

    # Sharded routers expose per-shard admission counters; snapshot
    # them so the report can attribute shedding to individual shards.
    admission_before: Dict[int, Dict[str, Dict[str, int]]] = {}
    if hasattr(service, "shard_admission_stats"):
        admission_before = service.shard_admission_stats()

    started = perf_counter()
    for op in range(spec.operations):
        report.operations += 1
        if rng.random() < spec.read_fraction:
            query = pool[int(rng.integers(0, len(pool)))]
            began = perf_counter()
            try:
                result = _issue(lambda: service.query(query), op)
            except OverloadedError:
                report.shed += 1
                continue
            except DeadlineExceededError:
                report.expired += 1
                continue
            except ServingError as exc:
                name = type(exc).__name__
                report.failures[name] = report.failures.get(name, 0) + 1
                continue
            report.reads += 1
            report.read_latencies.append(perf_counter() - began)
            report.queue_waits.append(result.queue_wait_seconds)
            if result.cached:
                report.cache_hits += 1
            certificate = result.certificate or {}
            if certificate.get("kind") == "stale":
                report.degraded_stale += 1
            elif certificate.get("kind") == "partial":
                report.degraded_partial += 1
        else:
            current = service.registry.snapshot(spec.dataset)
            if op % 2 == 0 or current.size <= spec.batch_size:
                points = rng.integers(
                    0, cells, size=(spec.batch_size, d)
                ).astype(np.float64)
                ids = np.arange(
                    next_id, next_id + spec.batch_size, dtype=np.int64
                )
                next_id += spec.batch_size
                mutation = Mutation.insert(
                    spec.dataset, points, ids,
                    timeout_seconds=spec.timeout_seconds,
                )
            else:
                take = min(spec.batch_size, current.size - 1)
                doomed = rng.choice(current.ids, size=take, replace=False)
                mutation = Mutation.delete(
                    spec.dataset, doomed,
                    timeout_seconds=spec.timeout_seconds,
                )
            began = perf_counter()
            try:
                result = _issue(lambda: service.mutate(mutation), op)
            except OverloadedError:
                report.shed += 1
                continue
            except DeadlineExceededError:
                report.expired += 1
                continue
            except (ServingError, DatasetError) as exc:
                # DatasetError covers a retried batch whose first
                # attempt had already taken effect (duplicate insert /
                # missing delete ids) — a failure of the *request*, not
                # of serving.
                name = type(exc).__name__
                report.failures[name] = report.failures.get(name, 0) + 1
                continue
            report.writes += 1
            report.write_latencies.append(perf_counter() - began)
            report.queue_waits.append(result.queue_wait_seconds)
    report.elapsed_seconds = perf_counter() - started
    if hasattr(service, "shard_admission_stats"):
        report.shard_shed_ratios = shed_ratios_from_admission(
            admission_before, service.shard_admission_stats()
        )
    final = service.registry.snapshot(spec.dataset)
    report.final_version = final.version
    report.final_skyline_size = final.skyline_size
    return report
