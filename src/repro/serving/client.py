"""In-process client facade + seeded workload replay.

:class:`SkylineClient` wraps a :class:`SkylineService` with one plain
method per query/mutation type, hiding the Query/Mutation dataclasses
and futures — the shape a normal caller wants.

:func:`replay_workload` drives a service with a seeded, mixed
read/write workload (the same generator backs the ``repro serve-bench``
CLI and ``benchmarks/test_serving.py``), and reports throughput,
latency percentiles, cache hit rate, and shed/expired counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.serving.service import (
    Mutation,
    MutationResult,
    Query,
    QueryResult,
    SkylineService,
)


class SkylineClient:
    """Blocking convenience facade over a :class:`SkylineService`."""

    def __init__(self, service: SkylineService, dataset: str) -> None:
        self.service = service
        self.dataset = dataset

    # -- reads ---------------------------------------------------------
    def skyline(self, **kw: object) -> QueryResult:
        """The full skyline of the current version."""
        return self.service.query(Query.full(self.dataset, **kw))

    def subspace(self, dims: Sequence[int], **kw: object) -> QueryResult:
        return self.service.query(Query.subspace(self.dataset, dims, **kw))

    def k_dominant(self, k: int, **kw: object) -> QueryResult:
        return self.service.query(Query.kdominant(self.dataset, k, **kw))

    def top_k(
        self,
        k: int,
        method: str = "sum",
        weights: Optional[Sequence[float]] = None,
        **kw: object,
    ) -> QueryResult:
        return self.service.query(
            Query.topk(self.dataset, k, method=method, weights=weights, **kw)
        )

    def why_not(
        self,
        point: Optional[Sequence[float]] = None,
        point_id: Optional[int] = None,
        **kw: object,
    ) -> QueryResult:
        return self.service.query(
            Query.explain(self.dataset, point=point, point_id=point_id, **kw)
        )

    # -- writes --------------------------------------------------------
    def insert(
        self, points: np.ndarray, ids: Sequence[int], **kw: object
    ) -> MutationResult:
        return self.service.mutate(
            Mutation.insert(self.dataset, points, ids, **kw)
        )

    def delete(self, ids: Sequence[int], **kw: object) -> MutationResult:
        return self.service.mutate(Mutation.delete(self.dataset, ids, **kw))

    @property
    def version(self) -> int:
        return self.service.registry.version(self.dataset)


# ----------------------------------------------------------------------
# workload replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded mixed read/write workload against one dataset.

    Reads are drawn from a small pool of distinct queries (so repeated
    queries exercise the cache, like real dashboards do); writes
    alternate inserts of fresh points with deletes of random alive ids.
    """

    dataset: str
    operations: int = 500
    read_fraction: float = 0.9
    #: distinct read queries in the rotation pool
    query_pool: int = 8
    #: points per insert batch / ids per delete batch
    batch_size: int = 8
    seed: int = 0
    timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise ConfigurationError("operations must be positive")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.query_pool <= 0 or self.batch_size <= 0:
            raise ConfigurationError(
                "query_pool and batch_size must be positive"
            )


@dataclass
class ReplayReport:
    """What happened during one :func:`replay_workload` run."""

    operations: int = 0
    reads: int = 0
    writes: int = 0
    shed: int = 0
    expired: int = 0
    cache_hits: int = 0
    elapsed_seconds: float = 0.0
    read_latencies: List[float] = field(default_factory=list)
    write_latencies: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)
    final_version: int = 0
    final_skyline_size: int = 0

    @property
    def throughput(self) -> float:
        """Completed operations per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return (self.reads + self.writes) / self.elapsed_seconds

    @staticmethod
    def _percentile(values: Sequence[float], q: float) -> float:
        if not values:
            return 0.0
        return float(np.percentile(np.asarray(values, dtype=np.float64), q))

    def latency_percentiles(
        self, which: str = "read"
    ) -> Dict[str, float]:
        values = (
            self.read_latencies if which == "read" else self.write_latencies
        )
        return {
            "p50": self._percentile(values, 50),
            "p90": self._percentile(values, 90),
            "p99": self._percentile(values, 99),
        }

    def queue_wait_percentiles(self) -> Dict[str, float]:
        return {
            "p50": self._percentile(self.queue_waits, 50),
            "p90": self._percentile(self.queue_waits, 90),
            "p99": self._percentile(self.queue_waits, 99),
        }

    def summary(self) -> Dict[str, object]:
        return {
            "operations": self.operations,
            "reads": self.reads,
            "writes": self.writes,
            "shed": self.shed,
            "expired": self.expired,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (
                self.cache_hits / self.reads if self.reads else 0.0
            ),
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_ops_per_second": self.throughput,
            "read_latency_seconds": self.latency_percentiles("read"),
            "write_latency_seconds": self.latency_percentiles("write"),
            "queue_wait_seconds": self.queue_wait_percentiles(),
            "final_version": self.final_version,
            "final_skyline_size": self.final_skyline_size,
        }


def _build_query_pool(
    spec: WorkloadSpec, dimensions: int, rng: np.random.Generator
) -> List[Query]:
    """A deterministic rotation of distinct read queries."""
    pool: List[Query] = [
        Query.full(spec.dataset, timeout_seconds=spec.timeout_seconds)
    ]
    while len(pool) < spec.query_pool:
        kind = len(pool) % 4
        if kind == 0 and dimensions > 1:
            keep = 2 + int(rng.integers(0, max(1, dimensions - 1)))
            dims = sorted(
                int(d) for d in
                rng.choice(dimensions, size=min(keep, dimensions),
                           replace=False)
            )
            pool.append(
                Query.subspace(
                    spec.dataset, dims,
                    timeout_seconds=spec.timeout_seconds,
                )
            )
        elif kind == 1 and dimensions > 2:
            pool.append(
                Query.kdominant(
                    spec.dataset, int(rng.integers(2, dimensions)),
                    timeout_seconds=spec.timeout_seconds,
                )
            )
        elif kind == 2:
            pool.append(
                Query.topk(
                    spec.dataset, int(rng.integers(1, 8)), method="sum",
                    timeout_seconds=spec.timeout_seconds,
                )
            )
        else:
            pool.append(
                Query.full(spec.dataset, timeout_seconds=spec.timeout_seconds)
            )
    return pool[: spec.query_pool]


def replay_workload(
    service: SkylineService, spec: WorkloadSpec
) -> ReplayReport:
    """Replay a seeded mixed workload and collect latency statistics.

    Shed (:class:`OverloadedError`) and expired
    (:class:`DeadlineExceededError`) requests are counted, not raised —
    under deliberate overload they are the expected outcome.
    """
    snapshot = service.registry.snapshot(spec.dataset)
    d = snapshot.dimensions
    cells = snapshot.codec.cells_per_dim
    rng = np.random.default_rng(spec.seed)
    pool = _build_query_pool(spec, d, rng)
    next_id = int(snapshot.ids.max()) + 1 if snapshot.ids.size else 0

    report = ReplayReport()
    started = perf_counter()
    for op in range(spec.operations):
        report.operations += 1
        if rng.random() < spec.read_fraction:
            query = pool[int(rng.integers(0, len(pool)))]
            began = perf_counter()
            try:
                result = service.query(query)
            except OverloadedError:
                report.shed += 1
                continue
            except DeadlineExceededError:
                report.expired += 1
                continue
            report.reads += 1
            report.read_latencies.append(perf_counter() - began)
            report.queue_waits.append(result.queue_wait_seconds)
            if result.cached:
                report.cache_hits += 1
        else:
            current = service.registry.snapshot(spec.dataset)
            if op % 2 == 0 or current.size <= spec.batch_size:
                points = rng.integers(
                    0, cells, size=(spec.batch_size, d)
                ).astype(np.float64)
                ids = np.arange(
                    next_id, next_id + spec.batch_size, dtype=np.int64
                )
                next_id += spec.batch_size
                mutation = Mutation.insert(
                    spec.dataset, points, ids,
                    timeout_seconds=spec.timeout_seconds,
                )
            else:
                take = min(spec.batch_size, current.size - 1)
                doomed = rng.choice(current.ids, size=take, replace=False)
                mutation = Mutation.delete(
                    spec.dataset, doomed,
                    timeout_seconds=spec.timeout_seconds,
                )
            began = perf_counter()
            try:
                result = service.mutate(mutation)
            except OverloadedError:
                report.shed += 1
                continue
            except DeadlineExceededError:
                report.expired += 1
                continue
            report.writes += 1
            report.write_latencies.append(perf_counter() - began)
            report.queue_waits.append(result.queue_wait_seconds)
    report.elapsed_seconds = perf_counter() - started
    final = service.registry.snapshot(spec.dataset)
    report.final_version = final.version
    report.final_skyline_size = final.skyline_size
    return report
