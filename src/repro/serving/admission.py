"""Admission control: bounded queues, load shedding, wait accounting.

A service that accepts every request melts down under overload: queues
grow without bound and every request's latency goes with them.  The
:class:`AdmissionController` keeps the service in its operating region:

* requests are classified **read** or **mutate**, each with its own
  bounded wait queue and concurrency limit (mutations default to a
  single writer, matching the registry's per-dataset writer lock);
* when a class's wait queue is full the request is *shed* immediately
  with a typed :class:`~repro.core.exceptions.OverloadedError` — the
  caller learns in microseconds, not after a doomed wait — carrying the
  queue depth, the queue limit, and a retry-after hint derived from an
  EWMA of recent service times (estimated drain time of the queue), so
  a well-behaved client backs off by the server's own estimate;
* every admitted request carries a :class:`Ticket` whose queue-wait and
  service-time land in ``serving.<class>_queue_wait_seconds`` /
  ``serving.<class>_service_seconds`` histograms on the shared
  metrics registry, so p99 queue wait is always observable.

The controller only does accounting and shedding decisions; the actual
worker pools live in :class:`~repro.serving.service.SkylineService`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.exceptions import ConfigurationError, OverloadedError
from repro.observability.metrics import MetricsRegistry

from repro.serving.registry import SERVING_GROUP

#: request classes
READ = "read"
MUTATE = "mutate"
CLASSES = (READ, MUTATE)


@dataclass(frozen=True)
class AdmissionConfig:
    """Queue bounds and concurrency limits, per request class."""

    #: worker threads executing read queries concurrently
    read_concurrency: int = 4
    #: worker threads executing mutations (1 = serialized writes)
    mutate_concurrency: int = 1
    #: admitted-but-not-yet-running reads tolerated before shedding
    max_read_queue: int = 64
    #: admitted-but-not-yet-running mutations tolerated before shedding
    max_mutate_queue: int = 16
    #: deadline applied to queries that don't carry their own
    #: ``timeout_seconds`` (None = no default deadline)
    default_timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.read_concurrency <= 0 or self.mutate_concurrency <= 0:
            raise ConfigurationError("concurrency limits must be positive")
        if self.max_read_queue < 0 or self.max_mutate_queue < 0:
            raise ConfigurationError("queue bounds must be >= 0")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds <= 0
        ):
            raise ConfigurationError(
                "default_timeout_seconds must be positive"
            )

    def concurrency(self, klass: str) -> int:
        return (
            self.read_concurrency if klass == READ
            else self.mutate_concurrency
        )

    def max_queue(self, klass: str) -> int:
        return self.max_read_queue if klass == READ else self.max_mutate_queue


@dataclass
class Ticket:
    """One admitted request's accounting record."""

    klass: str
    admitted_at: float
    #: absolute monotonic deadline (None = no deadline)
    deadline: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def queue_wait_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.started_at - self.admitted_at

    @property
    def service_seconds(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline


class AdmissionController:
    """Shed-or-admit decisions plus queue/service accounting."""

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.metrics = metrics
        self._lock = threading.Lock()
        self._queued: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self._running: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self._admitted: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self._rejected: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self._expired: Dict[str, int] = {klass: 0 for klass in CLASSES}
        self._dropped: Dict[str, int] = {klass: 0 for klass in CLASSES}
        #: EWMA of per-request service seconds, per class (drain model)
        self._service_ewma: Dict[str, float] = {klass: 0.0 for klass in CLASSES}

    # ------------------------------------------------------------------
    # lifecycle hooks (called by the service)
    # ------------------------------------------------------------------
    def admit(
        self, klass: str, timeout_seconds: Optional[float] = None
    ) -> Ticket:
        """Admit or shed one request of the given class.

        Raises :class:`OverloadedError` when the class's wait queue is
        at capacity; otherwise returns the request's :class:`Ticket`
        with its deadline resolved.  A shed error is *structured*: it
        carries the observed queue depth, the configured limit, and a
        retry-after hint (estimated queue drain time), all of which the
        retry machinery in :mod:`repro.serving.resilience` consumes.
        """
        if klass not in CLASSES:
            raise ConfigurationError(f"unknown request class {klass!r}")
        cfg = self.config
        with self._lock:
            if self._queued[klass] >= cfg.max_queue(klass):
                self._rejected[klass] += 1
                queued = self._queued[klass]
                retry_after = self._drain_estimate_locked(klass)
            else:
                self._queued[klass] += 1
                self._admitted[klass] += 1
                queued = -1
                retry_after = 0.0
        if queued >= 0:
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, f"{klass}_rejected")
                self.metrics.observe(
                    f"serving.{klass}_shed_queue_depth", float(queued)
                )
            raise OverloadedError(
                f"{klass} queue full ({queued} waiting >= "
                f"{cfg.max_queue(klass)}); request shed",
                queue_depth=queued,
                queue_limit=cfg.max_queue(klass),
                retry_after_seconds=retry_after or None,
            )
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"{klass}_admitted")
        timeout = (
            timeout_seconds
            if timeout_seconds is not None
            else cfg.default_timeout_seconds
        )
        now = time.monotonic()
        return Ticket(
            klass=klass,
            admitted_at=now,
            deadline=None if timeout is None else now + timeout,
        )

    def started(self, ticket: Ticket) -> None:
        """A worker dequeued the request and is about to execute it."""
        ticket.started_at = time.monotonic()
        with self._lock:
            self._queued[ticket.klass] -= 1
            self._running[ticket.klass] += 1
        if self.metrics is not None:
            self.metrics.observe(
                f"serving.{ticket.klass}_queue_wait_seconds",
                ticket.queue_wait_seconds,
            )

    def finished(self, ticket: Ticket, ok: bool = True) -> None:
        """Execution ended (successfully or not)."""
        ticket.finished_at = time.monotonic()
        with self._lock:
            self._running[ticket.klass] -= 1
            # EWMA of service time feeds the shed retry-after estimate.
            sample = ticket.service_seconds
            previous = self._service_ewma[ticket.klass]
            self._service_ewma[ticket.klass] = (
                sample if previous == 0.0
                else 0.8 * previous + 0.2 * sample
            )
        if self.metrics is not None:
            self.metrics.observe(
                f"serving.{ticket.klass}_service_seconds",
                ticket.service_seconds,
            )
            if not ok:
                self.metrics.inc(SERVING_GROUP, f"{ticket.klass}_failed")

    def expire(self, ticket: Ticket, dequeued: bool = False) -> None:
        """The request's deadline passed before execution started.

        ``dequeued`` tells the controller whether the request had
        already left the wait queue (a worker popped it) or is being
        dropped in place.
        """
        with self._lock:
            if not dequeued:
                self._queued[ticket.klass] -= 1
            self._expired[ticket.klass] += 1
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"{ticket.klass}_expired")

    def drop(self, ticket: Ticket) -> None:
        """The request was dequeued but will never run (quarantined as
        a poison pill after repeatedly crashing its workers): release
        its queue slot without touching the running counters."""
        with self._lock:
            self._queued[ticket.klass] -= 1
            self._dropped[ticket.klass] += 1
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"{ticket.klass}_poisoned")

    # ------------------------------------------------------------------
    def _drain_estimate_locked(self, klass: str) -> float:
        """Estimated seconds until the class's queue drains (holding
        the lock): queued work divided by concurrency, priced at the
        service-time EWMA."""
        ewma = self._service_ewma[klass]
        if ewma <= 0.0:
            return 0.0
        waiting = self._queued[klass] + self._running[klass]
        return ewma * max(1.0, waiting / self.config.concurrency(klass))

    def retry_after_estimate(self, klass: str) -> float:
        """Public drain-time estimate (deadline errors reuse it)."""
        with self._lock:
            return self._drain_estimate_locked(klass)

    def queued(self, klass: str) -> int:
        with self._lock:
            return self._queued[klass]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-class admitted/rejected/expired/queued/running snapshot."""
        with self._lock:
            return {
                klass: {
                    "admitted": self._admitted[klass],
                    "rejected": self._rejected[klass],
                    "expired": self._expired[klass],
                    "dropped": self._dropped[klass],
                    "queued": self._queued[klass],
                    "running": self._running[klass],
                }
                for klass in CLASSES
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            "AdmissionController("
            + ", ".join(
                f"{klass}: {s['admitted']}a/{s['rejected']}r"
                for klass, s in stats.items()
            )
            + ")"
        )
