"""Shard health checks: heartbeat probes feeding circuit breakers.

A sharded router must not discover a dead shard by timing out a user's
query against it.  The :class:`HealthMonitor` probes every shard's
serving path out-of-band — a :meth:`~repro.serving.service.SkylineService.ping`
that touches the same snapshot machinery a real query would — and
feeds the outcome into the shard's
:class:`~repro.serving.resilience.CircuitBreaker`.  A shard that stops
answering heartbeats has its breaker opened *before* user traffic
piles up on it; the router then serves certified partial answers for
that shard's Z-region and starts failover.

Determinism: heartbeats can be *lost* (the network ate the probe, not
the shard) via the fault plan's seeded
:meth:`~repro.serving.faults.ServingFaultPlan.heartbeat_lost` draw,
keyed by a monotone tick counter — so a seeded chaos run sees the same
false-positive breaker trips every time.  A false positive self-heals:
the next successful probe (or real sub-query let through as the
half-open probe) closes the breaker again.

The monitor is driven two ways:

* **manual** — the router calls :meth:`tick` inline every
  ``heartbeat_every_ops`` operations.  Fully deterministic; what the
  chaos tests and benchmarks use.
* **background** — :meth:`start` spawns a daemon thread ticking every
  ``interval_seconds``.  For long-lived deployments; tests keep it off.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Mapping, Optional

from repro.core.exceptions import ConfigurationError
from repro.observability.metrics import MetricsRegistry
from repro.serving.faults import ServingFaultPlan
from repro.serving.registry import SERVING_GROUP
from repro.serving.resilience import CircuitBreaker

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Probes shard serving paths and reflects outcomes into breakers.

    ``probe(sid)`` must exercise the shard's read path and return its
    current snapshot version (raising on failure); the router passes a
    closure over its live shard table so failovers are picked up
    automatically.  ``breakers`` maps shard id → breaker and is shared
    with the router: one breaker per shard *slot*, surviving failover,
    so a recovered shard closes the same breaker its crash opened.
    """

    def __init__(
        self,
        dataset: str,
        probe: Callable[[int], int],
        breakers: Mapping[int, CircuitBreaker],
        fault_plan: Optional[ServingFaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        interval_seconds: float = 0.05,
    ) -> None:
        if interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        self.dataset = dataset
        self.probe = probe
        self.breakers = breakers
        self.fault_plan = fault_plan
        self.metrics = metrics
        self.interval_seconds = interval_seconds
        self._lock = threading.Lock()
        self._tick = 0
        self._last_version: Dict[int, int] = {}
        self._consecutive_misses: Dict[int, int] = {
            sid: 0 for sid in breakers
        }
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def tick(self) -> Dict[int, bool]:
        """Probe every shard once; returns ``{sid: healthy}``.

        A lost heartbeat (seeded draw) or a raising probe counts as a
        breaker failure; a successful probe resets the breaker.  Probes
        do not consume the half-open probe slot — they report *into*
        the breaker, they are not gated *by* it (an open breaker is
        exactly when probing matters most).
        """
        with self._lock:
            self._tick += 1
            tick = self._tick
        healthy: Dict[int, bool] = {}
        for sid in sorted(self.breakers):
            breaker = self.breakers[sid]
            lost = (
                self.fault_plan is not None
                and self.fault_plan.heartbeat_lost(sid, tick)
            )
            if lost:
                ok = False
                self._count("heartbeat_lost")
            else:
                try:
                    version = self.probe(sid)
                except BaseException:  # noqa: BLE001 — any failure opens
                    ok = False
                else:
                    ok = True
                    with self._lock:
                        self._last_version[sid] = int(version)
            healthy[sid] = ok
            with self._lock:
                self._consecutive_misses[sid] = (
                    0 if ok else self._consecutive_misses.get(sid, 0) + 1
                )
            if ok:
                breaker.record_success()
                self._count("heartbeat_ok")
            else:
                breaker.record_failure()
                self._count("heartbeat_failed")
        return healthy

    @property
    def ticks(self) -> int:
        with self._lock:
            return self._tick

    def status(self) -> Dict[int, dict]:
        """Point-in-time health table (breaker state + last seen
        version + consecutive missed probes) per shard."""
        out: Dict[int, dict] = {}
        for sid in sorted(self.breakers):
            with self._lock:
                out[sid] = {
                    "state": self.breakers[sid].state,
                    "last_version": self._last_version.get(sid),
                    "consecutive_misses": self._consecutive_misses.get(
                        sid, 0
                    ),
                }
        return out

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, name)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the background probe thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name=f"health-{self.dataset}", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.tick()

    def __repr__(self) -> str:
        return (
            f"HealthMonitor({self.dataset!r}, ticks={self.ticks}, "
            f"shards={sorted(self.breakers)})"
        )
