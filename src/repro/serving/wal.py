"""Durable mutation WAL + snapshot store for the serving registry.

The registry's crash-safety contract: **every acknowledged mutation
batch is recoverable**, and a crashed writer replays *WAL onto last
durable snapshot* to republish a snapshot bit-identical (as an
id-keyed set: same alive points, same skyline, same version) to the
uninterrupted run.

On disk, each dataset owns one directory::

    <root>/<dataset>/meta.json   # format, codec, checkpoint seq/version
    <root>/<dataset>/state.npz   # alive points/ids + skyline ids (CRC'd)
    <root>/<dataset>/wal.log     # CRC32-framed JSONL of mutation batches

* The **WAL** is append-only: one frame per mutation batch,
  ``"<crc32 hex> <json body>\\n"``, flushed and fsynced before the
  batch is applied in memory (write-ahead).  A torn final frame — the
  signature of a crash mid-append — is detected by its CRC and dropped
  (the batch was never acknowledged); a CRC mismatch *before* the tail
  is real corruption and refuses recovery.
* The **checkpoint** (snapshot + meta) is rewritten every
  ``checkpoint_every`` publishes via the same tmp+rename discipline as
  :mod:`repro.pipeline.checkpoint`, then the WAL is rotated (atomic
  replace with an empty file).  Replay skips WAL records with
  ``seq <= checkpoint seq``, so a crash *between* checkpoint and
  rotation recovers correctly too — recovery is idempotent.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.pipeline.checkpoint import atomic_write_bytes
from repro.zorder.encoding import ZGridCodec

__all__ = ["WalRecord", "WalReplay", "MutationWAL", "DatasetStore"]

_FORMAT_VERSION = 1
_META_FILE = "meta.json"
_STATE_FILE = "state.npz"
_WAL_FILE = "wal.log"


# ----------------------------------------------------------------------
# WAL records and frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WalRecord:
    """One durable mutation batch.

    ``seq`` is the registry's per-dataset mutation sequence number —
    it equals the snapshot version the batch publishes, which is what
    lets recovery resume version numbering exactly.
    """

    seq: int
    op: str  # "insert" | "delete"
    ids: Tuple[int, ...]
    #: row-major grid coordinates for inserts; None for deletes
    points: Optional[Tuple[Tuple[float, ...], ...]] = None

    def to_body(self) -> str:
        payload = {
            "seq": self.seq,
            "op": self.op,
            "ids": list(self.ids),
            "points": (
                None
                if self.points is None
                else [list(row) for row in self.points]
            ),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_body(cls, body: str) -> "WalRecord":
        payload = json.loads(body)
        points = payload.get("points")
        return cls(
            seq=int(payload["seq"]),
            op=str(payload["op"]),
            ids=tuple(int(i) for i in payload["ids"]),
            points=(
                None
                if points is None
                else tuple(tuple(float(v) for v in row) for row in points)
            ),
        )

    @classmethod
    def insert(cls, seq: int, points: np.ndarray,
               ids: np.ndarray) -> "WalRecord":
        return cls(
            seq=seq,
            op="insert",
            ids=tuple(int(i) for i in ids),
            points=tuple(tuple(float(v) for v in row) for row in points),
        )

    @classmethod
    def delete(cls, seq: int, ids) -> "WalRecord":
        return cls(seq=seq, op="delete",
                   ids=tuple(int(i) for i in ids), points=None)


@dataclass(frozen=True)
class WalReplay:
    """What :meth:`MutationWAL.replay` found on disk."""

    records: Tuple[WalRecord, ...]
    #: torn final frames dropped (0 or 1 — a crash can tear at most
    #: the frame being appended)
    dropped_tail: int


def _frame(body: str) -> bytes:
    data = body.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data) & 0xFFFFFFFF, data)


def _parse_frame(line: bytes) -> WalRecord:
    """Decode one frame; raises ``ValueError`` on any mismatch."""
    if b" " not in line:
        raise ValueError("frame has no CRC prefix")
    crc_hex, _, body = line.partition(b" ")
    expected = int(crc_hex, 16)
    if (zlib.crc32(body) & 0xFFFFFFFF) != expected:
        raise ValueError("frame CRC mismatch")
    return WalRecord.from_body(body.decode("utf-8"))


class MutationWAL:
    """Append-only CRC32-framed JSONL of mutation batches."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[io.BufferedWriter] = None

    # -- write path ----------------------------------------------------
    def append(self, record: WalRecord) -> None:
        """Durably append one batch (flush + fsync before returning)."""
        if self._handle is None:
            self._handle = open(self.path, "ab")
        self._handle.write(_frame(record.to_body()))
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def rotate(self) -> None:
        """Atomically truncate (tmp + rename): the post-checkpoint WAL
        is empty, and a crash mid-rotation leaves the old WAL intact —
        replay is idempotent across the checkpoint boundary."""
        self.close()
        atomic_write_bytes(self.path, b"")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- read path -----------------------------------------------------
    def replay(self) -> WalReplay:
        """Read every durable batch back, tolerating a torn tail.

        A final frame that fails to parse or CRC-check was torn by a
        crash mid-append; it is dropped (the mutation was never
        acknowledged, so dropping it is the *correct* recovery).  A bad
        frame anywhere else is real corruption →
        :class:`~repro.core.exceptions.ConfigurationError`.
        """
        if not os.path.exists(self.path):
            return WalReplay(records=(), dropped_tail=0)
        with open(self.path, "rb") as handle:
            raw = handle.read()
        if not raw:
            return WalReplay(records=(), dropped_tail=0)
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()  # trailing newline of the last complete frame
        records: List[WalRecord] = []
        dropped = 0
        last_seq: Optional[int] = None
        for index, line in enumerate(lines):
            try:
                record = _parse_frame(line)
            except (ValueError, json.JSONDecodeError, KeyError) as exc:
                if index == len(lines) - 1:
                    dropped = 1
                    break
                raise ConfigurationError(
                    f"WAL {self.path!r} frame {index} is corrupt "
                    f"({exc}); refusing to recover from a damaged log"
                ) from exc
            if last_seq is not None and record.seq != last_seq + 1:
                raise ConfigurationError(
                    f"WAL {self.path!r} sequence jump: {last_seq} -> "
                    f"{record.seq}; refusing to recover from a damaged log"
                )
            last_seq = record.seq
            records.append(record)
        return WalReplay(records=tuple(records), dropped_tail=dropped)


# ----------------------------------------------------------------------
# durable snapshot checkpoints
# ----------------------------------------------------------------------
def _state_crc(points: np.ndarray, ids: np.ndarray,
               sky_ids: np.ndarray) -> int:
    """CRC32 over the canonical byte image of one durable state."""
    crc = zlib.crc32(np.ascontiguousarray(points, dtype=np.float64).tobytes())
    crc = zlib.crc32(
        np.ascontiguousarray(ids, dtype=np.int64).tobytes(), crc
    )
    crc = zlib.crc32(
        np.ascontiguousarray(sky_ids, dtype=np.int64).tobytes(), crc
    )
    return crc & 0xFFFFFFFF


@dataclass(frozen=True)
class DurableState:
    """One loaded checkpoint: the recovery baseline."""

    codec: ZGridCodec
    seq: int
    version: int
    points: np.ndarray
    ids: np.ndarray
    sky_ids: np.ndarray
    deletes_since_rebuild: int


class DatasetStore:
    """One dataset's durable home: checkpoint + WAL."""

    def __init__(self, root: str, dataset: str) -> None:
        self.dataset = dataset
        self.directory = os.path.join(root, dataset)
        os.makedirs(self.directory, exist_ok=True)
        self.wal = MutationWAL(os.path.join(self.directory, _WAL_FILE))

    @property
    def meta_path(self) -> str:
        return os.path.join(self.directory, _META_FILE)

    @property
    def state_path(self) -> str:
        return os.path.join(self.directory, _STATE_FILE)

    # -- checkpointing -------------------------------------------------
    def save_checkpoint(
        self,
        codec: ZGridCodec,
        seq: int,
        version: int,
        points: np.ndarray,
        ids: np.ndarray,
        sky_ids: np.ndarray,
        deletes_since_rebuild: int = 0,
    ) -> None:
        """Persist the current state and rotate the WAL.

        Order matters for crash consistency: state file first (tmp +
        rename), then meta (tmp + rename; the commit point), then WAL
        rotation.  A crash after any step still recovers exactly —
        replay skips WAL seqs the checkpoint already covers.
        """
        from repro.pipeline.serialization import codec_to_dict

        points = np.ascontiguousarray(points, dtype=np.float64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        sky_ids = np.ascontiguousarray(sky_ids, dtype=np.int64)
        tmp = f"{self.state_path}.tmp.npz"
        np.savez(tmp, points=points, ids=ids, sky_ids=sky_ids)
        os.replace(tmp, self.state_path)
        meta = {
            "format": _FORMAT_VERSION,
            "dataset": self.dataset,
            "seq": int(seq),
            "version": int(version),
            "crc32": _state_crc(points, ids, sky_ids),
            "deletes_since_rebuild": int(deletes_since_rebuild),
            "codec": codec_to_dict(codec),
        }
        atomic_write_bytes(
            self.meta_path, json.dumps(meta, indent=1).encode("utf-8")
        )
        self.wal.rotate()

    def load_checkpoint(self) -> Optional[DurableState]:
        """The last durable checkpoint (CRC-verified), if any."""
        from repro.pipeline.serialization import codec_from_dict

        if not os.path.exists(self.meta_path):
            return None
        with open(self.meta_path, "r") as handle:
            try:
                meta = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"durable meta {self.meta_path!r} is not valid JSON: "
                    f"{exc}"
                ) from exc
        if meta.get("format") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported durable-state format {meta.get('format')!r} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        if not os.path.exists(self.state_path):
            raise ConfigurationError(
                f"durable state file {self.state_path!r} is missing"
            )
        with np.load(self.state_path) as payload:
            points = np.asarray(payload["points"], dtype=np.float64)
            ids = np.asarray(payload["ids"], dtype=np.int64)
            sky_ids = np.asarray(payload["sky_ids"], dtype=np.int64)
        if _state_crc(points, ids, sky_ids) != meta["crc32"]:
            raise ConfigurationError(
                f"durable state {self.state_path!r} failed its CRC check; "
                "the checkpoint is corrupt"
            )
        return DurableState(
            codec=codec_from_dict(meta["codec"]),
            seq=int(meta["seq"]),
            version=int(meta["version"]),
            points=points,
            ids=ids,
            sky_ids=sky_ids,
            deletes_since_rebuild=int(meta.get("deletes_since_rebuild", 0)),
        )

    def close(self) -> None:
        self.wal.close()
