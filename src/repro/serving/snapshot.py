"""Immutable, versioned dataset snapshots.

A :class:`Snapshot` is the unit of isolation in the serving layer: one
monotonically versioned, *frozen* view of a named dataset — its alive
points and ids, the grid codec, the current skyline (as arrays and as a
prebuilt ZB-tree for index-backed access paths).  Readers that hold a
snapshot keep reading version N no matter how many versions the writer
publishes after them; nothing in a snapshot is ever mutated (all numpy
arrays are write-protected, and the skyline tree is built privately for
the snapshot rather than shared with the writer's live maintainer).

Snapshots are plain Python objects: "releasing" an old version is
dropping the last reference to it.  The registry additionally keeps a
small retention ring of recent versions for time-travel reads (see
:class:`~repro.serving.registry.DatasetRegistry`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.exceptions import DatasetError
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import ZBTree, build_zbtree


def _frozen(array: np.ndarray) -> np.ndarray:
    """A write-protected copy of ``array``."""
    out = np.array(array, copy=True)
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class Snapshot:
    """One immutable version of a served dataset.

    ``points``/``ids`` are the alive set; ``sky_points``/``sky_ids``
    the skyline of exactly that set, also available as ``sky_tree``
    (a ZB-tree private to this snapshot, safe for concurrent reads).
    """

    dataset: str
    version: int
    points: np.ndarray
    ids: np.ndarray
    codec: ZGridCodec
    sky_points: np.ndarray
    sky_ids: np.ndarray
    sky_tree: ZBTree
    #: provenance annotations (e.g. ``{"recovered": True, ...}`` on a
    #: snapshot republished from WAL replay); never affects equality
    meta: Dict[str, Any] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: lazy id -> row-index map (built on first explain-by-id lookup)
    _row_index: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def build(
        cls,
        dataset: str,
        version: int,
        codec: ZGridCodec,
        points: np.ndarray,
        ids: np.ndarray,
        sky_points: np.ndarray,
        sky_ids: np.ndarray,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "Snapshot":
        """Freeze the given state into a snapshot.

        Arrays are copied and write-protected; the skyline tree is
        rebuilt from the (copied) skyline arrays so the writer's live
        index structure is never shared with readers.
        """
        points = _frozen(np.asarray(points, dtype=np.float64))
        ids = _frozen(np.asarray(ids, dtype=np.int64))
        sky_points = _frozen(np.asarray(sky_points, dtype=np.float64))
        sky_ids = _frozen(np.asarray(sky_ids, dtype=np.int64))
        if points.ndim != 2 or ids.shape != (points.shape[0],):
            raise DatasetError("need (n, d) points and matching ids")
        if sky_points.ndim != 2 or sky_ids.shape != (sky_points.shape[0],):
            raise DatasetError("need (m, d) skyline points and matching ids")
        tree = build_zbtree(codec, sky_points, ids=sky_ids)
        return cls(
            dataset=dataset,
            version=version,
            codec=codec,
            points=points,
            ids=ids,
            sky_points=sky_points,
            sky_ids=sky_ids,
            sky_tree=tree,
            meta=dict(meta or {}),
        )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of alive points in this version."""
        return int(self.points.shape[0])

    @property
    def dimensions(self) -> int:
        return int(self.codec.dimensions)

    @property
    def skyline_size(self) -> int:
        return int(self.sky_points.shape[0])

    def row_of(self, point_id: int) -> Optional[int]:
        """Row index of ``point_id`` in this version (None if absent).

        The id map is built lazily on first use and cached on the
        snapshot; building it is safe under concurrency because the
        finished dict is published with a single attribute write.
        """
        if not self._row_index and self.ids.size:
            index = {int(pid): row for row, pid in enumerate(self.ids)}
            self._row_index.update(index)
        return self._row_index.get(int(point_id))

    def point_of(self, point_id: int) -> np.ndarray:
        """The stored point for an id; raises if not alive here."""
        row = self.row_of(point_id)
        if row is None:
            raise DatasetError(
                f"point id {point_id} is not alive in "
                f"{self.dataset!r}@v{self.version}"
            )
        return self.points[row]

    def state_digest(self) -> str:
        """Canonical content digest of this version's logical state.

        Hashes the alive set and the skyline *sorted by id* (plus the
        version number), so two snapshots holding the same points under
        the same ids digest identically regardless of the physical row
        order their trees happened to produce — fold-built (Z-merge)
        and bulk-built (``from_state``) maintainers may tie-break equal
        Z-addresses differently.  This is the bit-identity oracle the
        WAL recovery tests assert with.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(int(self.version)).encode())
        for ids, points in (
            (self.ids, self.points),
            (self.sky_ids, self.sky_points),
        ):
            order = np.argsort(ids, kind="stable")
            digest.update(
                np.ascontiguousarray(ids[order], dtype=np.int64).tobytes()
            )
            digest.update(
                np.ascontiguousarray(
                    points[order], dtype=np.float64
                ).tobytes()
            )
        return digest.hexdigest()

    def __repr__(self) -> str:
        return (
            f"Snapshot({self.dataset!r}@v{self.version}, n={self.size}, "
            f"d={self.dimensions}, skyline={self.skyline_size})"
        )
