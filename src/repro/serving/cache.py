"""Size-bounded LRU result cache keyed by ``(dataset, version, query)``.

Because the snapshot version is part of the key, publishing a new
version *is* the invalidation: queries against the new version simply
miss, and entries for superseded versions age out of the LRU tail on
their own.  Nothing ever has to be flushed, and a reader still holding
an old snapshot keeps getting (correct) hits for it.

Cached values are the query handlers' frozen payloads (write-protected
numpy arrays), so handing the same object to many readers is safe.

**CRC guard.**  Every stored payload is fingerprinted with a CRC32 over
its array contents at store time; every hit re-verifies the CRC before
the payload is returned.  A mismatch — a bit flip in cache memory, or
one injected by a :class:`~repro.serving.faults.ServingFaultPlan` — is
*detected*, the entry is evicted, and the lookup reports a non-hit, so
the service recomputes from the authoritative snapshot instead of
serving a wrong data.  Detection events are counted *separately* from
cold misses — ``serving.cache_corrupt`` (and the legacy
``serving.cache_corruption_detected`` alias) vs ``serving.cache_misses``
— so a chaos run can tell corruption from an empty cache at a glance.

Hits, misses, and evictions flow into the shared
:class:`~repro.observability.metrics.MetricsRegistry` under the
``serving`` group.
"""

from __future__ import annotations

import dataclasses
import threading
import zlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.zorder.zbtree import ZBTree

from repro.core.exceptions import ConfigurationError
from repro.observability.metrics import MetricsRegistry

from repro.serving.faults import ServingFaultPlan
from repro.serving.registry import SERVING_GROUP

#: cache key: (dataset name, snapshot version, canonical fingerprint)
CacheKey = Tuple[str, int, str]

#: payload attributes folded into the CRC, in order
_CRC_FIELDS = ("ids", "points", "scores")


def payload_crc(value: Any) -> Optional[int]:
    """CRC32 over a payload's array contents, or None if uncheckable.

    Works on anything exposing ``ids`` / ``points`` / ``scores`` numpy
    arrays (the service's ``_Payload``); values without them are stored
    unguarded rather than rejected.
    """
    crc = 0
    seen = False
    for name in _CRC_FIELDS:
        array = getattr(value, name, None)
        if array is None:
            continue
        arr = np.ascontiguousarray(array)
        crc = zlib.crc32(arr.tobytes(), crc)
        seen = True
    return (crc & 0xFFFFFFFF) if seen else None


def _corrupted_copy(value: Any) -> Optional[Any]:
    """A copy of ``value`` with one array element bit-flipped (the
    fault plan's cache-corruption injection).  None if the payload has
    nothing to flip or is not a dataclass."""
    if not dataclasses.is_dataclass(value):
        return None
    for name in ("points", "scores", "ids"):
        array = getattr(value, name, None)
        if array is None or getattr(array, "size", 0) == 0:
            continue
        mutated = np.array(array, copy=True)
        flat = mutated.reshape(-1)
        if mutated.dtype.kind == "f":
            flat[0] = flat[0] + 1.0
        else:
            flat[0] = flat[0] ^ 1
        mutated.setflags(write=False)
        return dataclasses.replace(value, **{name: mutated})
    return None


class ResultCache:
    """Thread-safe LRU over query results (entry-count bounded).

    Entries are ``(payload, crc)`` pairs; ``fault_plan`` arms seeded
    corruption injection (the CRC is computed over the *pristine*
    payload, then a corrupted copy is stored, so the guard must catch
    it at lookup — exactly the memory-corruption scenario).
    """

    def __init__(
        self,
        max_entries: int = 512,
        metrics: Optional[MetricsRegistry] = None,
        fault_plan: Optional[ServingFaultPlan] = None,
    ) -> None:
        if max_entries <= 0:
            raise ConfigurationError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics = metrics
        self.fault_plan = fault_plan
        self._entries: "OrderedDict[CacheKey, Tuple[Any, Optional[int]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corruptions_detected = 0

    @staticmethod
    def make_key(dataset: str, version: int, fingerprint: str) -> CacheKey:
        return (dataset, int(version), fingerprint)

    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey) -> Tuple[bool, Any]:
        """``(hit, value)``; a hit moves the entry to the MRU end.

        A stored CRC that no longer matches the payload is a detected
        corruption: the entry is evicted and the lookup reports no hit
        (the caller recomputes), but it is counted under the dedicated
        corrupt counter — *not* as a cold miss — so chaos runs can
        distinguish flipped bits from an empty cache.
        """
        corrupted = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                value, crc = entry
                if crc is not None and payload_crc(value) != crc:
                    del self._entries[key]
                    self._corruptions_detected += 1
                    corrupted = True
                    value, hit = None, False
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    hit = True
            else:
                self._misses += 1
                value, hit = None, False
        if self.metrics is not None:
            if corrupted:
                self.metrics.inc(SERVING_GROUP, "cache_corrupt")
                # legacy alias, kept for dashboards built on PR 6
                self.metrics.inc(SERVING_GROUP, "cache_corruption_detected")
            else:
                self.metrics.inc(
                    SERVING_GROUP, "cache_hits" if hit else "cache_misses"
                )
        return hit, value

    def store(self, key: CacheKey, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        crc = payload_crc(value)
        if (
            self.fault_plan is not None
            and crc is not None
            and self.fault_plan.cache_corrupts(*key)
        ):
            mutated = _corrupted_copy(value)
            if mutated is not None:
                # Store the corrupted bytes under the pristine CRC: the
                # next lookup must detect the mismatch.
                value = mutated
                if self.metrics is not None:
                    self.metrics.inc(
                        SERVING_GROUP, "cache_corruption_injected"
                    )
        evicted = 0
        with self._lock:
            self._entries[key] = (value, crc)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted and self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "cache_evictions", evicted)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    @property
    def corruptions_detected(self) -> int:
        with self._lock:
            return self._corruptions_detected

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "corruptions_detected": self._corruptions_detected,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: merge-cache key: (sorted (shard, version) pairs, sorted lost shards)
MergeKey = Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...]]


@dataclasses.dataclass
class MergedSkyline:
    """One coordinator-side merged skyline, pinned to a version vector.

    ``points`` / ``ids`` are the canonical id-sorted merged skyline with
    lost shards' uncertain rows already masked out (write-protected, so
    sharing the same arrays across readers is safe); ``masked`` is how
    many rows the lost-shard floor mask removed.  ``union_points`` /
    ``union_ids`` lazily cache the id-sorted alive union for the same
    vector (top-k dominance/representative scoring needs it); they are
    filled in by the first query that asks and shared afterwards.
    """

    vector: Dict[int, int]
    lost: Tuple[int, ...]
    points: np.ndarray
    ids: np.ndarray
    masked: int = 0
    union_points: Optional[np.ndarray] = None
    union_ids: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])


class MergeCache:
    """Version-vector-keyed LRU of coordinator merged skylines.

    The shard router pays one ``zmerge_all`` fold per *version vector*
    instead of one per query: an entry is keyed by the exact
    ``{shard: version}`` mapping it was merged from (plus the sorted
    lost-shard set, so certified partial answers are cached under their
    own degraded key).  Publishing on any shard changes that shard's
    version, so every later pin produces a new key and simply misses —
    publish *is* the invalidation, exactly like :class:`ResultCache` —
    while a reader pinned to the old vector keeps hitting the old entry
    and can never observe a newer merge.

    The cache also retains each shard's latest skyline tree (the
    snapshot-owned ZB-tree, never mutated — folds clone it via
    ``zmerge_all(..., consume=False)``).  When only ``k`` of ``N``
    shards changed versions since the last merge, the router folds the
    ``k`` fresh trees with the ``N - k`` retained ones instead of
    re-encoding every shard's candidates from scratch; ``incremental``
    vs ``full_merges`` in :meth:`stats` counts how often that fast path
    applied.
    """

    def __init__(
        self,
        max_entries: int = 32,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries <= 0:
            raise ConfigurationError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: "OrderedDict[MergeKey, MergedSkyline]" = OrderedDict()
        self._trees: Dict[int, Tuple[int, "ZBTree"]] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._incremental = 0
        self._full_merges = 0
        self._trees_reused = 0
        self._trees_refreshed = 0

    @staticmethod
    def key(
        vector: Mapping[int, int], lost: Sequence[int] = ()
    ) -> MergeKey:
        return (
            tuple(sorted((int(s), int(v)) for s, v in vector.items())),
            tuple(sorted(int(s) for s in lost)),
        )

    # ------------------------------------------------------------------
    def get(
        self, vector: Mapping[int, int], lost: Sequence[int] = ()
    ) -> Optional[MergedSkyline]:
        """The entry merged from exactly this vector, or None.

        Only the exact ``(vector, lost)`` key hits: a single-shard
        publish changes the vector and therefore misses, and a pinned
        read keyed to an older vector can never be served a newer merge.
        """
        key = self.key(vector, lost)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if self.metrics is not None:
            self.metrics.inc(
                SERVING_GROUP,
                "merge_cache_hits" if entry is not None else "merge_cache_misses",
            )
        return entry

    def store(self, entry: MergedSkyline) -> None:
        key = self.key(entry.vector, entry.lost)
        evicted = 0
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted and self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "merge_cache_evictions", evicted)

    # ------------------------------------------------------------------
    def shard_tree(
        self, shard: int, version: int, tree: "ZBTree"
    ) -> Tuple["ZBTree", bool]:
        """Retained skyline tree for ``(shard, version)``.

        Returns ``(tree, reused)``: the retained tree when the shard's
        version is unchanged since the last merge, else retains the
        supplied fresh tree.  Retained trees are only ever folded with
        ``consume=False``, so retention never exposes them to mutation.
        """
        with self._lock:
            held = self._trees.get(shard)
            if held is not None and held[0] == version:
                self._trees_reused += 1
                return held[1], True
            self._trees[shard] = (int(version), tree)
            self._trees_refreshed += 1
            return tree, False

    def note_merge(self, reused_shards: int, fresh_shards: int) -> None:
        """Record whether a merge reused retained trees (incremental)."""
        with self._lock:
            if reused_shards and fresh_shards:
                self._incremental += 1
            else:
                self._full_merges += 1
        if self.metrics is not None:
            name = (
                "merge_cache_incremental"
                if reused_shards and fresh_shards
                else "merge_cache_full_merges"
            )
            self.metrics.inc(SERVING_GROUP, name)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "incremental": self._incremental,
                "full_merges": self._full_merges,
                "trees_reused": self._trees_reused,
                "trees_refreshed": self._trees_refreshed,
            }

    def __repr__(self) -> str:
        return (
            f"MergeCache(entries={len(self)}/{self.max_entries}, "
            f"stats={self.stats()})"
        )
