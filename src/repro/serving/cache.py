"""Size-bounded LRU result cache keyed by ``(dataset, version, query)``.

Because the snapshot version is part of the key, publishing a new
version *is* the invalidation: queries against the new version simply
miss, and entries for superseded versions age out of the LRU tail on
their own.  Nothing ever has to be flushed, and a reader still holding
an old snapshot keeps getting (correct) hits for it.

Cached values are the query handlers' frozen payloads (write-protected
numpy arrays), so handing the same object to many readers is safe.
Hits, misses, and evictions flow into the shared
:class:`~repro.observability.metrics.MetricsRegistry` under the
``serving`` group.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro.core.exceptions import ConfigurationError
from repro.observability.metrics import MetricsRegistry

from repro.serving.registry import SERVING_GROUP

#: cache key: (dataset name, snapshot version, canonical fingerprint)
CacheKey = Tuple[str, int, str]


class ResultCache:
    """Thread-safe LRU over query results (entry-count bounded)."""

    def __init__(
        self,
        max_entries: int = 512,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_entries <= 0:
            raise ConfigurationError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def make_key(dataset: str, version: int, fingerprint: str) -> CacheKey:
        return (dataset, int(version), fingerprint)

    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey) -> Tuple[bool, Any]:
        """``(hit, value)``; a hit moves the entry to the MRU end."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                value = self._entries[key]
                hit = True
            else:
                self._misses += 1
                value, hit = None, False
        if self.metrics is not None:
            self.metrics.inc(
                SERVING_GROUP, "cache_hits" if hit else "cache_misses"
            )
        return hit, value

    def store(self, key: CacheKey, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted and self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "cache_evictions", evicted)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hits(self) -> int:
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        with self._lock:
            return self._evictions

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
