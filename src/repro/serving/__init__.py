"""repro.serving — concurrent skyline query serving.

The serving layer turns the offline skyline machinery into a
long-lived service: named datasets live in a
:class:`~repro.serving.registry.DatasetRegistry` as immutable,
monotonically versioned :class:`~repro.serving.snapshot.Snapshot`\\ s;
a :class:`~repro.serving.service.SkylineService` executes typed
queries on bounded worker pools behind admission control, with a
version-keyed LRU result cache; and
:class:`~repro.serving.client.SkylineClient` /
:func:`~repro.serving.client.replay_workload` provide the caller-side
facade and the seeded benchmark workload.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    Ticket,
)
from repro.serving.cache import ResultCache
from repro.serving.client import (
    ReplayReport,
    SkylineClient,
    WorkloadSpec,
    replay_workload,
)
from repro.serving.registry import (
    DatasetRegistry,
    DriftPolicy,
    PublishResult,
    RebuildConfig,
)
from repro.serving.service import (
    Mutation,
    MutationResult,
    Query,
    QueryResult,
    ServiceConfig,
    SkylineService,
)
from repro.serving.snapshot import Snapshot

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DatasetRegistry",
    "DriftPolicy",
    "Mutation",
    "MutationResult",
    "PublishResult",
    "Query",
    "QueryResult",
    "RebuildConfig",
    "ReplayReport",
    "ResultCache",
    "ServiceConfig",
    "SkylineClient",
    "SkylineService",
    "Snapshot",
    "Ticket",
    "WorkloadSpec",
    "replay_workload",
]
