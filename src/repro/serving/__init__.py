"""repro.serving — concurrent skyline query serving.

The serving layer turns the offline skyline machinery into a
long-lived service: named datasets live in a
:class:`~repro.serving.registry.DatasetRegistry` as immutable,
monotonically versioned :class:`~repro.serving.snapshot.Snapshot`\\ s;
a :class:`~repro.serving.service.SkylineService` executes typed
queries on bounded worker pools behind admission control, with a
CRC-guarded, version-keyed LRU result cache; and
:class:`~repro.serving.client.SkylineClient` /
:func:`~repro.serving.client.replay_workload` provide the caller-side
facade and the seeded benchmark workload.

The tier is crash-safe and chaos-testable: mutations are WAL-logged
before they are applied (:mod:`repro.serving.wal`), a crashed writer
recovers bit-identically via :meth:`DatasetRegistry.recover`, seeded
fault schedules (:class:`~repro.serving.faults.ServingFaultPlan`)
inject worker/writer crashes, cache corruption, and queue delays
deterministically, and :mod:`repro.serving.resilience` provides the
client-side retry policy, retry budget, and per-dataset circuit
breaker.

On top of the single service sits the sharded tier: a
:class:`~repro.serving.shard.ShardMap` assigns Z-address ranges to
shards, :class:`~repro.serving.router.ShardedSkylineService`
scatter-gathers queries across per-shard services (coordinator-side
Z-merge, hedged sub-queries, WAL-backed failover, certified partial
answers when shards are lost), and a
:class:`~repro.serving.health.HealthMonitor` heartbeats shards into
per-shard circuit breakers.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    Ticket,
)
from repro.serving.cache import MergeCache, MergedSkyline, ResultCache
from repro.serving.client import (
    ReplayReport,
    SkylineClient,
    WorkloadSpec,
    replay_workload,
    shed_ratios_from_admission,
)
from repro.serving.faults import ServingFaultPlan
from repro.serving.health import HealthMonitor
from repro.serving.registry import (
    DatasetRegistry,
    DriftPolicy,
    PublishResult,
    RebuildConfig,
    RebuildPool,
)
from repro.serving.resilience import (
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
)
from repro.serving.router import RouterConfig, ShardedSkylineService
from repro.serving.service import (
    Mutation,
    MutationResult,
    Query,
    QueryResult,
    ServiceConfig,
    SkylineService,
)
from repro.serving.shard import (
    ShardMap,
    floor_dominated_mask,
    floor_k_dominated_mask,
)
from repro.serving.snapshot import Snapshot
from repro.serving.wal import DatasetStore, MutationWAL, WalRecord

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CircuitBreaker",
    "DatasetRegistry",
    "DatasetStore",
    "DriftPolicy",
    "HealthMonitor",
    "MergeCache",
    "MergedSkyline",
    "Mutation",
    "MutationResult",
    "MutationWAL",
    "PublishResult",
    "Query",
    "QueryResult",
    "RebuildConfig",
    "RebuildPool",
    "ReplayReport",
    "ResultCache",
    "RetryBudget",
    "RetryPolicy",
    "RouterConfig",
    "ServiceConfig",
    "ServingFaultPlan",
    "ShardMap",
    "ShardedSkylineService",
    "SkylineClient",
    "SkylineService",
    "Snapshot",
    "Ticket",
    "WalRecord",
    "WorkloadSpec",
    "floor_dominated_mask",
    "floor_k_dominated_mask",
    "replay_workload",
    "shed_ratios_from_admission",
]
