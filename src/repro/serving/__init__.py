"""repro.serving — concurrent skyline query serving.

The serving layer turns the offline skyline machinery into a
long-lived service: named datasets live in a
:class:`~repro.serving.registry.DatasetRegistry` as immutable,
monotonically versioned :class:`~repro.serving.snapshot.Snapshot`\\ s;
a :class:`~repro.serving.service.SkylineService` executes typed
queries on bounded worker pools behind admission control, with a
CRC-guarded, version-keyed LRU result cache; and
:class:`~repro.serving.client.SkylineClient` /
:func:`~repro.serving.client.replay_workload` provide the caller-side
facade and the seeded benchmark workload.

The tier is crash-safe and chaos-testable: mutations are WAL-logged
before they are applied (:mod:`repro.serving.wal`), a crashed writer
recovers bit-identically via :meth:`DatasetRegistry.recover`, seeded
fault schedules (:class:`~repro.serving.faults.ServingFaultPlan`)
inject worker/writer crashes, cache corruption, and queue delays
deterministically, and :mod:`repro.serving.resilience` provides the
client-side retry policy, retry budget, and per-dataset circuit
breaker.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    Ticket,
)
from repro.serving.cache import ResultCache
from repro.serving.client import (
    ReplayReport,
    SkylineClient,
    WorkloadSpec,
    replay_workload,
)
from repro.serving.faults import ServingFaultPlan
from repro.serving.registry import (
    DatasetRegistry,
    DriftPolicy,
    PublishResult,
    RebuildConfig,
)
from repro.serving.resilience import (
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
)
from repro.serving.service import (
    Mutation,
    MutationResult,
    Query,
    QueryResult,
    ServiceConfig,
    SkylineService,
)
from repro.serving.snapshot import Snapshot
from repro.serving.wal import DatasetStore, MutationWAL, WalRecord

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CircuitBreaker",
    "DatasetRegistry",
    "DatasetStore",
    "DriftPolicy",
    "Mutation",
    "MutationResult",
    "MutationWAL",
    "PublishResult",
    "Query",
    "QueryResult",
    "RebuildConfig",
    "ReplayReport",
    "ResultCache",
    "RetryBudget",
    "RetryPolicy",
    "ServiceConfig",
    "ServingFaultPlan",
    "SkylineClient",
    "SkylineService",
    "Snapshot",
    "Ticket",
    "WalRecord",
    "WorkloadSpec",
    "replay_workload",
]
