"""Retry policy, retry budget, and circuit breaker for the serving tier.

The client-side half of the fault story: typed errors
(:mod:`repro.core.exceptions`) tell a caller *whether* retrying can
help (:func:`~repro.core.exceptions.is_retryable`) and *when*
(``retry_after_seconds`` hints); this module turns that into mechanism:

* :class:`RetryPolicy` — exponential backoff with **deterministic
  keyed jitter** (the same BLAKE2 keyed-draw idiom as the fault plans,
  so a seeded replay schedules byte-identical retry delays run-to-run;
  no wall-clock entropy);
* :class:`RetryBudget` — a token bucket that caps the *fleet-wide*
  retry amplification: each retry spends a token, each success earns a
  fraction back, and an empty bucket turns retryable errors terminal
  (retry storms are how overloaded services die);
* :class:`CircuitBreaker` — per-dataset failure tracking with the
  classic closed → open → half-open state machine; while open, calls
  fail immediately with
  :class:`~repro.core.exceptions.CircuitOpenError` carrying the
  remaining cooldown as its retry-after hint.

Everything takes an injectable ``clock`` / ``sleep`` so unit tests run
on a fake clock with zero real waiting.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    is_retryable,
    retry_after_hint,
)
from repro.mapreduce.faults import keyed_draw

__all__ = ["RetryPolicy", "RetryBudget", "CircuitBreaker"]


class RetryBudget:
    """Token bucket bounding total retry amplification.

    Starts full at ``capacity``.  Each retry attempt must
    :meth:`spend` one token; each *successful* call
    :meth:`deposit`\\ s ``refill_per_success`` (capped at capacity).
    When the bucket is empty, retryable errors are treated as terminal
    — under sustained failure the client degrades to roughly
    ``refill_per_success`` retries per success instead of multiplying
    load.
    """

    def __init__(
        self, capacity: float = 10.0, refill_per_success: float = 0.5
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if refill_per_success < 0:
            raise ConfigurationError("refill_per_success must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(capacity)
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def spend(self) -> bool:
        """Take one token; False (no retry allowed) when empty."""
        with self._lock:
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True

    def deposit(self) -> None:
        """A call succeeded; earn back a fraction of a token."""
        with self._lock:
            self._tokens = min(
                self.capacity, self._tokens + self.refill_per_success
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff over typed retryable errors.

    ``delay(attempt, key)`` is a pure function of ``(seed, key,
    attempt)``: base exponential growth, capped at ``max_delay``, with
    *deterministic* jitter — a keyed draw scales the delay into
    ``[base * (1 - jitter), base]``.  Two runs with the same seed and
    keys back off identically; two concurrent callers with different
    keys decorrelate, which is all jitter is for.

    A typed error's ``retry_after_seconds`` hint, when present,
    overrides the computed delay (the server knows its own drain time
    better than the client's exponential guess).
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    #: jitter fraction in [0, 1]: 0 = none, 0.5 = up to 50% shaved
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError("jitter must be in [0, 1]")

    def delay(self, attempt: int, key: Tuple[object, ...] = ()) -> float:
        """Backoff before retry ``attempt`` (1-based: after the
        ``attempt``-th failure)."""
        base = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter <= 0.0:
            return base
        draw = keyed_draw(self.seed, "retry", *key, attempt)
        return base * (1.0 - self.jitter * draw)

    def call(
        self,
        fn: Callable[[], object],
        key: Tuple[object, ...] = (),
        budget: Optional[RetryBudget] = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ):
        """Run ``fn`` with retries; returns its result or raises the
        last error.

        Only typed-retryable errors (:func:`is_retryable`) are retried;
        terminal errors propagate immediately.  ``on_retry(attempt,
        error, delay)`` fires before each backoff — the workload
        replayer uses it to account retries without wall-clock sleeps
        (pass ``sleep=lambda s: None`` to make backoff purely logical).
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                result = fn()
            except BaseException as exc:  # noqa: BLE001 — reclassified below
                if attempt >= self.max_attempts or not is_retryable(exc):
                    raise
                if budget is not None and not budget.spend():
                    raise
                hint = retry_after_hint(exc)
                pause = self.delay(attempt, key)
                if hint is not None:
                    pause = max(pause, hint)
                if on_retry is not None:
                    on_retry(attempt, exc, pause)
                if pause > 0:
                    sleep(pause)
                continue
            if budget is not None:
                budget.deposit()
            return result


class CircuitBreaker:
    """Closed → open → half-open failure containment for one dataset.

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip the breaker;
    * **open** — :meth:`allow` raises
      :class:`~repro.core.exceptions.CircuitOpenError` (with the
      remaining cooldown as retry-after) until ``cooldown_seconds``
      elapse;
    * **half-open** — one probe request is let through; success closes
      the breaker, failure re-opens it for another cooldown.

    Deliberately consecutive-failure based (not windowed rates): the
    transitions are exactly reproducible under a fake clock, which the
    chaos tests rely on.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        dataset: str,
        failure_threshold: int = 5,
        cooldown_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be >= 0")
        self.dataset = dataset
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, new_state: str) -> None:
        old = self._state
        if old == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(self.dataset, old, new_state)

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._transition(self.HALF_OPEN)
            self._probe_in_flight = False

    # ------------------------------------------------------------------
    def allow(self) -> None:
        """Gate one request; raises ``CircuitOpenError`` when open (or
        when half-open and the probe slot is taken)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return
            if self._state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True  # this caller is the probe
                return
            remaining = self.cooldown_seconds
            if self._opened_at is not None:
                remaining = max(
                    0.0,
                    self.cooldown_seconds
                    - (self._clock() - self._opened_at),
                )
            raise CircuitOpenError(
                f"circuit for dataset {self.dataset!r} is "
                f"{self._state} after {self._consecutive_failures} "
                f"consecutive failures; retry in {remaining:.3f}s",
                dataset=self.dataset,
                failures=self._consecutive_failures,
                retry_after_seconds=remaining,
            )

    def abort_probe(self) -> None:
        """The request :meth:`allow` let through never actually ran
        (shed at admission, deadline expired, cancelled): free the
        half-open probe slot without counting an outcome."""
        with self._lock:
            self._probe_in_flight = False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)
                self._opened_at = None

    def trip(self) -> None:
        """Force the breaker open immediately (a *known* hard failure —
        e.g. the router just watched a shard die — rather than one
        inferred from consecutive errors).  The cooldown starts now."""
        with self._lock:
            self._consecutive_failures = max(
                self._consecutive_failures + 1, self.failure_threshold
            )
            self._probe_in_flight = False
            self._transition(self.OPEN)
            self._opened_at = self._clock()

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_in_flight = False
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(self.OPEN)
                self._opened_at = self._clock()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.dataset!r}, state={self.state}, "
            f"failures={self._consecutive_failures})"
        )
