"""Fault-tolerant sharded serving: scatter-gather over Z-range shards.

:class:`ShardedSkylineService` puts a coordinator in front of ``N``
independent :class:`~repro.serving.service.SkylineService` shards, each
owning one contiguous Z-address range of the dataset
(:class:`~repro.serving.shard.ShardMap` — the paper's equidepth
partitioning reused as a shard map).  Queries scatter to the shards
that can contribute and the coordinator gathers:

* **full** — each shard answers its local skyline; the coordinator
  folds the (dominance-free) candidate sets with the paper's Z-merge
  (:func:`~repro.zorder.zmerge.zmerge_all`), yielding exactly the
  global skyline;
* **subspace** — per-shard subspace candidates, recomputed on the
  union (membership survives against fewer competitors, so the union
  of local answers always contains the global one);
* **kdominant** — k-dominance is **not transitive**, so it does not
  decompose: the coordinator gathers all alive rows and computes on
  the union;
* **topk** — ranked over the Z-merged global skyline (dominance /
  representative methods additionally gather the alive union their
  scores count over);
* **explain** — why-not against the alive union.

Robustness features, all seeded and replayable via
:class:`~repro.serving.faults.ServingFaultPlan`:

* **health checks** — a :class:`~repro.serving.health.HealthMonitor`
  heartbeats every shard into a per-shard
  :class:`~repro.serving.resilience.CircuitBreaker`; an open breaker
  drops the shard from the scatter set (certified partial answer)
  instead of stalling the query.  A false positive (lost heartbeat,
  shard actually fine) self-heals: the next probe let through closes
  the breaker.
* **hedged sub-queries** — a sub-query that has not answered within
  ``hedge_after_seconds`` gets a duplicate submission; first answer
  wins.  Straggler injection (``shard_slow``) makes this testable.
* **failover** — a crashed shard's replacement is cold-started from
  its durable home (checkpoint + WAL,
  :meth:`~repro.serving.registry.DatasetRegistry.adopt`) once its
  breaker's cooldown admits a probe; the republished snapshot is
  digest-checked against the pre-crash state
  (:meth:`~repro.serving.snapshot.Snapshot.state_digest`).
* **certified partial answers** — while shards are down, answers are
  computed over the live union and *masked* with the lost shards'
  Z-region floors (:func:`~repro.serving.shard.floor_dominated_mask`):
  what remains is a certified subset of the true answer, and the
  certificate carries the lost shards, their floor bounds, and the
  version vector so a client (or the benchmark's offline recompute)
  can verify the claim.
* **version-vector reads** — the coordinator pins ``{shard: version}``
  and the matching snapshot objects atomically (mutations publish the
  vector under the same lock), so a gathered answer never mixes shard
  states that were not simultaneously current; a sub-answer that
  raced a write is recomputed against its pinned snapshot
  (:func:`~repro.serving.service.execute_on_snapshot`).

Mutations route by the shard map (deletes via the coordinator's
id-owner table), are pre-checked against shard health so a batch is
not half-applied onto a known-dead shard, and resume idempotently if a
retry re-sends a partially applied batch.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DatasetError,
    ShardDownError,
)
from repro.extensions.explain import WhyNotExplanation, why_not
from repro.extensions.kdominant import k_dominant_skyline
from repro.extensions.ranking import rank_skyline, top_k_skyline
from repro.extensions.subspace import subspace_skyline
from repro.observability.metrics import MetricsRegistry
from repro.serving.cache import MergeCache, MergedSkyline, ResultCache
from repro.serving.faults import ServingFaultPlan
from repro.serving.health import HealthMonitor
from repro.serving.registry import (
    SERVING_GROUP,
    DatasetRegistry,
    DriftPolicy,
    PublishResult,
    RebuildConfig,
    RebuildPool,
)
from repro.serving.resilience import CircuitBreaker
from repro.serving.service import (
    Mutation,
    MutationResult,
    Query,
    QueryResult,
    ServiceConfig,
    SkylineService,
    _by_id,
    _Payload,
    execute_on_snapshot,
)
from repro.serving.shard import (
    ShardMap,
    floor_dominated_mask,
    floor_k_dominated_mask,
)
from repro.serving.snapshot import Snapshot
from repro.zorder.encoding import ZGridCodec, quantize_dataset
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zmerge import zmerge_all

__all__ = ["RouterConfig", "ShardedSkylineService"]


@dataclass(frozen=True)
class RouterConfig:
    """Coordinator-level knobs."""

    num_shards: int = 4
    #: duplicate a sub-query not answered within this many seconds;
    #: 0 disables hedging
    hedge_after_seconds: float = 0.05
    #: failover (WAL re-adoption) attempts per shard before it is
    #: declared terminally lost
    failover_attempts: int = 2
    #: per-shard breaker: consecutive failures to open, cooldown before
    #: the half-open probe that gates failover / re-admission
    breaker_failure_threshold: int = 2
    breaker_cooldown_seconds: float = 0.05
    #: run one heartbeat round every this many operations (0 = only
    #: explicit ``health.tick()`` / the background thread)
    heartbeat_every_ops: int = 0
    #: snapshot retention ring per shard registry
    keep_versions: int = 8
    checkpoint_every: int = 8
    #: merged-skyline cache entries, keyed by the version vector
    #: (+ lost-shard set); 0 disables the coordinator merge cache and
    #: every full/topk query re-merges (the pre-cache behaviour)
    merge_cache_entries: int = 32
    #: coordinator-level finished-answer cache (subspace/kdominant/topk
    #: payloads keyed by vector + lost set + query fingerprint);
    #: 0 disables it
    result_cache_entries: int = 256
    #: per-shard service knobs (admission, cache, intra-shard faults);
    #: one config shared by every shard service
    service_config: Optional[ServiceConfig] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be >= 1")
        if self.hedge_after_seconds < 0:
            raise ConfigurationError("hedge_after_seconds must be >= 0")
        if self.failover_attempts < 0:
            raise ConfigurationError("failover_attempts must be >= 0")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError(
                "breaker_failure_threshold must be >= 1"
            )
        if self.breaker_cooldown_seconds < 0:
            raise ConfigurationError(
                "breaker_cooldown_seconds must be >= 0"
            )
        if self.heartbeat_every_ops < 0:
            raise ConfigurationError("heartbeat_every_ops must be >= 0")
        if self.merge_cache_entries < 0:
            raise ConfigurationError("merge_cache_entries must be >= 0")
        if self.result_cache_entries < 0:
            raise ConfigurationError("result_cache_entries must be >= 0")


@dataclass(frozen=True)
class _CachedAnswer:
    """A finished coordinator answer plus the masked-row count its
    certificate needs.  ``ids``/``points``/``scores`` delegate to the
    payload so :func:`~repro.serving.cache.payload_crc` guards the
    cached arrays like any other cache entry."""

    payload: _Payload
    masked: int = 0

    @property
    def ids(self) -> Optional[np.ndarray]:
        return self.payload.ids

    @property
    def points(self) -> Optional[np.ndarray]:
        return self.payload.points

    @property
    def scores(self) -> Optional[np.ndarray]:
        return self.payload.scores


class _Shard:
    """Coordinator-side state of one shard slot."""

    __slots__ = (
        "sid", "durability_dir", "registry", "service", "breaker",
        "down", "terminal", "incarnation", "failovers",
        "pre_crash_digest", "last_failover_identical",
    )

    def __init__(
        self,
        sid: int,
        durability_dir: Optional[str],
        registry: DatasetRegistry,
        service: SkylineService,
        breaker: CircuitBreaker,
    ) -> None:
        self.sid = sid
        self.durability_dir = durability_dir
        self.registry: Optional[DatasetRegistry] = registry
        self.service: Optional[SkylineService] = service
        self.breaker = breaker
        self.down = False
        #: lost for good: no durable home, terminal fault schedule, or
        #: failover budget exhausted
        self.terminal = False
        self.incarnation = 0
        self.failovers = 0
        self.pre_crash_digest: Optional[str] = None
        self.last_failover_identical: Optional[bool] = None


@dataclass
class LogicalSnapshot:
    """The router's registry-view of the whole logical dataset.

    Enough surface for :class:`~repro.serving.client.SkylineClient` and
    :func:`~repro.serving.client.replay_workload`: dimensions, codec,
    the union id set (including ids owned by currently-down shards —
    they are still logically alive), sizes, and the summed logical
    version.  ``skyline_size`` Z-merges the live shard skylines lazily
    (it is only read at workload start/end, not per operation).
    """

    dataset: str
    version: int
    codec: ZGridCodec
    ids: np.ndarray
    size: int
    _skyline_size: Optional[int] = field(default=None, repr=False)
    _router: Optional["ShardedSkylineService"] = field(
        default=None, repr=False
    )

    @property
    def dimensions(self) -> int:
        return int(self.codec.dimensions)

    @property
    def skyline_size(self) -> int:
        if self._skyline_size is None:
            assert self._router is not None
            self._skyline_size = self._router._merged_skyline_size()
        return self._skyline_size


class _RouterRegistryView:
    """Duck-typed stand-in for ``service.registry`` used by clients."""

    def __init__(self, router: "ShardedSkylineService") -> None:
        self._router = router

    def snapshot(self, name: str) -> LogicalSnapshot:
        return self._router._logical_snapshot(name)

    def version(self, name: str) -> int:
        self._router._check_dataset(name)
        return self._router.logical_version()


class ShardedSkylineService:
    """Scatter-gather skyline serving over Z-range shards.

    Construct with grid-resident points (like
    :meth:`DatasetRegistry.register <repro.serving.registry.DatasetRegistry.register>`)
    or via :meth:`from_dataset` for raw float data.  With
    ``durability_dir`` set, each shard gets its own WAL + checkpoint
    home under ``<durability_dir>/shard-<sid>/`` and crashed shards
    fail over; without it a crashed shard is terminally lost (answers
    stay certified-partial).
    """

    def __init__(
        self,
        name: str,
        points: np.ndarray,
        ids: Optional[np.ndarray] = None,
        codec: Optional[ZGridCodec] = None,
        config: Optional[RouterConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        durability_dir: Optional[str] = None,
        fault_plan: Optional[ServingFaultPlan] = None,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
        rebuild_pool: Optional[RebuildPool] = None,
        tracer: Any = None,
    ) -> None:
        self.name = name
        self.config = config or RouterConfig()
        self.metrics = metrics
        self.tracer = tracer
        self.fault_plan = fault_plan
        self.durability_dir = durability_dir
        self._drift = drift
        self._rebuild = rebuild
        #: shared across all shard registries — writer threads ship
        #: drift recomputes here and keep accepting mutations; lifecycle
        #: belongs to the caller (the router never closes it)
        self.rebuild_pool = rebuild_pool
        self._service_config = self.config.service_config or ServiceConfig()
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise DatasetError("need a non-empty (n, d) point matrix")
        if ids is None:
            ids = np.arange(points.shape[0], dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
        if codec is None:
            top = int(points.max()) if points.size else 1
            codec = ZGridCodec.grid_identity(
                points.shape[1], bits_per_dim=max(1, top.bit_length())
            )
        self.codec = codec
        self.map = ShardMap.fit(codec, points, self.config.num_shards)
        self._closed = False
        #: reentrant: mutations hold it across apply+publish; failover
        #: (which can trigger inside a mutation's health pre-check)
        #: takes it again to publish the recovered vector entry
        self._write_lock = threading.RLock()
        self._ops = 0
        self._ops_lock = threading.Lock()
        self._vector: Dict[int, int] = {}
        self._owner: Dict[int, int] = {}
        self._shards: Dict[int, _Shard] = {}
        for sid, (shard_pts, shard_ids) in sorted(
            self.map.split(points, ids).items()
        ):
            shard_dir = (
                os.path.join(durability_dir, f"shard-{sid}")
                if durability_dir is not None
                else None
            )
            registry = DatasetRegistry(
                metrics=metrics,
                keep_versions=self.config.keep_versions,
                durability_dir=shard_dir,
                checkpoint_every=self.config.checkpoint_every,
                rebuild_pool=rebuild_pool,
            )
            publish = registry.register(
                name, shard_pts, ids=shard_ids, codec=codec,
                drift=drift, rebuild=rebuild,
            )
            service = SkylineService(
                registry, config=self._service_config, metrics=metrics,
                tracer=tracer,
            )
            breaker = CircuitBreaker(
                f"{name}/shard-{sid}",
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_seconds=self.config.breaker_cooldown_seconds,
            )
            self._shards[sid] = _Shard(
                sid, shard_dir, registry, service, breaker
            )
            self._vector[sid] = publish.version
            for pid in shard_ids:
                self._owner[int(pid)] = sid
        #: coordinator fast path: merged skylines keyed by the version
        #: vector, finished answers keyed by vector + query fingerprint.
        #: Both pass ``metrics=None``-adjacent choices deliberately: the
        #: merge cache has its own counters; the result cache would
        #: otherwise pollute the per-shard ``serving.cache_*`` counters.
        self._merge_cache: Optional[MergeCache] = (
            MergeCache(self.config.merge_cache_entries, metrics=metrics)
            if self.config.merge_cache_entries > 0
            else None
        )
        self._result_cache: Optional[ResultCache] = (
            ResultCache(self.config.result_cache_entries, metrics=None)
            if self.config.result_cache_entries > 0
            else None
        )
        self.registry = _RouterRegistryView(self)
        self.health = HealthMonitor(
            name,
            probe=self._probe_shard,
            breakers={
                sid: shard.breaker for sid, shard in self._shards.items()
            },
            fault_plan=fault_plan,
            metrics=metrics,
        )

    @classmethod
    def from_dataset(
        cls,
        name: str,
        dataset: Dataset,
        bits_per_dim: int = 12,
        **kwargs: Any,
    ) -> "ShardedSkylineService":
        """Quantise raw float data and shard the grid version."""
        snapped, codec = quantize_dataset(dataset, bits_per_dim=bits_per_dim)
        return cls(
            name, snapped.points, ids=snapped.ids, codec=codec, **kwargs
        )

    # ------------------------------------------------------------------
    # lifecycle / bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.health.stop()
        for shard in self._shards.values():
            if shard.service is not None:
                shard.service.close()

    def __enter__(self) -> "ShardedSkylineService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check_dataset(self, name: str) -> None:
        if name != self.name:
            raise DatasetError(
                f"dataset {name!r} is not served here (serving "
                f"{self.name!r})"
            )

    def _count(self, counter: str, value: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, counter, value)

    def _next_op(self) -> int:
        with self._ops_lock:
            self._ops += 1
            return self._ops

    def logical_version(self) -> int:
        """Sum of the shard version vector — monotone under mutation,
        invariant under bit-identical failover."""
        with self._write_lock:
            return sum(self._vector.values())

    # ------------------------------------------------------------------
    # health / crash / failover machinery
    # ------------------------------------------------------------------
    def _probe_shard(self, sid: int) -> int:
        """Heartbeat path: liveness-check one shard, attempting
        failover of a down one (that is what a health prober is *for*;
        it also keeps down-shard probes from starving the breaker's
        half-open window)."""
        shard = self._shards[sid]
        if shard.down and not self._try_failover(shard, gated=False):
            raise ShardDownError(
                f"shard {sid} of {self.name!r} is down",
                dataset=self.name, shard=sid, terminal=shard.terminal,
            )
        assert shard.service is not None
        return shard.service.ping(self.name)

    def _inject_shard_faults(self, op: int) -> None:
        plan = self.fault_plan
        if plan is None or not plan.any_shard_faults:
            return
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            if shard.down or shard.service is None:
                continue
            if plan.shard_crashes(sid, op, shard.incarnation):
                self._crash_shard(shard)

    def _crash_shard(self, shard: _Shard) -> None:
        """Kill one shard: capture the pre-crash digest (the failover
        bit-identity oracle), drop its process state, trip its breaker
        so traffic routes around it immediately."""
        assert shard.registry is not None and shard.service is not None
        shard.pre_crash_digest = (
            shard.registry.snapshot(self.name).state_digest()
        )
        shard.service.close()
        shard.service = None
        shard.registry = None
        shard.down = True
        if shard.durability_dir is None or (
            self.fault_plan is not None
            and self.fault_plan.shard_terminal(shard.sid)
        ):
            shard.terminal = True
        shard.breaker.trip()
        self._count("shard_crashes")

    def _try_failover(self, shard: _Shard, gated: bool = True) -> bool:
        """Attempt to replace a down shard from its durable home.

        ``gated`` runs the attempt through the breaker's half-open
        window (the read path's behaviour: during cooldown, queries
        degrade to certified-partial instead of hammering recovery).
        Returns True when the shard is up afterwards.
        """
        if not shard.down:
            return True
        if shard.terminal:
            return False
        if gated:
            try:
                shard.breaker.allow()
            except CircuitOpenError:
                return False
        ok = self._adopt_replacement(shard)
        if ok:
            shard.breaker.record_success()
        else:
            shard.breaker.record_failure()
        return ok

    def _adopt_replacement(self, shard: _Shard) -> bool:
        if shard.failovers >= self.config.failover_attempts:
            shard.terminal = True
            self._count("shard_failover_exhausted")
            return False
        shard.failovers += 1
        try:
            registry = DatasetRegistry(
                metrics=self.metrics,
                keep_versions=self.config.keep_versions,
                durability_dir=shard.durability_dir,
                checkpoint_every=self.config.checkpoint_every,
                rebuild_pool=self.rebuild_pool,
            )
            publish = registry.adopt(
                self.name, drift=self._drift, rebuild=self._rebuild
            )
        except Exception:
            self._count("shard_failover_failed")
            return False
        service = SkylineService(
            registry, config=self._service_config, metrics=self.metrics,
            tracer=self.tracer,
        )
        digest = registry.snapshot(self.name).state_digest()
        identical = (
            shard.pre_crash_digest is None
            or digest == shard.pre_crash_digest
        )
        shard.last_failover_identical = identical
        shard.registry = registry
        shard.service = service
        shard.down = False
        shard.incarnation += 1
        with self._write_lock:
            self._vector[shard.sid] = publish.version
        self._count("shard_failovers")
        self._count(
            "shard_failover_identical"
            if identical
            else "shard_failover_divergent"
        )
        return True

    def _maybe_heartbeat(self, op: int) -> None:
        every = self.config.heartbeat_every_ops
        if every > 0 and op % every == 0:
            self.health.tick()

    # ------------------------------------------------------------------
    # the pinned read set
    # ------------------------------------------------------------------
    def _pin(
        self,
    ) -> Tuple[Dict[int, int], Dict[int, Snapshot], List[_Shard], List[int]]:
        """Atomically pin ``(version vector, per-shard snapshots)`` and
        split shards into alive (scatter targets) and lost (certified
        away).  Mutations publish under the same lock, so the pinned
        snapshots are mutually consistent — a gathered answer never
        mixes shard states that were not simultaneously current.

        An up shard whose breaker is open (heartbeat loss) is *lost for
        this query* — the alternative is stalling the answer on a shard
        the health layer distrusts.  The breaker's half-open probe lets
        one query through after cooldown; its success re-admits the
        shard (false positives self-heal through real traffic).
        """
        alive: List[_Shard] = []
        lost: List[int] = []
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            if shard.down and not self._try_failover(shard):
                lost.append(sid)
                continue
            try:
                shard.breaker.allow()
            except CircuitOpenError:
                self._count("shard_skipped_open")
                lost.append(sid)
                continue
            alive.append(shard)
        with self._write_lock:
            vector = dict(self._vector)
            snaps: Dict[int, Snapshot] = {}
            for shard in alive:
                assert shard.registry is not None
                snaps[shard.sid] = shard.registry.snapshot(self.name)
                vector[shard.sid] = snaps[shard.sid].version
        return vector, snaps, alive, lost

    def _sub_result(
        self,
        shard: _Shard,
        future: Future,
        query: Query,
        pinned: Snapshot,
    ) -> Tuple[_Payload, bool]:
        """Gather one shard's sub-answer: hedge stragglers, then pin —
        a sub-answer that raced a concurrent write (its version differs
        from the pinned vector entry) is recomputed directly against
        the pinned snapshot.  Returns ``(payload, cached)``."""
        hedge_after = self.config.hedge_after_seconds
        result: Optional[QueryResult] = None
        if hedge_after <= 0:
            result = future.result()
        else:
            try:
                result = future.result(timeout=hedge_after)
            except FutureTimeout:
                assert shard.service is not None
                self._count("hedged_subqueries")
                hedge = shard.service.submit(query)
                done, _ = wait_futures(
                    {future, hedge}, return_when=FIRST_COMPLETED
                )
                winner = hedge if hedge in done else future
                if winner is hedge:
                    self._count("hedge_wins")
                try:
                    result = winner.result()
                except Exception:
                    loser = future if winner is hedge else hedge
                    result = loser.result()
        assert result is not None
        if result.version != pinned.version:
            self._count("version_pinned_recomputes")
            payload = execute_on_snapshot(query, pinned)
            return payload, False
        return (
            _Payload(
                points=result.points,
                ids=result.ids,
                scores=result.scores,
                explanation=result.explanation,
            ),
            result.cached,
        )

    def _scatter(
        self,
        query: Query,
        alive: List[_Shard],
        snaps: Dict[int, Snapshot],
        op: int,
    ) -> Tuple[List[Tuple[int, _Payload]], List[int], bool]:
        """Fan ``query`` out to the alive shards and gather.

        A shard that fails mid-query joins the lost set (this query
        degrades to certified-partial for its region) and feeds its
        breaker.  Returns ``(per-shard payloads, newly lost sids,
        all-cached flag)``.
        """
        plan = self.fault_plan
        futures: List[Tuple[_Shard, Optional[Future]]] = []
        for shard in alive:
            slow = (
                plan.shard_slow(shard.sid, op)
                if plan is not None
                else 0.0
            )
            assert shard.service is not None
            try:
                future = shard.service.submit(query)
            except Exception:
                futures.append((shard, None))
                continue
            if slow > 0:
                self._count("shard_slow_injected")
                future = _delayed_future(future, slow)
            futures.append((shard, future))
        payloads: List[Tuple[int, _Payload]] = []
        newly_lost: List[int] = []
        all_cached = bool(futures)
        for shard, future in futures:
            if future is None:
                shard.breaker.record_failure()
                newly_lost.append(shard.sid)
                all_cached = False
                continue
            try:
                payload, cached = self._sub_result(
                    shard, future, query, snaps[shard.sid]
                )
            except Exception:
                shard.breaker.record_failure()
                newly_lost.append(shard.sid)
                all_cached = False
                continue
            shard.breaker.record_success()
            payloads.append((shard.sid, payload))
            all_cached = all_cached and cached
        return payloads, newly_lost, all_cached

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def _zmerge_candidates(
        self, candidates: List[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold per-shard dominance-free candidate sets into the global
        skyline with Z-merge, in canonical id order.

        Fresh trees are built from the gathered arrays — ``zmerge``
        consumes its skyline argument, so shard snapshot trees must
        never be fed to it directly.
        """
        nonempty = [(p, i) for p, i in candidates if i.shape[0]]
        if not nonempty:
            d = self.codec.dimensions
            return (
                np.empty((0, d), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        trees = [
            build_zbtree(self.codec, np.asarray(p, dtype=np.float64), ids=i)
            for p, i in nonempty
        ]
        merged = zmerge_all(trees, OpCounter())
        _zs, pts, ids = merged.collect()
        return _by_id(pts, ids)

    def _alive_union(
        self, snaps: Dict[int, Snapshot]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All alive rows across the pinned shard snapshots, id-sorted
        (canonical, so order-sensitive downstream code is shard-count
        invariant)."""
        if not snaps:
            d = self.codec.dimensions
            return (
                np.empty((0, d), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        pts = np.vstack([snaps[sid].points for sid in sorted(snaps)])
        ids = np.concatenate([snaps[sid].ids for sid in sorted(snaps)])
        return _by_id(pts, ids)

    def _merged_entry(
        self,
        vector: Dict[int, int],
        snaps: Dict[int, Snapshot],
        lost: List[int],
    ) -> MergedSkyline:
        """The merged, masked, id-sorted skyline for exactly this
        version vector (restricted to the shards in ``snaps``).

        Cache hit: one dict probe, no shard work at all.  Miss: fold
        the per-shard skyline trees — the retained tree for every shard
        whose version is unchanged since the last merge, the fresh
        snapshot tree for each shard that published — with
        ``zmerge_all(..., consume=False)``.  Snapshot trees are shared
        with shard readers, so the non-consuming fold (which clones via
        the stored Z-addresses, never re-encoding) is mandatory, and it
        is also what makes re-merges *incremental*: unchanged shards
        cost a cheap clone instead of a full candidate re-encode."""
        sub_vector = {sid: int(vector[sid]) for sid in snaps}
        cache = self._merge_cache
        if cache is not None:
            entry = cache.get(sub_vector, lost)
            if entry is not None:
                return entry
        trees = []
        reused = 0
        fresh = 0
        for sid in sorted(snaps):
            snap = snaps[sid]
            if cache is not None:
                tree, was_reused = cache.shard_tree(
                    sid, sub_vector[sid], snap.sky_tree
                )
            else:
                tree, was_reused = snap.sky_tree, False
            if tree.root is None:
                continue
            trees.append(tree)
            if was_reused:
                reused += 1
            else:
                fresh += 1
        if trees:
            merged = zmerge_all(trees, OpCounter(), consume=False)
            _zs, pts, ids = merged.collect()
            pts, ids = _by_id(pts, ids)
        else:
            d = self.codec.dimensions
            pts = np.empty((0, d), dtype=np.float64)
            ids = np.empty(0, dtype=np.int64)
        pts, ids, masked = self._mask_lost(pts, ids, list(lost))
        entry = MergedSkyline(
            vector=sub_vector,
            lost=tuple(sorted(int(s) for s in lost)),
            points=pts,
            ids=ids,
            masked=masked,
        )
        if cache is not None:
            cache.store(entry)
            cache.note_merge(reused, fresh)
        return entry

    def _merged_union(
        self, entry: MergedSkyline, snaps: Dict[int, Snapshot]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Alive union for the entry's vector, computed once and shared
        by every later query on the same vector (a benign write race
        recomputes identical arrays)."""
        if entry.union_ids is None or entry.union_points is None:
            entry.union_points, entry.union_ids = self._alive_union(snaps)
        return entry.union_points, entry.union_ids

    def _result_key(
        self,
        vector: Dict[int, int],
        lost: List[int],
        request: Query,
    ) -> Tuple[str, int, str]:
        """Coordinator answer-cache key.  The full vector (not just its
        sum) plus the lost set is part of the fingerprint: vectors with
        equal sums but different shard states must never collide."""
        vec = ",".join(f"{sid}:{v}" for sid, v in sorted(vector.items()))
        lost_part = ",".join(str(sid) for sid in sorted(lost))
        return ResultCache.make_key(
            self.name,
            sum(vector.values()),
            f"{vec}|{lost_part}|{request.fingerprint()}",
        )

    def _store_result(
        self,
        vector: Dict[int, int],
        lost: List[int],
        request: Query,
        payload: _Payload,
        masked: int,
    ) -> None:
        if self._result_cache is None:
            return
        self._result_cache.store(
            self._result_key(vector, lost, request),
            _CachedAnswer(payload=payload, masked=int(masked)),
        )

    def _merged_skyline_size(self) -> int:
        vector, snaps, alive, _lost = self._pin()
        sub_vector = {shard.sid: vector[shard.sid] for shard in alive}
        return self._merged_entry(sub_vector, snaps, []).size

    # ------------------------------------------------------------------
    # public query path
    # ------------------------------------------------------------------
    def query(
        self, request: Query, timeout: Optional[float] = None
    ) -> QueryResult:
        if self._closed:
            raise ConfigurationError("router is closed")
        request.validate()
        self._check_dataset(request.dataset)
        op = self._next_op()
        self._inject_shard_faults(op)
        self._maybe_heartbeat(op)
        started = monotonic()
        vector, snaps, alive, lost = self._pin()
        payloads: List[Tuple[int, _Payload]]
        masked = 0
        cached = False
        queue_wait = 0.0
        if request.kind in ("full", "subspace", "topk"):
            # Coordinator fast path: the pinned vector (+ lost set) is
            # the cache identity.  A hit skips the scatter entirely —
            # the cached merge was computed from the exact same shard
            # states, so the answer is bit-identical by construction.
            pin_vector = {shard.sid: vector[shard.sid] for shard in alive}
            payload = None
            if request.kind == "full":
                if self._merge_cache is not None:
                    entry = self._merge_cache.get(pin_vector, lost)
                    if entry is not None:
                        payload = _Payload(
                            points=entry.points, ids=entry.ids
                        )
                        masked = entry.masked
                        cached = True
            elif self._result_cache is not None:
                hit, value = self._result_cache.lookup(
                    self._result_key(pin_vector, lost, request)
                )
                if hit:
                    payload = value.payload
                    masked = value.masked
                    cached = True
            if payload is None:
                sub_query = (
                    Query.full(
                        self.name, timeout_seconds=request.timeout_seconds
                    )
                    if request.kind == "topk"
                    else request
                )
                payloads, newly_lost, cached = self._scatter(
                    sub_query, alive, snaps, op
                )
                lost = sorted(lost + newly_lost)
                answered = {sid for sid, _ in payloads}
                snaps = {
                    sid: snap
                    for sid, snap in snaps.items()
                    if sid in answered
                }
                merged_vector = {sid: vector[sid] for sid in answered}
                if request.kind == "full":
                    entry = self._merged_entry(merged_vector, snaps, lost)
                    masked = entry.masked
                    payload = _Payload(points=entry.points, ids=entry.ids)
                elif request.kind == "subspace":
                    candidates = [
                        (p.points, p.ids) for _sid, p in payloads
                    ]
                    pts, ids = self._union_candidates(candidates)
                    if ids.shape[0]:
                        pts, ids = subspace_skyline(
                            pts, list(request.dims), ids=ids
                        )
                    pts, ids = _by_id(pts, ids)
                    pts, ids, masked = self._mask_lost(
                        pts, ids, lost, dims=list(request.dims)
                    )
                    payload = _Payload(points=pts, ids=ids)
                    self._store_result(
                        merged_vector, lost, request, payload, masked
                    )
                else:
                    entry = self._merged_entry(merged_vector, snaps, lost)
                    masked = entry.masked
                    payload = self._exec_topk_merged(
                        request, entry.points, entry.ids, snaps, entry
                    )
                    self._store_result(
                        merged_vector, lost, request, payload, masked
                    )
        elif request.kind == "kdominant":
            pin_vector = {shard.sid: vector[shard.sid] for shard in alive}
            payload = None
            if self._result_cache is not None:
                hit, value = self._result_cache.lookup(
                    self._result_key(pin_vector, lost, request)
                )
                if hit:
                    payload = value.payload
                    masked = value.masked
                    cached = True
            if payload is None:
                pts, ids = self._alive_union(snaps)
                if ids.shape[0]:
                    pts, ids = k_dominant_skyline(pts, request.k, ids=ids)
                pts, ids = _by_id(pts, ids)
                pts, ids, masked = self._mask_lost(
                    pts, ids, lost, k=request.k
                )
                payload = _Payload(points=pts, ids=ids)
                self._store_result(
                    pin_vector, lost, request, payload, masked
                )
        else:  # explain
            payload = self._exec_explain_union(request, snaps, lost)
        certificate = self._logical_certificate(
            vector, lost, masked, alive
        )
        if certificate["kind"] == "partial":
            self._count("shard_queries_partial")
        if (
            request.kind == "explain"
            and lost
            and payload.explanation is not None
        ):
            floors = self.map.floors(lost)
            point = np.asarray(
                payload.explanation.point, dtype=np.float64
            )
            if bool(
                floor_dominated_mask(point.reshape(1, -1), floors)[0]
            ):
                # A lost shard *could* hold a dominator of this point:
                # the membership verdict is uncertain.
                certificate["explain_uncertain"] = True
        return QueryResult(
            kind=request.kind,
            dataset=self.name,
            version=sum(vector.values()),
            points=payload.points,
            ids=payload.ids,
            scores=payload.scores,
            explanation=payload.explanation,
            live_member=None,
            cached=cached,
            queue_wait_seconds=queue_wait,
            service_seconds=monotonic() - started,
            certificate=certificate,
        )

    def _union_candidates(
        self, candidates: List[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        nonempty = [(p, i) for p, i in candidates if i.shape[0]]
        if not nonempty:
            d = self.codec.dimensions
            return (
                np.empty((0, d), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        return (
            np.vstack([p for p, _ in nonempty]),
            np.concatenate([i for _, i in nonempty]),
        )

    def _mask_lost(
        self,
        points: np.ndarray,
        ids: np.ndarray,
        lost: List[int],
        dims: Optional[List[int]] = None,
        k: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Certify a merged answer against the lost shards' floors:
        drop every point a lost shard *could* still dominate.  Returns
        ``(points, ids, masked_count)``."""
        if not lost or ids.shape[0] == 0:
            return points, ids, 0
        floors = self.map.floors(lost)
        if k is not None:
            mask = floor_k_dominated_mask(points, floors, k)
        elif dims is not None:
            mask = floor_dominated_mask(
                points[:, dims], floors[:, dims]
            )
        else:
            mask = floor_dominated_mask(points, floors)
        if not mask.any():
            return points, ids, 0
        keep = ~mask
        pts = points[keep].copy()
        out_ids = ids[keep].copy()
        pts.setflags(write=False)
        out_ids.setflags(write=False)
        return pts, out_ids, int(mask.sum())

    def _exec_topk_merged(
        self,
        request: Query,
        sky_pts: np.ndarray,
        sky_ids: np.ndarray,
        snaps: Dict[int, Snapshot],
        entry: Optional[MergedSkyline] = None,
    ) -> _Payload:
        """Mirror of the single service's topk executor over the merged
        (already id-sorted) skyline; dominance/representative scores
        count over the alive union — both are order-invariant counts,
        so feeding the id-sorted union matches the single service
        bit-for-bit.  With a merge-cache ``entry`` the union is
        memoised on it, shared by every query pinned to the vector."""

        def union() -> Tuple[np.ndarray, np.ndarray]:
            if entry is not None:
                return self._merged_union(entry, snaps)
            return self._alive_union(snaps)

        if sky_ids.shape[0] == 0:
            return _Payload(points=sky_pts, ids=sky_ids)
        if request.method == "representative":
            data_pts, _data_ids = union()
            points, ids = top_k_skyline(
                sky_pts, sky_ids, data_pts, request.k
            )
            scores = None
        else:
            data_pts = None
            if request.method == "dominance":
                data_pts, _data_ids = union()
            points, ids, scores = rank_skyline(
                sky_pts,
                sky_ids,
                dataset_points=data_pts,
                method=request.method,
                weights=request.weights,
            )
            points = points[: request.k]
            ids = ids[: request.k]
            scores = scores[: request.k].copy()
            scores.setflags(write=False)
        points = points.copy()
        ids = ids.copy()
        points.setflags(write=False)
        ids.setflags(write=False)
        return _Payload(points=points, ids=ids, scores=scores)

    def _exec_explain_union(
        self,
        request: Query,
        snaps: Dict[int, Snapshot],
        lost: List[int],
    ) -> _Payload:
        data_pts, data_ids = self._alive_union(snaps)
        if request.point_id is not None:
            owner = self._owner.get(int(request.point_id))
            if owner is not None and owner in lost:
                shard = self._shards[owner]
                raise ShardDownError(
                    f"point id {request.point_id} lives on down shard "
                    f"{owner} of {self.name!r}",
                    dataset=self.name, shard=owner,
                    terminal=shard.terminal,
                    retry_after_seconds=(
                        self.config.breaker_cooldown_seconds
                    ),
                )
            row = np.flatnonzero(data_ids == int(request.point_id))
            if row.shape[0] == 0:
                raise DatasetError(
                    f"point id {request.point_id} is not alive in "
                    f"{self.name!r}"
                )
            point = data_pts[int(row[0])]
        else:
            point = np.asarray(request.point, dtype=np.float64)
            if point.shape != (self.codec.dimensions,):
                raise DatasetError(
                    f"explain point must be {self.codec.dimensions}-D"
                )
        explanation = why_not(point, data_pts, data_ids)
        dom_points, dom_ids = _by_id(
            explanation.dominator_points, explanation.dominator_ids
        )
        explanation = WhyNotExplanation(
            point=explanation.point,
            is_skyline_member=explanation.is_skyline_member,
            dominator_points=dom_points,
            dominator_ids=dom_ids,
            single_dimension_fixes=dict(
                explanation.single_dimension_fixes
            ),
        )
        return _Payload(
            points=dom_points, ids=dom_ids, explanation=explanation
        )

    def _logical_certificate(
        self,
        vector: Dict[int, int],
        lost: List[int],
        masked: int,
        alive: List[_Shard],
    ) -> Dict[str, Any]:
        """Provenance of a gathered answer.  ``partial`` when any shard
        is certified away (the certificate then carries the floors a
        verifier needs); ``stale`` when some shard served a bounded-
        staleness snapshot (its writer is down); ``fresh`` otherwise."""
        kind = "fresh"
        stale_shards: List[int] = []
        for shard in alive:
            if shard.registry is None:
                continue
            try:
                status = shard.registry.writer_status(self.name)
            except DatasetError:
                continue
            if status["writer_down"]:
                stale_shards.append(shard.sid)
        if stale_shards:
            kind = "stale"
        if lost:
            kind = "partial"
        certificate: Dict[str, Any] = {
            "kind": kind,
            "version": sum(vector.values()),
            "version_vector": {
                str(sid): int(v) for sid, v in sorted(vector.items())
            },
        }
        if stale_shards:
            certificate["stale_shards"] = stale_shards
        if lost:
            certificate["scope"] = "shards"
            certificate["lost_shards"] = list(lost)
            certificate["floors"] = [
                [float(v) for v in self.map.floor(sid)] for sid in lost
            ]
            certificate["masked"] = int(masked)
        return certificate

    # ------------------------------------------------------------------
    # public write path
    # ------------------------------------------------------------------
    def mutate(
        self, request: Mutation, timeout: Optional[float] = None
    ) -> MutationResult:
        if self._closed:
            raise ConfigurationError("router is closed")
        request.validate()
        self._check_dataset(request.dataset)
        op = self._next_op()
        self._inject_shard_faults(op)
        self._maybe_heartbeat(op)
        started = monotonic()
        with self._write_lock:
            if request.kind == "insert":
                assert request.points is not None and request.ids is not None
                parts: Dict[int, Tuple[Optional[np.ndarray], np.ndarray]] = {
                    sid: (pts, ids)
                    for sid, (pts, ids) in self.map.split(
                        request.points, request.ids
                    ).items()
                }
            else:
                assert request.ids is not None
                by_shard: Dict[int, List[int]] = {}
                missing = [
                    int(pid)
                    for pid in request.ids
                    if int(pid) not in self._owner
                ]
                if missing:
                    # Reject before touching any shard — the resume
                    # filter would otherwise mistake a never-owned id
                    # for an already-applied retry and skip it silently.
                    raise DatasetError(
                        f"point ids not alive: {missing}"
                    )
                for pid in request.ids:
                    by_shard.setdefault(
                        self._owner[int(pid)], []
                    ).append(int(pid))
                parts = {
                    sid: (None, np.asarray(pids, dtype=np.int64))
                    for sid, pids in by_shard.items()
                }
            # Health pre-check: refuse up front rather than half-apply
            # onto a shard we already know is dead.
            for sid in sorted(parts):
                shard = self._shards[sid]
                if shard.down and not self._try_failover(shard):
                    self._count("mutations_rejected_shard_down")
                    raise ShardDownError(
                        f"shard {sid} of {self.name!r} is down; "
                        f"{'terminal' if shard.terminal else 'failover pending'}",
                        dataset=self.name,
                        shard=sid,
                        terminal=shard.terminal,
                        retry_after_seconds=(
                            None
                            if shard.terminal
                            else self.config.breaker_cooldown_seconds
                        ),
                    )
            results: List[MutationResult] = []
            rebuilt = False
            for sid in sorted(parts):
                shard = self._shards[sid]
                assert shard.service is not None
                pts, ids = parts[sid]
                sub = self._resume_filter(shard, request.kind, pts, ids)
                if sub is None:
                    continue
                pts, ids = sub
                if request.kind == "insert":
                    mutation = Mutation.insert(
                        self.name, pts, ids,
                        timeout_seconds=request.timeout_seconds,
                    )
                else:
                    mutation = Mutation.delete(
                        self.name, ids,
                        timeout_seconds=request.timeout_seconds,
                    )
                try:
                    result = shard.service.mutate(mutation)
                except Exception:
                    # Partial application: earlier shards committed
                    # (their WALs have the sub-batches); a retry
                    # resumes idempotently via _resume_filter.
                    shard.breaker.record_failure()
                    self._count("mutations_partial_failures")
                    raise
                shard.breaker.record_success()
                self._vector[sid] = result.publish.version
                rebuilt = rebuilt or result.publish.rebuilt
                if request.kind == "insert":
                    for pid in ids:
                        self._owner[int(pid)] = sid
                else:
                    for pid in ids:
                        self._owner.pop(int(pid), None)
                results.append(result)
            size = 0
            skyline_size = 0
            for sid in sorted(self._shards):
                shard = self._shards[sid]
                if shard.registry is None:
                    continue
                snap = shard.registry.snapshot(self.name)
                size += snap.size
                # Sum of shard skylines: an upper bound on the global
                # skyline size (cross-shard dominance not yet folded).
                skyline_size += snap.skyline_size
            publish = PublishResult(
                dataset=self.name,
                version=sum(self._vector.values()),
                size=size,
                skyline_size=skyline_size,
                rebuilt=rebuilt,
            )
        return MutationResult(
            publish=publish,
            queue_wait_seconds=max(
                (r.queue_wait_seconds for r in results), default=0.0
            ),
            service_seconds=monotonic() - started,
        )

    def _resume_filter(
        self,
        shard: _Shard,
        kind: str,
        pts: Optional[np.ndarray],
        ids: np.ndarray,
    ) -> Optional[Tuple[Optional[np.ndarray], np.ndarray]]:
        """Idempotent-resume backstop for retried batches: skip inserts
        already alive on their shard and deletes of ids no longer owned
        (a previous attempt applied them before failing on a later
        shard).  None = nothing left for this shard."""
        assert shard.registry is not None
        snap = shard.registry.snapshot(self.name)
        if kind == "insert":
            fresh = np.array(
                [snap.row_of(int(pid)) is None for pid in ids], dtype=bool
            )
        else:
            fresh = np.array(
                [snap.row_of(int(pid)) is not None for pid in ids],
                dtype=bool,
            )
        if fresh.all():
            return pts, ids
        self._count("mutations_resumed")
        if not fresh.any():
            return None
        return (
            pts[fresh] if pts is not None else None,
            ids[fresh],
        )

    # ------------------------------------------------------------------
    # registry-view / introspection
    # ------------------------------------------------------------------
    def _logical_snapshot(self, name: str) -> LogicalSnapshot:
        self._check_dataset(name)
        with self._write_lock:
            version = sum(self._vector.values())
            ids = np.fromiter(sorted(self._owner), dtype=np.int64)
        return LogicalSnapshot(
            dataset=self.name,
            version=version,
            codec=self.codec,
            ids=ids,
            size=int(ids.shape[0]),
            _router=self,
        )

    def ping(self, dataset: str) -> int:
        self._check_dataset(dataset)
        if self._closed:
            raise ConfigurationError("router is closed")
        return self.logical_version()

    def shard_states(self) -> Dict[int, Dict[str, Any]]:
        out: Dict[int, Dict[str, Any]] = {}
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            out[sid] = {
                "down": shard.down,
                "terminal": shard.terminal,
                "incarnation": shard.incarnation,
                "failovers": shard.failovers,
                "breaker": shard.breaker.state,
                "version": self._vector.get(sid),
                "last_failover_identical": shard.last_failover_identical,
            }
        return out

    def shard_admission_stats(self) -> Dict[int, Dict[str, Dict[str, int]]]:
        """Per-shard admission counters (read/mutate classes): the raw
        material for shed-rate fairness in
        :class:`~repro.serving.client.ReplayReport`.  Down shards are
        omitted (their controllers died with the service)."""
        out: Dict[int, Dict[str, Dict[str, int]]] = {}
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            if shard.service is None:
                continue
            out[sid] = shard.service.admission.stats()
        return out

    def flush_rebuilds(self, timeout: float = 60.0) -> None:
        """Quiesce pooled rebuilds on every live shard registry (no-op
        without a :class:`RebuildPool`); deterministic final state for
        tests and benchmarks."""
        if self.rebuild_pool is None:
            return
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            if shard.down or shard.registry is None:
                continue
            shard.registry.flush_rebuilds(self.name, timeout=timeout)

    def rebuild_status(self) -> Dict[int, Dict[str, Any]]:
        """Per-shard pooled-rebuild bookkeeping (down shards omitted)."""
        out: Dict[int, Dict[str, Any]] = {}
        for sid in sorted(self._shards):
            shard = self._shards[sid]
            if shard.down or shard.registry is None:
                continue
            out[sid] = shard.registry.rebuild_status(self.name)
        return out

    def stats(self) -> Dict[str, Any]:
        with self._write_lock:
            vector = {
                str(sid): int(v) for sid, v in sorted(self._vector.items())
            }
        return {
            "dataset": self.name,
            "shard_map": self.map.describe(),
            "logical_version": sum(int(v) for v in vector.values()),
            "version_vector": vector,
            "shards": self.shard_states(),
            "health": self.health.status(),
            "operations": self._ops,
            "merge_cache": (
                self._merge_cache.stats()
                if self._merge_cache is not None
                else None
            ),
            "result_cache": (
                self._result_cache.stats()
                if self._result_cache is not None
                else None
            ),
        }

    def __repr__(self) -> str:
        down = sum(1 for s in self._shards.values() if s.down)
        return (
            f"ShardedSkylineService({self.name!r}, "
            f"shards={self.num_shards}, down={down})"
        )


def _delayed_future(future: Future, delay: float) -> Future:
    """A future resolving ``delay`` seconds after ``future`` does — the
    injected straggler: the shard computed fine, its answer is late."""
    out: Future = Future()

    def _chain(done: Future) -> None:
        def _deliver() -> None:
            sleep(delay)
            exc = done.exception()
            if exc is not None:
                out.set_exception(exc)
            else:
                out.set_result(done.result())

        threading.Thread(target=_deliver, daemon=True).start()

    future.add_done_callback(_chain)
    return out
