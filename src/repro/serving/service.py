"""The :class:`SkylineService`: a long-lived, concurrent query engine.

One service instance serves typed queries over the datasets of a
:class:`~repro.serving.registry.DatasetRegistry`:

* ``full`` — the maintained skyline of the snapshot;
* ``subspace`` — skyline over a dimension subset
  (:func:`repro.extensions.subspace.subspace_skyline`);
* ``kdominant`` — the k-dominant skyline
  (:func:`repro.extensions.kdominant.k_dominant_skyline`);
* ``topk`` — ranked/representative top-k over the skyline
  (:mod:`repro.extensions.ranking`);
* ``explain`` — why-not explanation for a point or a stored id
  (:func:`repro.extensions.explain.why_not`), plus the live
  skyline-membership probe.

Every query executes against the immutable snapshot that is current at
execution time, so concurrent mutations never tear a result; the
snapshot's version is recorded on the result and keys the result
cache.  Requests pass admission control (bounded queues, load
shedding), run on small per-class worker pools, honour per-query
deadlines with the same :class:`DeadlineExceededError` contract the
pipeline supervisor uses, and emit one tracer span each.

Results are **canonical**: set-valued answers (full/subspace/
kdominant) are sorted by id, so a service answer is bit-comparable to
an offline recomputation on the same snapshot regardless of internal
iteration order.
"""

from __future__ import annotations

import json
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
)
from repro.extensions.explain import WhyNotExplanation, why_not
from repro.extensions.kdominant import k_dominant_skyline
from repro.extensions.ranking import rank_skyline, top_k_skyline
from repro.extensions.subspace import subspace_skyline
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.serving.admission import (
    MUTATE,
    READ,
    AdmissionConfig,
    AdmissionController,
    Ticket,
)
from repro.serving.cache import ResultCache
from repro.serving.registry import (
    SERVING_GROUP,
    DatasetRegistry,
    PublishResult,
)
from repro.serving.snapshot import Snapshot

QUERY_KINDS = ("full", "subspace", "kdominant", "topk", "explain")
TOPK_METHODS = ("sum", "weighted", "dominance", "representative")


# ----------------------------------------------------------------------
# request types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Query:
    """One typed read query (immutable; construct via the factories)."""

    kind: str
    dataset: str
    dims: Tuple[int, ...] = ()
    k: int = 0
    method: str = "sum"
    weights: Optional[Tuple[float, ...]] = None
    point: Optional[Tuple[float, ...]] = None
    point_id: Optional[int] = None
    timeout_seconds: Optional[float] = None

    # -- factories -----------------------------------------------------
    @classmethod
    def full(cls, dataset: str, **kw: Any) -> "Query":
        return cls(kind="full", dataset=dataset, **kw)

    @classmethod
    def subspace(
        cls, dataset: str, dims: Sequence[int], **kw: Any
    ) -> "Query":
        return cls(
            kind="subspace", dataset=dataset,
            dims=tuple(int(d) for d in dims), **kw,
        )

    @classmethod
    def kdominant(cls, dataset: str, k: int, **kw: Any) -> "Query":
        return cls(kind="kdominant", dataset=dataset, k=int(k), **kw)

    @classmethod
    def topk(
        cls,
        dataset: str,
        k: int,
        method: str = "sum",
        weights: Optional[Sequence[float]] = None,
        **kw: Any,
    ) -> "Query":
        return cls(
            kind="topk", dataset=dataset, k=int(k), method=method,
            weights=None if weights is None else tuple(
                float(w) for w in weights
            ),
            **kw,
        )

    @classmethod
    def explain(
        cls,
        dataset: str,
        point: Optional[Sequence[float]] = None,
        point_id: Optional[int] = None,
        **kw: Any,
    ) -> "Query":
        return cls(
            kind="explain", dataset=dataset,
            point=None if point is None else tuple(float(v) for v in point),
            point_id=None if point_id is None else int(point_id),
            **kw,
        )

    # -- validation / identity -----------------------------------------
    def validate(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ConfigurationError(f"unknown query kind {self.kind!r}")
        if self.kind == "subspace" and not self.dims:
            raise ConfigurationError("subspace query needs dims")
        if self.kind in ("kdominant", "topk") and self.k <= 0:
            raise ConfigurationError(f"{self.kind} query needs k >= 1")
        if self.kind == "topk":
            if self.method not in TOPK_METHODS:
                raise ConfigurationError(
                    f"topk method must be one of {TOPK_METHODS}; "
                    f"got {self.method!r}"
                )
            if self.method == "weighted" and self.weights is None:
                raise ConfigurationError("weighted topk needs weights")
        if self.kind == "explain" and (
            (self.point is None) == (self.point_id is None)
        ):
            raise ConfigurationError(
                "explain query needs exactly one of point / point_id"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")

    def fingerprint(self) -> str:
        """Canonical identity of the query *computation* (excludes the
        deadline, which affects scheduling but never the answer)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "subspace":
            payload["dims"] = sorted(self.dims)
        elif self.kind == "kdominant":
            payload["k"] = self.k
        elif self.kind == "topk":
            payload["k"] = self.k
            payload["method"] = self.method
            if self.weights is not None:
                payload["weights"] = [repr(w) for w in self.weights]
        elif self.kind == "explain":
            if self.point is not None:
                payload["point"] = [repr(v) for v in self.point]
            else:
                payload["point_id"] = self.point_id
        return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class Mutation:
    """One write batch (insert or delete)."""

    kind: str  # "insert" | "delete"
    dataset: str
    points: Optional[np.ndarray] = None
    ids: Optional[np.ndarray] = None
    timeout_seconds: Optional[float] = None

    @classmethod
    def insert(
        cls,
        dataset: str,
        points: np.ndarray,
        ids: Sequence[int],
        **kw: Any,
    ) -> "Mutation":
        return cls(
            kind="insert", dataset=dataset,
            points=np.asarray(points, dtype=np.float64),
            ids=np.asarray(ids, dtype=np.int64), **kw,
        )

    @classmethod
    def delete(cls, dataset: str, ids: Sequence[int], **kw: Any) -> "Mutation":
        return cls(
            kind="delete", dataset=dataset,
            ids=np.asarray(ids, dtype=np.int64), **kw,
        )

    def validate(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise ConfigurationError(f"unknown mutation kind {self.kind!r}")
        if self.ids is None:
            raise ConfigurationError("mutation needs ids")
        if self.kind == "insert" and self.points is None:
            raise ConfigurationError("insert needs points")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")


# ----------------------------------------------------------------------
# result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryResult:
    """Answer + provenance of one read query."""

    kind: str
    dataset: str
    #: snapshot version the answer was computed on
    version: int
    points: np.ndarray
    ids: np.ndarray
    scores: Optional[np.ndarray] = None
    explanation: Optional[WhyNotExplanation] = None
    #: live (current-version) skyline membership for explain-by-id;
    #: deliberately *not* part of the cached payload
    live_member: Optional[bool] = None
    cached: bool = False
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one write batch: the published version."""

    publish: PublishResult
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0

    @property
    def version(self) -> int:
        return self.publish.version


@dataclass(frozen=True)
class _Payload:
    """The cacheable core of a read answer (snapshot-deterministic)."""

    points: np.ndarray
    ids: np.ndarray
    scores: Optional[np.ndarray] = None
    explanation: Optional[WhyNotExplanation] = None


@dataclass
class _Request:
    """Internal queue item."""

    future: Future
    ticket: Ticket
    query: Optional[Query] = None
    mutation: Optional[Mutation] = None
    extra: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: result-cache capacity; 0 disables caching
    cache_entries: int = 512

    def __post_init__(self) -> None:
        if self.cache_entries < 0:
            raise ConfigurationError("cache_entries must be >= 0")


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class SkylineService:
    """Bounded worker pools serving typed skyline queries.

    Use as a context manager (``with SkylineService(registry) as svc:``)
    or call :meth:`close` explicitly; workers are daemon threads either
    way.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.admission = AdmissionController(
            self.config.admission, metrics=metrics
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_entries, metrics=metrics)
            if self.config.cache_entries
            else None
        )
        self._queues: Dict[str, "queue.Queue[Optional[_Request]]"] = {
            READ: queue.Queue(),
            MUTATE: queue.Queue(),
        }
        self._workers: list = []
        self._closed = False
        for klass in (READ, MUTATE):
            for i in range(self.config.admission.concurrency(klass)):
                worker = threading.Thread(
                    target=self._worker_loop,
                    args=(klass,),
                    name=f"skyline-{klass}-{i}",
                    daemon=True,
                )
                worker.start()
                self._workers.append((klass, worker))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, request) -> Future:
        """Admit a :class:`Query` or :class:`Mutation`; returns a
        Future resolving to :class:`QueryResult` /
        :class:`MutationResult`.

        Raises synchronously on invalid requests
        (:class:`ConfigurationError`), unknown datasets
        (:class:`DatasetError`), and shed requests
        (:class:`~repro.core.exceptions.OverloadedError`).
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        request.validate()
        # Fail fast on unknown datasets (before burning a queue slot).
        self.registry.snapshot(request.dataset)
        klass = READ if isinstance(request, Query) else MUTATE
        ticket = self.admission.admit(klass, request.timeout_seconds)
        future: Future = Future()
        item = _Request(future=future, ticket=ticket)
        if klass == READ:
            item.query = request
        else:
            item.mutation = request
        self._queues[klass].put(item)
        return future

    def query(
        self, request: Query, timeout: Optional[float] = None
    ) -> QueryResult:
        """Submit a read and wait for its answer."""
        return self.submit(request).result(timeout=timeout)

    def mutate(
        self, request: Mutation, timeout: Optional[float] = None
    ) -> MutationResult:
        """Submit a write batch and wait for the published version."""
        return self.submit(request).result(timeout=timeout)

    def close(self) -> None:
        """Drain workers and stop accepting requests (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for klass, _worker in self._workers:
            self._queues[klass].put(None)
        for _klass, worker in self._workers:
            worker.join(timeout=5.0)

    def __enter__(self) -> "SkylineService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, klass: str) -> None:
        q = self._queues[klass]
        while True:
            item = q.get()
            if item is None:
                return
            self._handle(item)

    def _handle(self, item: _Request) -> None:
        ticket = item.ticket
        if ticket.expired():
            self.admission.expire(ticket)
            item.future.set_exception(
                DeadlineExceededError(
                    f"{ticket.klass} request deadline passed after "
                    f"{monotonic() - ticket.admitted_at:.3f}s in queue"
                )
            )
            return
        self.admission.started(ticket)
        if not item.future.set_running_or_notify_cancel():
            self.admission.finished(ticket, ok=False)
            return
        ok = True
        try:
            if item.query is not None:
                result = self._execute_query(item.query, ticket)
            else:
                result = self._execute_mutation(item.mutation, ticket)
        except BaseException as exc:  # noqa: BLE001 — routed to caller
            ok = False
            self.admission.finished(ticket, ok=False)
            item.future.set_exception(exc)
            return
        if ok:
            self.admission.finished(ticket, ok=True)
            item.future.set_result(result)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _execute_query(self, query: Query, ticket: Ticket) -> QueryResult:
        snapshot = self.registry.snapshot(query.dataset)
        span = self.tracer.start_span(
            "serving.query",
            kind=query.kind,
            dataset=query.dataset,
            version=snapshot.version,
        )
        try:
            payload, cached = self._payload_for(query, snapshot)
            live_member: Optional[bool] = None
            if query.kind == "explain" and query.point_id is not None:
                # Live membership probe (O(1) against the maintainer's
                # cached id-set); computed per request, never cached —
                # it describes the *current* version, not the snapshot.
                try:
                    live_member = self.registry.is_skyline_member(
                        query.dataset, query.point_id
                    )
                except DatasetError:
                    live_member = False
            span.update(cached=cached, rows=int(payload.ids.shape[0]))
            return QueryResult(
                kind=query.kind,
                dataset=query.dataset,
                version=snapshot.version,
                points=payload.points,
                ids=payload.ids,
                scores=payload.scores,
                explanation=payload.explanation,
                live_member=live_member,
                cached=cached,
                queue_wait_seconds=ticket.queue_wait_seconds,
                service_seconds=monotonic() - (ticket.started_at or 0.0),
            )
        finally:
            span.finish()

    def _payload_for(
        self, query: Query, snapshot: Snapshot
    ) -> Tuple[_Payload, bool]:
        key = None
        if self.cache is not None:
            key = ResultCache.make_key(
                snapshot.dataset, snapshot.version, query.fingerprint()
            )
            hit, value = self.cache.lookup(key)
            if hit:
                return value, True
        payload = _EXECUTORS[query.kind](query, snapshot)
        if self.cache is not None and key is not None:
            self.cache.store(key, payload)
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"queries_{query.kind}")
        return payload, False

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _execute_mutation(
        self, mutation: Mutation, ticket: Ticket
    ) -> MutationResult:
        span = self.tracer.start_span(
            "serving.mutation",
            kind=mutation.kind,
            dataset=mutation.dataset,
        )
        try:
            if mutation.kind == "insert":
                publish = self.registry.insert(
                    mutation.dataset, mutation.points, mutation.ids
                )
            else:
                publish = self.registry.delete(
                    mutation.dataset, mutation.ids
                )
            span.update(
                version=publish.version,
                skyline=publish.skyline_size,
                rebuilt=publish.rebuilt,
            )
            return MutationResult(
                publish=publish,
                queue_wait_seconds=ticket.queue_wait_seconds,
                service_seconds=monotonic() - (ticket.started_at or 0.0),
            )
        finally:
            span.finish()


# ----------------------------------------------------------------------
# query executors (pure functions of the snapshot — cache-safe)
# ----------------------------------------------------------------------
def _by_id(
    points: np.ndarray, ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical order: ascending id (bit-stable across access paths)."""
    order = np.argsort(ids, kind="stable")
    pts = points[order].copy()
    out_ids = ids[order].copy()
    pts.setflags(write=False)
    out_ids.setflags(write=False)
    return pts, out_ids


def _exec_full(query: Query, snapshot: Snapshot) -> _Payload:
    points, ids = _by_id(snapshot.sky_points, snapshot.sky_ids)
    return _Payload(points=points, ids=ids)


def _exec_subspace(query: Query, snapshot: Snapshot) -> _Payload:
    if snapshot.size == 0:
        return _exec_full(query, snapshot)
    points, ids = subspace_skyline(
        snapshot.points, list(query.dims), ids=snapshot.ids
    )
    points, ids = _by_id(points, ids)
    return _Payload(points=points, ids=ids)


def _exec_kdominant(query: Query, snapshot: Snapshot) -> _Payload:
    if snapshot.size == 0:
        return _exec_full(query, snapshot)
    points, ids = k_dominant_skyline(
        snapshot.points, query.k, ids=snapshot.ids
    )
    points, ids = _by_id(points, ids)
    return _Payload(points=points, ids=ids)


def _exec_topk(query: Query, snapshot: Snapshot) -> _Payload:
    # Rank over the snapshot skyline, fed in canonical id order so ties
    # break identically however the skyline was obtained.
    sky_points, sky_ids = _by_id(snapshot.sky_points, snapshot.sky_ids)
    if sky_ids.shape[0] == 0:
        return _Payload(points=sky_points, ids=sky_ids)
    if query.method == "representative":
        points, ids = top_k_skyline(
            sky_points, sky_ids, snapshot.points, query.k
        )
        scores = None
    else:
        points, ids, scores = rank_skyline(
            sky_points,
            sky_ids,
            dataset_points=(
                snapshot.points if query.method == "dominance" else None
            ),
            method=query.method,
            weights=query.weights,
        )
        points = points[: query.k]
        ids = ids[: query.k]
        scores = scores[: query.k].copy()
        scores.setflags(write=False)
    points = points.copy()
    ids = ids.copy()
    points.setflags(write=False)
    ids.setflags(write=False)
    return _Payload(points=points, ids=ids, scores=scores)


def _exec_explain(query: Query, snapshot: Snapshot) -> _Payload:
    if query.point_id is not None:
        point = snapshot.point_of(query.point_id)
    else:
        point = np.asarray(query.point, dtype=np.float64)
        if point.shape != (snapshot.dimensions,):
            raise DatasetError(
                f"explain point must be {snapshot.dimensions}-D"
            )
    explanation = why_not(point, snapshot.points, snapshot.ids)
    # Canonicalise dominator order by id so cached and fresh answers
    # are bit-identical however the snapshot was assembled.
    dom_points, dom_ids = _by_id(
        explanation.dominator_points, explanation.dominator_ids
    )
    explanation = WhyNotExplanation(
        point=explanation.point,
        is_skyline_member=explanation.is_skyline_member,
        dominator_points=dom_points,
        dominator_ids=dom_ids,
        single_dimension_fixes=dict(explanation.single_dimension_fixes),
    )
    return _Payload(
        points=dom_points, ids=dom_ids, explanation=explanation
    )


_EXECUTORS = {
    "full": _exec_full,
    "subspace": _exec_subspace,
    "kdominant": _exec_kdominant,
    "topk": _exec_topk,
    "explain": _exec_explain,
}
