"""The :class:`SkylineService`: a long-lived, concurrent query engine.

One service instance serves typed queries over the datasets of a
:class:`~repro.serving.registry.DatasetRegistry`:

* ``full`` — the maintained skyline of the snapshot;
* ``subspace`` — skyline over a dimension subset
  (:func:`repro.extensions.subspace.subspace_skyline`);
* ``kdominant`` — the k-dominant skyline
  (:func:`repro.extensions.kdominant.k_dominant_skyline`);
* ``topk`` — ranked/representative top-k over the skyline
  (:mod:`repro.extensions.ranking`);
* ``explain`` — why-not explanation for a point or a stored id
  (:func:`repro.extensions.explain.why_not`), plus the live
  skyline-membership probe.

Every query executes against the immutable snapshot that is current at
execution time, so concurrent mutations never tear a result; the
snapshot's version is recorded on the result and keys the result
cache.  Requests pass admission control (bounded queues, load
shedding), run on small per-class worker pools, honour per-query
deadlines with the same :class:`DeadlineExceededError` contract the
pipeline supervisor uses, and emit one tracer span each.

Results are **canonical**: set-valued answers (full/subspace/
kdominant) are sorted by id, so a service answer is bit-comparable to
an offline recomputation on the same snapshot regardless of internal
iteration order.
"""

from __future__ import annotations

import json
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    QueryPoisonedError,
    WriterDownError,
    is_retryable,
)
from repro.extensions.explain import WhyNotExplanation, why_not
from repro.extensions.kdominant import k_dominant_skyline
from repro.extensions.ranking import rank_skyline, top_k_skyline
from repro.extensions.subspace import subspace_skyline
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.serving.admission import (
    MUTATE,
    READ,
    AdmissionConfig,
    AdmissionController,
    Ticket,
)
from repro.serving.cache import ResultCache
from repro.serving.faults import ServingFaultPlan
from repro.serving.registry import (
    SERVING_GROUP,
    DatasetRegistry,
    PublishResult,
)
from repro.serving.resilience import CircuitBreaker
from repro.serving.snapshot import Snapshot

QUERY_KINDS = ("full", "subspace", "kdominant", "topk", "explain")
TOPK_METHODS = ("sum", "weighted", "dominance", "representative")


# ----------------------------------------------------------------------
# request types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Query:
    """One typed read query (immutable; construct via the factories)."""

    kind: str
    dataset: str
    dims: Tuple[int, ...] = ()
    k: int = 0
    method: str = "sum"
    weights: Optional[Tuple[float, ...]] = None
    point: Optional[Tuple[float, ...]] = None
    point_id: Optional[int] = None
    timeout_seconds: Optional[float] = None

    # -- factories -----------------------------------------------------
    @classmethod
    def full(cls, dataset: str, **kw: Any) -> "Query":
        return cls(kind="full", dataset=dataset, **kw)

    @classmethod
    def subspace(
        cls, dataset: str, dims: Sequence[int], **kw: Any
    ) -> "Query":
        return cls(
            kind="subspace", dataset=dataset,
            dims=tuple(int(d) for d in dims), **kw,
        )

    @classmethod
    def kdominant(cls, dataset: str, k: int, **kw: Any) -> "Query":
        return cls(kind="kdominant", dataset=dataset, k=int(k), **kw)

    @classmethod
    def topk(
        cls,
        dataset: str,
        k: int,
        method: str = "sum",
        weights: Optional[Sequence[float]] = None,
        **kw: Any,
    ) -> "Query":
        return cls(
            kind="topk", dataset=dataset, k=int(k), method=method,
            weights=None if weights is None else tuple(
                float(w) for w in weights
            ),
            **kw,
        )

    @classmethod
    def explain(
        cls,
        dataset: str,
        point: Optional[Sequence[float]] = None,
        point_id: Optional[int] = None,
        **kw: Any,
    ) -> "Query":
        return cls(
            kind="explain", dataset=dataset,
            point=None if point is None else tuple(float(v) for v in point),
            point_id=None if point_id is None else int(point_id),
            **kw,
        )

    # -- validation / identity -----------------------------------------
    def validate(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ConfigurationError(f"unknown query kind {self.kind!r}")
        if self.kind == "subspace" and not self.dims:
            raise ConfigurationError("subspace query needs dims")
        if self.kind in ("kdominant", "topk") and self.k <= 0:
            raise ConfigurationError(f"{self.kind} query needs k >= 1")
        if self.kind == "topk":
            if self.method not in TOPK_METHODS:
                raise ConfigurationError(
                    f"topk method must be one of {TOPK_METHODS}; "
                    f"got {self.method!r}"
                )
            if self.method == "weighted" and self.weights is None:
                raise ConfigurationError("weighted topk needs weights")
        if self.kind == "explain" and (
            (self.point is None) == (self.point_id is None)
        ):
            raise ConfigurationError(
                "explain query needs exactly one of point / point_id"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")

    def fingerprint(self) -> str:
        """Canonical identity of the query *computation* (excludes the
        deadline, which affects scheduling but never the answer)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "subspace":
            payload["dims"] = sorted(self.dims)
        elif self.kind == "kdominant":
            payload["k"] = self.k
        elif self.kind == "topk":
            payload["k"] = self.k
            payload["method"] = self.method
            if self.weights is not None:
                payload["weights"] = [repr(w) for w in self.weights]
        elif self.kind == "explain":
            if self.point is not None:
                payload["point"] = [repr(v) for v in self.point]
            else:
                payload["point_id"] = self.point_id
        return json.dumps(payload, sort_keys=True)


@dataclass(frozen=True)
class Mutation:
    """One write batch (insert or delete)."""

    kind: str  # "insert" | "delete"
    dataset: str
    points: Optional[np.ndarray] = None
    ids: Optional[np.ndarray] = None
    timeout_seconds: Optional[float] = None

    @classmethod
    def insert(
        cls,
        dataset: str,
        points: np.ndarray,
        ids: Sequence[int],
        **kw: Any,
    ) -> "Mutation":
        return cls(
            kind="insert", dataset=dataset,
            points=np.asarray(points, dtype=np.float64),
            ids=np.asarray(ids, dtype=np.int64), **kw,
        )

    @classmethod
    def delete(cls, dataset: str, ids: Sequence[int], **kw: Any) -> "Mutation":
        return cls(
            kind="delete", dataset=dataset,
            ids=np.asarray(ids, dtype=np.int64), **kw,
        )

    def validate(self) -> None:
        if self.kind not in ("insert", "delete"):
            raise ConfigurationError(f"unknown mutation kind {self.kind!r}")
        if self.ids is None:
            raise ConfigurationError("mutation needs ids")
        if self.kind == "insert" and self.points is None:
            raise ConfigurationError("insert needs points")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")


# ----------------------------------------------------------------------
# result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryResult:
    """Answer + provenance of one read query."""

    kind: str
    dataset: str
    #: snapshot version the answer was computed on
    version: int
    points: np.ndarray
    ids: np.ndarray
    scores: Optional[np.ndarray] = None
    explanation: Optional[WhyNotExplanation] = None
    #: live (current-version) skyline membership for explain-by-id;
    #: deliberately *not* part of the cached payload
    live_member: Optional[bool] = None
    cached: bool = False
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0
    #: answer provenance under the degradation ladder: ``{"kind":
    #: "fresh" | "stale" | "partial", "version": ..., ...}`` — ``stale``
    #: while the writer is down (bounded-staleness snapshot),
    #: ``partial`` on a post-recovery snapshot whose WAL replay dropped
    #: a torn tail frame.  Computed per request, never cached.
    certificate: Optional[Dict[str, Any]] = None

    @property
    def size(self) -> int:
        return int(self.ids.shape[0])


@dataclass(frozen=True)
class MutationResult:
    """Outcome of one write batch: the published version."""

    publish: PublishResult
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0

    @property
    def version(self) -> int:
        return self.publish.version


@dataclass(frozen=True)
class _Payload:
    """The cacheable core of a read answer (snapshot-deterministic)."""

    points: np.ndarray
    ids: np.ndarray
    scores: Optional[np.ndarray] = None
    explanation: Optional[WhyNotExplanation] = None


@dataclass
class _Request:
    """Internal queue item."""

    future: Future
    ticket: Ticket
    query: Optional[Query] = None
    mutation: Optional[Mutation] = None
    extra: Dict[str, Any] = field(default_factory=dict)
    #: execution attempts so far (a worker crash re-enqueues the
    #: request; after ``max_requeues`` re-enqueues it is quarantined)
    attempts: int = 0
    #: stable per-class dequeue index — the identity the fault plan's
    #: keyed draws hash, assigned at first dequeue and kept across
    #: re-enqueues so a retried request re-draws by attempt number
    op_index: Optional[int] = None


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs."""

    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: result-cache capacity; 0 disables caching
    cache_entries: int = 512
    #: seeded chaos schedule (worker crashes, cache corruption, queue
    #: delays); None = no injection.  Writer crashes are injected by
    #: the *registry's* plan — pass the same plan to both.
    fault_plan: Optional[ServingFaultPlan] = None
    #: on WriterDownError from a durable registry, replay the WAL and
    #: resolve the mutation in place (exactly-once semantics)
    auto_recover_writer: bool = True
    #: per-dataset circuit breaker over mutations; 0 disables it
    circuit_failure_threshold: int = 5
    circuit_cooldown_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.cache_entries < 0:
            raise ConfigurationError("cache_entries must be >= 0")
        if self.circuit_failure_threshold < 0:
            raise ConfigurationError(
                "circuit_failure_threshold must be >= 0"
            )
        if self.circuit_cooldown_seconds < 0:
            raise ConfigurationError(
                "circuit_cooldown_seconds must be >= 0"
            )


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
class SkylineService:
    """Bounded worker pools serving typed skyline queries.

    Use as a context manager (``with SkylineService(registry) as svc:``)
    or call :meth:`close` explicitly; workers are daemon threads either
    way.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServiceConfig()
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.admission = AdmissionController(
            self.config.admission, metrics=metrics
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(
                self.config.cache_entries,
                metrics=metrics,
                fault_plan=self.config.fault_plan,
            )
            if self.config.cache_entries
            else None
        )
        self._queues: Dict[str, "queue.Queue[Optional[_Request]]"] = {
            READ: queue.Queue(),
            MUTATE: queue.Queue(),
        }
        self._workers: list = []
        self._worker_serial = 0
        self._closed = False
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        #: per-class dequeue counters (fault-plan draw identities)
        self._dequeues: Dict[str, int] = {READ: 0, MUTATE: 0}
        self._dequeue_lock = threading.Lock()
        for klass in (READ, MUTATE):
            for _ in range(self.config.admission.concurrency(klass)):
                self._spawn_worker(klass)

    def _spawn_worker(self, klass: str) -> None:
        self._worker_serial += 1
        worker = threading.Thread(
            target=self._worker_loop,
            args=(klass,),
            name=f"skyline-{klass}-{self._worker_serial}",
            daemon=True,
        )
        worker.start()
        self._workers.append((klass, worker))

    def _breaker(self, dataset: str) -> Optional[CircuitBreaker]:
        if self.config.circuit_failure_threshold == 0:
            return None
        with self._breaker_lock:
            breaker = self._breakers.get(dataset)
            if breaker is None:
                breaker = CircuitBreaker(
                    dataset,
                    failure_threshold=self.config.circuit_failure_threshold,
                    cooldown_seconds=self.config.circuit_cooldown_seconds,
                    on_transition=self._on_breaker_transition,
                )
                self._breakers[dataset] = breaker
            return breaker

    def _on_breaker_transition(
        self, dataset: str, old: str, new: str
    ) -> None:
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"circuit_{new}")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, request) -> Future:
        """Admit a :class:`Query` or :class:`Mutation`; returns a
        Future resolving to :class:`QueryResult` /
        :class:`MutationResult`.

        Raises synchronously on invalid requests
        (:class:`ConfigurationError`), unknown datasets
        (:class:`DatasetError`), shed requests
        (:class:`~repro.core.exceptions.OverloadedError`), and
        mutations against a tripped breaker
        (:class:`~repro.core.exceptions.CircuitOpenError`).
        """
        if self._closed:
            raise ConfigurationError("service is closed")
        request.validate()
        # Fail fast on unknown datasets (before burning a queue slot).
        self.registry.snapshot(request.dataset)
        klass = READ if isinstance(request, Query) else MUTATE
        if klass == MUTATE:
            # The breaker gates *writes* only: reads degrade to the
            # last published snapshot instead of failing (see the
            # certificate on QueryResult).
            breaker = self._breaker(request.dataset)
            if breaker is not None:
                try:
                    breaker.allow()
                except Exception:
                    if self.metrics is not None:
                        self.metrics.inc(SERVING_GROUP, "circuit_rejected")
                    raise
        try:
            ticket = self.admission.admit(klass, request.timeout_seconds)
        except BaseException:
            if klass == MUTATE and self._breakers.get(request.dataset):
                # allow() may have claimed the half-open probe slot.
                self._breakers[request.dataset].abort_probe()
            raise
        future: Future = Future()
        item = _Request(future=future, ticket=ticket)
        if klass == READ:
            item.query = request
        else:
            item.mutation = request
        self._queues[klass].put(item)
        return future

    def query(
        self, request: Query, timeout: Optional[float] = None
    ) -> QueryResult:
        """Submit a read and wait for its answer."""
        return self.submit(request).result(timeout=timeout)

    def ping(self, dataset: str) -> int:
        """Cheap liveness probe: the service accepts work and the
        dataset's current snapshot is readable.  Returns the published
        version (what a health monitor wants to record)."""
        if self._closed:
            raise ConfigurationError("service is closed")
        return self.registry.snapshot(dataset).version

    def mutate(
        self, request: Mutation, timeout: Optional[float] = None
    ) -> MutationResult:
        """Submit a write batch and wait for the published version."""
        return self.submit(request).result(timeout=timeout)

    def close(self) -> None:
        """Drain workers and stop accepting requests (idempotent).

        Any request still queued behind the shutdown sentinels (e.g.
        one re-enqueued by a worker crash that raced ``close``) has its
        future failed rather than left hanging — every submitted future
        resolves.
        """
        if self._closed:
            return
        self._closed = True
        for klass, _worker in self._workers:
            self._queues[klass].put(None)
        for _klass, worker in self._workers:
            worker.join(timeout=5.0)
        for klass in (READ, MUTATE):
            q = self._queues[klass]
            while True:
                try:
                    item = q.get_nowait()
                except queue.Empty:
                    break
                if item is None or item.future.done():
                    continue
                item.future.set_exception(
                    ConfigurationError("service closed before execution")
                )

    def __enter__(self) -> "SkylineService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self, klass: str) -> None:
        q = self._queues[klass]
        while True:
            item = q.get()
            if item is None:
                return
            plan = self.config.fault_plan
            if plan is not None and plan.any_faults:
                if item.op_index is None:
                    with self._dequeue_lock:
                        self._dequeues[klass] += 1
                        item.op_index = self._dequeues[klass]
                delay = plan.queue_delay(klass, item.op_index)
                if delay > 0:
                    if self.metrics is not None:
                        self.metrics.inc(SERVING_GROUP, "injected_delays")
                    sleep(delay)
                attempt = item.attempts + 1
                if plan.worker_crashes(klass, item.op_index, attempt):
                    item.attempts = attempt
                    self._worker_crashed(klass, item, plan)
                    return  # this worker thread is dead
            self._handle(item)

    def _worker_crashed(
        self, klass: str, item: _Request, plan: ServingFaultPlan
    ) -> None:
        """An injected crash killed this worker mid-request: re-enqueue
        the request (up to ``max_requeues`` times), then quarantine it
        as a poison pill; either way a replacement worker is spawned
        (the pool self-heals)."""
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "worker_crashes")
        if item.attempts <= plan.max_requeues:
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "requeued")
            self._queues[klass].put(item)
        else:
            # Poison pill: it has now crashed max_requeues + 1 workers.
            self.admission.drop(item.ticket)
            if klass == MUTATE and item.mutation is not None:
                breaker = self._breakers.get(item.mutation.dataset)
                if breaker is not None:
                    breaker.record_failure()
            item.future.set_exception(
                QueryPoisonedError(
                    f"request quarantined after crashing "
                    f"{item.attempts} workers",
                    attempts=item.attempts,
                )
            )
        if not self._closed:
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "worker_respawns")
            self._spawn_worker(klass)

    def _handle(self, item: _Request) -> None:
        ticket = item.ticket
        breaker = (
            self._breakers.get(item.mutation.dataset)
            if item.mutation is not None
            else None
        )
        if ticket.expired():
            waited = monotonic() - ticket.admitted_at
            self.admission.expire(ticket)
            if breaker is not None:
                breaker.abort_probe()
            item.future.set_exception(
                DeadlineExceededError(
                    f"{ticket.klass} request deadline passed after "
                    f"{waited:.3f}s in queue",
                    queue_wait_seconds=waited,
                    queue_depth=self.admission.queued(ticket.klass),
                    retry_after_seconds=(
                        self.admission.retry_after_estimate(ticket.klass)
                        or None
                    ),
                )
            )
            return
        self.admission.started(ticket)
        if not item.future.set_running_or_notify_cancel():
            self.admission.finished(ticket, ok=False)
            if breaker is not None:
                breaker.abort_probe()
            return
        ok = True
        try:
            if item.query is not None:
                result = self._execute_query(item.query, ticket)
            else:
                result = self._execute_mutation(item.mutation, ticket)
        except BaseException as exc:  # noqa: BLE001 — routed to caller
            ok = False
            self.admission.finished(ticket, ok=False)
            if breaker is not None:
                # Only server-side (retryable) failures feed the
                # breaker; a bad request says nothing about health.
                if is_retryable(exc):
                    breaker.record_failure()
                else:
                    breaker.abort_probe()
            item.future.set_exception(exc)
            return
        if ok:
            self.admission.finished(ticket, ok=True)
            if breaker is not None:
                breaker.record_success()
            item.future.set_result(result)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _execute_query(self, query: Query, ticket: Ticket) -> QueryResult:
        snapshot = self.registry.snapshot(query.dataset)
        span = self.tracer.start_span(
            "serving.query",
            kind=query.kind,
            dataset=query.dataset,
            version=snapshot.version,
        )
        try:
            payload, cached = self._payload_for(query, snapshot)
            live_member: Optional[bool] = None
            if query.kind == "explain" and query.point_id is not None:
                # Live membership probe (O(1) against the maintainer's
                # cached id-set); computed per request, never cached —
                # it describes the *current* version, not the snapshot.
                try:
                    live_member = self.registry.is_skyline_member(
                        query.dataset, query.point_id
                    )
                except DatasetError:
                    live_member = False
            certificate = self._certificate(query.dataset, snapshot)
            span.update(
                cached=cached,
                rows=int(payload.ids.shape[0]),
                certificate=certificate["kind"],
            )
            return QueryResult(
                kind=query.kind,
                dataset=query.dataset,
                version=snapshot.version,
                points=payload.points,
                ids=payload.ids,
                scores=payload.scores,
                explanation=payload.explanation,
                live_member=live_member,
                cached=cached,
                queue_wait_seconds=ticket.queue_wait_seconds,
                service_seconds=monotonic() - (ticket.started_at or 0.0),
                certificate=certificate,
            )
        finally:
            span.finish()

    def _certificate(
        self, dataset: str, snapshot: Snapshot
    ) -> Dict[str, Any]:
        """Degradation-ladder certificate for an answer computed on
        ``snapshot``: ``fresh`` (healthy writer) → ``stale`` (writer
        down; answer is exact for the last published version) →
        ``partial`` (post-recovery snapshot whose WAL replay dropped a
        torn, unacknowledged tail batch)."""
        status = self.registry.writer_status(dataset)
        meta = snapshot.meta
        if meta.get("dropped_tail"):
            kind = "partial"
        elif status["writer_down"]:
            kind = "stale"
        else:
            kind = "fresh"
        certificate: Dict[str, Any] = {
            "kind": kind,
            "version": snapshot.version,
        }
        if status["writer_down"]:
            certificate["writer_down"] = True
            certificate["pending_batches"] = status["pending_batches"]
            certificate["published_version"] = status["published_version"]
        if meta.get("recovered"):
            certificate["recovered"] = True
            if meta.get("dropped_tail"):
                certificate["dropped_batches"] = meta["dropped_tail"]
        if kind != "fresh" and self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"queries_{kind}")
        return certificate

    def _payload_for(
        self, query: Query, snapshot: Snapshot
    ) -> Tuple[_Payload, bool]:
        key = None
        if self.cache is not None:
            key = ResultCache.make_key(
                snapshot.dataset, snapshot.version, query.fingerprint()
            )
            hit, value = self.cache.lookup(key)
            if hit:
                return value, True
        payload = _EXECUTORS[query.kind](query, snapshot)
        if self.cache is not None and key is not None:
            self.cache.store(key, payload)
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, f"queries_{query.kind}")
        return payload, False

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _execute_mutation(
        self, mutation: Mutation, ticket: Ticket
    ) -> MutationResult:
        span = self.tracer.start_span(
            "serving.mutation",
            kind=mutation.kind,
            dataset=mutation.dataset,
        )
        try:
            try:
                publish = self._apply_mutation(mutation)
            except WriterDownError as exc:
                publish = self._recover_writer(mutation, exc)
            span.update(
                version=publish.version,
                skyline=publish.skyline_size,
                rebuilt=publish.rebuilt,
            )
            return MutationResult(
                publish=publish,
                queue_wait_seconds=ticket.queue_wait_seconds,
                service_seconds=monotonic() - (ticket.started_at or 0.0),
            )
        finally:
            span.finish()

    def _apply_mutation(self, mutation: Mutation) -> PublishResult:
        if mutation.kind == "insert":
            return self.registry.insert(
                mutation.dataset, mutation.points, mutation.ids
            )
        return self.registry.delete(mutation.dataset, mutation.ids)

    def _recover_writer(
        self, mutation: Mutation, exc: WriterDownError
    ) -> PublishResult:
        """Self-heal a crashed dataset writer, resolving ``mutation``
        exactly once.

        The typed error's ``applied`` field disambiguates: ``True`` —
        the batch reached the durable WAL, so recovery's replay applies
        it and the recovered publish *is* this mutation's outcome;
        ``False`` — the batch was lost before the WAL, so after
        recovery it is re-executed (it never took effect); ``None`` —
        unknown, propagate and let the caller's retry policy decide.
        """
        if (
            not self.config.auto_recover_writer
            or not self.registry.durable
            or exc.applied is None
        ):
            raise exc
        recovered = self.registry.recover(mutation.dataset)
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "writer_auto_recoveries")
        if exc.applied:
            return recovered
        return self._apply_mutation(mutation)


# ----------------------------------------------------------------------
# query executors (pure functions of the snapshot — cache-safe)
# ----------------------------------------------------------------------
def _by_id(
    points: np.ndarray, ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonical order: ascending id (bit-stable across access paths)."""
    order = np.argsort(ids, kind="stable")
    pts = points[order].copy()
    out_ids = ids[order].copy()
    pts.setflags(write=False)
    out_ids.setflags(write=False)
    return pts, out_ids


def _exec_full(query: Query, snapshot: Snapshot) -> _Payload:
    points, ids = _by_id(snapshot.sky_points, snapshot.sky_ids)
    return _Payload(points=points, ids=ids)


def _exec_subspace(query: Query, snapshot: Snapshot) -> _Payload:
    if snapshot.size == 0:
        return _exec_full(query, snapshot)
    points, ids = subspace_skyline(
        snapshot.points, list(query.dims), ids=snapshot.ids
    )
    points, ids = _by_id(points, ids)
    return _Payload(points=points, ids=ids)


def _exec_kdominant(query: Query, snapshot: Snapshot) -> _Payload:
    if snapshot.size == 0:
        return _exec_full(query, snapshot)
    points, ids = k_dominant_skyline(
        snapshot.points, query.k, ids=snapshot.ids
    )
    points, ids = _by_id(points, ids)
    return _Payload(points=points, ids=ids)


def _exec_topk(query: Query, snapshot: Snapshot) -> _Payload:
    # Rank over the snapshot skyline, fed in canonical id order so ties
    # break identically however the skyline was obtained.
    sky_points, sky_ids = _by_id(snapshot.sky_points, snapshot.sky_ids)
    if sky_ids.shape[0] == 0:
        return _Payload(points=sky_points, ids=sky_ids)
    if query.method == "representative":
        points, ids = top_k_skyline(
            sky_points, sky_ids, snapshot.points, query.k
        )
        scores = None
    else:
        points, ids, scores = rank_skyline(
            sky_points,
            sky_ids,
            dataset_points=(
                snapshot.points if query.method == "dominance" else None
            ),
            method=query.method,
            weights=query.weights,
        )
        points = points[: query.k]
        ids = ids[: query.k]
        scores = scores[: query.k].copy()
        scores.setflags(write=False)
    points = points.copy()
    ids = ids.copy()
    points.setflags(write=False)
    ids.setflags(write=False)
    return _Payload(points=points, ids=ids, scores=scores)


def _exec_explain(query: Query, snapshot: Snapshot) -> _Payload:
    if query.point_id is not None:
        point = snapshot.point_of(query.point_id)
    else:
        point = np.asarray(query.point, dtype=np.float64)
        if point.shape != (snapshot.dimensions,):
            raise DatasetError(
                f"explain point must be {snapshot.dimensions}-D"
            )
    explanation = why_not(point, snapshot.points, snapshot.ids)
    # Canonicalise dominator order by id so cached and fresh answers
    # are bit-identical however the snapshot was assembled.
    dom_points, dom_ids = _by_id(
        explanation.dominator_points, explanation.dominator_ids
    )
    explanation = WhyNotExplanation(
        point=explanation.point,
        is_skyline_member=explanation.is_skyline_member,
        dominator_points=dom_points,
        dominator_ids=dom_ids,
        single_dimension_fixes=dict(explanation.single_dimension_fixes),
    )
    return _Payload(
        points=dom_points, ids=dom_ids, explanation=explanation
    )


_EXECUTORS = {
    "full": _exec_full,
    "subspace": _exec_subspace,
    "kdominant": _exec_kdominant,
    "topk": _exec_topk,
    "explain": _exec_explain,
}


def execute_on_snapshot(query: Query, snapshot: Snapshot) -> _Payload:
    """Run a query's executor directly against a pinned snapshot.

    This is the service's own compute path minus queues, cache, and
    certificates — a pure function of ``(query, snapshot)`` producing
    the identical canonical payload.  The shard router uses it to
    recompute a sub-answer against a version-vector-pinned snapshot
    when a shard's live answer arrived at a different version.
    """
    query.validate()
    return _EXECUTORS[query.kind](query, snapshot)
