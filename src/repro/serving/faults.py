"""Seeded, deterministic fault injection for the serving tier.

:class:`~repro.mapreduce.faults.FaultPlan` made the *offline* engine's
failures a first-class seeded object; :class:`ServingFaultPlan` extends
the same keyed-draw idiom to the failure modes a long-lived service
actually sees:

* **worker crashes** — a worker thread dies mid-request; the service
  respawns it, re-enqueues the in-flight request once, and quarantines
  it as a poison pill if it keeps killing workers;
* **writer crashes** — the registry writer dies *before*, *during*, or
  *after* publishing a mutation batch, losing its in-memory incremental
  state; recovery replays the durable WAL onto the last durable
  snapshot (:mod:`repro.serving.wal`);
* **result-cache corruption** — a stored payload is bit-flipped in
  place; the cache's CRC guard detects it at lookup and recomputes
  instead of serving wrong data;
* **queue latency** — an injected scheduling delay before a request is
  handled (a GC pause, a noisy neighbour);
* **shard crashes** — a whole shard process dies (registry + service),
  drawn per ``(shard, router op index)`` or scripted at an exact op;
  the router fails over to a WAL-recovered replacement, or serves
  certified partial answers when the shard is *terminal* (recovery
  always fails — a lost disk);
* **shard slowness** — one sub-query straggles past the router's hedge
  threshold, triggering a duplicate hedged sub-query;
* **heartbeat loss** — a health probe response is dropped even though
  the shard is up (a network blip), feeding the per-shard circuit
  breaker with a false positive.

Every decision is a keyed draw (:func:`~repro.mapreduce.faults.keyed_draw`
— BLAKE2 of ``(seed, kind, ...identity)``), so the same plan produces
the same fault schedule regardless of thread interleaving, process, or
host.  Identities are logical (per-dataset mutation sequence numbers,
per-class dequeue indices), not wall-clock, which is what makes chaos
runs replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.exceptions import ConfigurationError
from repro.mapreduce.faults import keyed_draw

__all__ = ["ServingFaultPlan", "WRITER_PHASES"]

#: where, relative to the publish point, a writer crash can land:
#: ``before`` = before the batch reaches the WAL (mutation lost),
#: ``during`` = after the WAL append but before the snapshot publish
#: (mutation durable, applied on recovery), ``after`` = after the
#: snapshot publish (readers already see it; recovery is a no-op
#: replay to the same state).
WRITER_PHASES = ("before", "during", "after")


@dataclass(frozen=True)
class ServingFaultPlan:
    """A seeded, deterministic schedule of serving-tier failures.

    Parameters
    ----------
    seed:
        Keys every draw; same seed → identical fault schedule.
    worker_crash_rate:
        Probability that handling one dequeued request kills its worker
        thread (drawn per ``(class, dequeue index, attempt)``, so a
        re-enqueued request re-draws).
    writer_crash_rate:
        Probability that one mutation batch crashes the dataset writer
        (drawn per ``(dataset, wal sequence)``); a second draw picks the
        crash phase uniformly from :data:`WRITER_PHASES`.
    cache_corruption_rate:
        Probability that a payload is bit-flipped as it is stored in
        the result cache (drawn per cache key).
    queue_delay_rate / queue_delay_seconds:
        Probability that one dequeued request is delayed by
        ``queue_delay_seconds`` before execution.
    max_requeues:
        How many times a request whose worker crashed is re-enqueued
        before being quarantined as poisoned.
    scripted_writer_crashes:
        Exact schedules for tests: ``{(dataset, seq): phase}`` forces
        the writer crash for that WAL sequence number, independent of
        ``writer_crash_rate``.
    shard_crash_rate:
        Probability that serving one router operation kills a shard it
        touches (drawn per ``(shard, op index, incarnation)``; the
        incarnation keying means a recovered shard re-draws instead of
        dying again deterministically).
    scripted_shard_crashes:
        Exact schedules for tests: ``{shard_id: op_index}`` kills that
        shard when the router's operation counter reaches ``op_index``
        (incarnation 0 only — crash once, then let the recovered shard
        live).
    terminal_shards:
        Shards whose recovery *always* fails (a lost disk): every
        failover attempt burns retry budget until the router gives the
        shard up for dead and serves certified partial answers.
    shard_slow_rate / shard_slow_seconds:
        Probability that one sub-query to a shard straggles by
        ``shard_slow_seconds`` (drawn per ``(shard, op index)``),
        tripping the router's hedge threshold.
    heartbeat_loss_rate:
        Probability that one health probe's response is dropped even
        though the shard is healthy (drawn per ``(shard, tick)``).
    """

    seed: int = 0
    worker_crash_rate: float = 0.0
    writer_crash_rate: float = 0.0
    cache_corruption_rate: float = 0.0
    queue_delay_rate: float = 0.0
    queue_delay_seconds: float = 0.002
    max_requeues: int = 1
    scripted_writer_crashes: Mapping[Tuple[str, int], str] = field(
        default_factory=dict
    )
    shard_crash_rate: float = 0.0
    scripted_shard_crashes: Mapping[int, int] = field(
        default_factory=dict
    )
    terminal_shards: Tuple[int, ...] = ()
    shard_slow_rate: float = 0.0
    shard_slow_seconds: float = 0.05
    heartbeat_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "worker_crash_rate",
            "writer_crash_rate",
            "cache_corruption_rate",
            "queue_delay_rate",
            "shard_crash_rate",
            "shard_slow_rate",
            "heartbeat_loss_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(
                    f"{name} must be in [0, 1]; got {rate!r}"
                )
        if self.queue_delay_seconds < 0:
            raise ConfigurationError("queue_delay_seconds must be >= 0")
        if self.shard_slow_seconds < 0:
            raise ConfigurationError("shard_slow_seconds must be >= 0")
        if self.max_requeues < 0:
            raise ConfigurationError("max_requeues must be >= 0")
        for sid, op_index in self.scripted_shard_crashes.items():
            if int(sid) < 0 or int(op_index) < 0:
                raise ConfigurationError(
                    "scripted shard crashes need non-negative shard ids "
                    f"and op indices; got {{{sid}: {op_index}}}"
                )
        if any(int(sid) < 0 for sid in self.terminal_shards):
            raise ConfigurationError("terminal shard ids must be >= 0")
        for (dataset, seq), phase in self.scripted_writer_crashes.items():
            if phase not in WRITER_PHASES:
                raise ConfigurationError(
                    f"scripted writer crash for ({dataset!r}, {seq}) has "
                    f"unknown phase {phase!r}; choose from {WRITER_PHASES}"
                )

    @property
    def any_faults(self) -> bool:
        return bool(
            self.worker_crash_rate
            or self.writer_crash_rate
            or self.cache_corruption_rate
            or self.queue_delay_rate
            or self.scripted_writer_crashes
            or self.any_shard_faults
        )

    @property
    def any_shard_faults(self) -> bool:
        return bool(
            self.shard_crash_rate
            or self.scripted_shard_crashes
            or self.terminal_shards
            or self.shard_slow_rate
            or self.heartbeat_loss_rate
        )

    # ------------------------------------------------------------------
    # the four fault kinds
    # ------------------------------------------------------------------
    def worker_crashes(self, klass: str, index: int, attempt: int) -> bool:
        """Does handling attempt ``attempt`` (1-based) of the
        ``index``-th dequeued ``klass`` request kill its worker?"""
        if self.worker_crash_rate <= 0.0:
            return False
        return (
            keyed_draw(self.seed, "svc-worker", klass, index, attempt)
            < self.worker_crash_rate
        )

    def writer_crash_phase(
        self, dataset: str, seq: int, incarnation: int = 0
    ) -> Optional[str]:
        """The crash phase for mutation ``seq`` of ``dataset``, or
        ``None`` if the writer survives this batch.

        ``incarnation`` is the writer's recovery count; keying the draw
        on it means a batch that crashed incarnation 0 re-draws after
        recovery instead of deterministically crashing on every retry
        forever (the version — and hence ``seq`` — doesn't advance
        across a failed batch).  Scripted crashes fire on incarnation 0
        only: crash once, then let the recovered writer succeed.
        """
        if incarnation == 0:
            scripted = self.scripted_writer_crashes.get((dataset, seq))
            if scripted is not None:
                return scripted
        if self.writer_crash_rate <= 0.0:
            return None
        if (
            keyed_draw(self.seed, "svc-writer", dataset, seq, incarnation)
            >= self.writer_crash_rate
        ):
            return None
        pick = keyed_draw(
            self.seed, "svc-writer-phase", dataset, seq, incarnation
        )
        return WRITER_PHASES[int(pick * len(WRITER_PHASES))]

    def cache_corrupts(self, dataset: str, version: int,
                       fingerprint: str) -> bool:
        """Is the payload stored under this cache key bit-flipped?"""
        if self.cache_corruption_rate <= 0.0:
            return False
        return (
            keyed_draw(self.seed, "svc-cache", dataset, version, fingerprint)
            < self.cache_corruption_rate
        )

    def queue_delay(self, klass: str, index: int) -> float:
        """Injected scheduling delay (seconds) before handling the
        ``index``-th dequeued ``klass`` request; 0.0 almost always."""
        if self.queue_delay_rate <= 0.0 or self.queue_delay_seconds <= 0.0:
            return 0.0
        if (
            keyed_draw(self.seed, "svc-delay", klass, index)
            < self.queue_delay_rate
        ):
            return self.queue_delay_seconds
        return 0.0

    # ------------------------------------------------------------------
    # shard fault kinds (drawn by the router, not the shard services)
    # ------------------------------------------------------------------
    def shard_crashes(
        self, shard: int, op_index: int, incarnation: int = 0
    ) -> bool:
        """Does serving router operation ``op_index`` kill ``shard``?

        ``incarnation`` is the shard's failover count; keying the draw
        on it means a shard that crashed and recovered re-draws instead
        of dying again at its very next operation.  Scripted crashes
        fire on incarnation 0 only.
        """
        if incarnation == 0:
            scripted = self.scripted_shard_crashes.get(int(shard))
            if scripted is not None and int(scripted) == int(op_index):
                return True
        if self.shard_crash_rate <= 0.0:
            return False
        return (
            keyed_draw(
                self.seed, "svc-shard", int(shard), int(op_index),
                int(incarnation),
            )
            < self.shard_crash_rate
        )

    def shard_terminal(self, shard: int) -> bool:
        """Is ``shard`` beyond recovery (every failover attempt fails)?"""
        return int(shard) in {int(s) for s in self.terminal_shards}

    def shard_slow(self, shard: int, op_index: int) -> float:
        """Injected straggle (seconds) for this sub-query; 0.0 almost
        always.  A non-zero value is the router's cue to hedge."""
        if self.shard_slow_rate <= 0.0 or self.shard_slow_seconds <= 0.0:
            return 0.0
        if (
            keyed_draw(self.seed, "svc-shard-slow", int(shard), int(op_index))
            < self.shard_slow_rate
        ):
            return self.shard_slow_seconds
        return 0.0

    def heartbeat_lost(self, shard: int, tick: int) -> bool:
        """Is the ``tick``-th health probe of ``shard`` dropped in
        flight (a false positive: the shard is actually up)?"""
        if self.heartbeat_loss_rate <= 0.0:
            return False
        return (
            keyed_draw(self.seed, "svc-heartbeat", int(shard), int(tick))
            < self.heartbeat_loss_rate
        )

    # ------------------------------------------------------------------
    # CLI spec parsing (mirrors FaultPlan.parse)
    # ------------------------------------------------------------------
    _SPEC_KEYS = {
        "seed": ("seed", int),
        "worker": ("worker_crash_rate", float),
        "writer": ("writer_crash_rate", float),
        "cache": ("cache_corruption_rate", float),
        "delay": ("queue_delay_rate", float),
        "delaysec": ("queue_delay_seconds", float),
        "requeues": ("max_requeues", int),
        "shard": ("shard_crash_rate", float),
        "shardslow": ("shard_slow_rate", float),
        "shardslowsec": ("shard_slow_seconds", float),
        "heartbeat": ("heartbeat_loss_rate", float),
    }

    @classmethod
    def parse(cls, spec: str) -> "ServingFaultPlan":
        """Parse ``"seed=7,worker=0.05,writer=0.1,cache=0.1"`` specs.

        Keys: ``seed``, ``worker`` (crash rate), ``writer`` (crash
        rate), ``cache`` (corruption rate), ``delay`` (rate),
        ``delaysec`` (magnitude), ``requeues``, ``shard`` (crash
        rate), ``shardslow`` (rate), ``shardslowsec`` (magnitude),
        ``heartbeat`` (loss rate), ``crashshard`` (scripted:
        ``SID:OP`` entries joined by ``+``), ``terminal`` (shard ids
        joined by ``+``).
        """
        kwargs: Dict[str, object] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ConfigurationError(
                    f"fault spec token {token!r} must look like key=value"
                )
            key, _, raw = token.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            try:
                if key == "crashshard":
                    scripted: Dict[int, int] = {}
                    for entry in raw.split("+"):
                        sid, _, op = entry.partition(":")
                        scripted[int(sid)] = int(op)
                    kwargs["scripted_shard_crashes"] = scripted
                    continue
                if key == "terminal":
                    kwargs["terminal_shards"] = tuple(
                        int(s) for s in raw.split("+")
                    )
                    continue
                if key not in cls._SPEC_KEYS:
                    raise ConfigurationError(
                        f"unknown serving fault spec key {key!r}; choose "
                        f"from {sorted(cls._SPEC_KEYS) + ['crashshard', 'terminal']}"
                    )
                attr, cast = cls._SPEC_KEYS[key]
                kwargs[attr] = cast(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad value {raw!r} for fault spec key {key!r}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Compact one-line summary (CLI/report headers)."""
        text = (
            f"seed={self.seed} worker={self.worker_crash_rate} "
            f"writer={self.writer_crash_rate} "
            f"cache={self.cache_corruption_rate} "
            f"delay={self.queue_delay_rate}@{self.queue_delay_seconds}s "
            f"requeues={self.max_requeues}"
        )
        if self.any_shard_faults:
            text += (
                f" shard={self.shard_crash_rate} "
                f"shardslow={self.shard_slow_rate}"
                f"@{self.shard_slow_seconds}s "
                f"heartbeat={self.heartbeat_loss_rate}"
            )
            if self.scripted_shard_crashes:
                scripted = "+".join(
                    f"{sid}:{op}"
                    for sid, op in sorted(self.scripted_shard_crashes.items())
                )
                text += f" crashshard={scripted}"
            if self.terminal_shards:
                text += " terminal=" + "+".join(
                    str(s) for s in sorted(self.terminal_shards)
                )
        return text
