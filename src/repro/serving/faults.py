"""Seeded, deterministic fault injection for the serving tier.

:class:`~repro.mapreduce.faults.FaultPlan` made the *offline* engine's
failures a first-class seeded object; :class:`ServingFaultPlan` extends
the same keyed-draw idiom to the failure modes a long-lived service
actually sees:

* **worker crashes** — a worker thread dies mid-request; the service
  respawns it, re-enqueues the in-flight request once, and quarantines
  it as a poison pill if it keeps killing workers;
* **writer crashes** — the registry writer dies *before*, *during*, or
  *after* publishing a mutation batch, losing its in-memory incremental
  state; recovery replays the durable WAL onto the last durable
  snapshot (:mod:`repro.serving.wal`);
* **result-cache corruption** — a stored payload is bit-flipped in
  place; the cache's CRC guard detects it at lookup and recomputes
  instead of serving wrong data;
* **queue latency** — an injected scheduling delay before a request is
  handled (a GC pause, a noisy neighbour).

Every decision is a keyed draw (:func:`~repro.mapreduce.faults.keyed_draw`
— BLAKE2 of ``(seed, kind, ...identity)``), so the same plan produces
the same fault schedule regardless of thread interleaving, process, or
host.  Identities are logical (per-dataset mutation sequence numbers,
per-class dequeue indices), not wall-clock, which is what makes chaos
runs replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.exceptions import ConfigurationError
from repro.mapreduce.faults import keyed_draw

__all__ = ["ServingFaultPlan", "WRITER_PHASES"]

#: where, relative to the publish point, a writer crash can land:
#: ``before`` = before the batch reaches the WAL (mutation lost),
#: ``during`` = after the WAL append but before the snapshot publish
#: (mutation durable, applied on recovery), ``after`` = after the
#: snapshot publish (readers already see it; recovery is a no-op
#: replay to the same state).
WRITER_PHASES = ("before", "during", "after")


@dataclass(frozen=True)
class ServingFaultPlan:
    """A seeded, deterministic schedule of serving-tier failures.

    Parameters
    ----------
    seed:
        Keys every draw; same seed → identical fault schedule.
    worker_crash_rate:
        Probability that handling one dequeued request kills its worker
        thread (drawn per ``(class, dequeue index, attempt)``, so a
        re-enqueued request re-draws).
    writer_crash_rate:
        Probability that one mutation batch crashes the dataset writer
        (drawn per ``(dataset, wal sequence)``); a second draw picks the
        crash phase uniformly from :data:`WRITER_PHASES`.
    cache_corruption_rate:
        Probability that a payload is bit-flipped as it is stored in
        the result cache (drawn per cache key).
    queue_delay_rate / queue_delay_seconds:
        Probability that one dequeued request is delayed by
        ``queue_delay_seconds`` before execution.
    max_requeues:
        How many times a request whose worker crashed is re-enqueued
        before being quarantined as poisoned.
    scripted_writer_crashes:
        Exact schedules for tests: ``{(dataset, seq): phase}`` forces
        the writer crash for that WAL sequence number, independent of
        ``writer_crash_rate``.
    """

    seed: int = 0
    worker_crash_rate: float = 0.0
    writer_crash_rate: float = 0.0
    cache_corruption_rate: float = 0.0
    queue_delay_rate: float = 0.0
    queue_delay_seconds: float = 0.002
    max_requeues: int = 1
    scripted_writer_crashes: Mapping[Tuple[str, int], str] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for name in (
            "worker_crash_rate",
            "writer_crash_rate",
            "cache_corruption_rate",
            "queue_delay_rate",
        ):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(
                    f"{name} must be in [0, 1]; got {rate!r}"
                )
        if self.queue_delay_seconds < 0:
            raise ConfigurationError("queue_delay_seconds must be >= 0")
        if self.max_requeues < 0:
            raise ConfigurationError("max_requeues must be >= 0")
        for (dataset, seq), phase in self.scripted_writer_crashes.items():
            if phase not in WRITER_PHASES:
                raise ConfigurationError(
                    f"scripted writer crash for ({dataset!r}, {seq}) has "
                    f"unknown phase {phase!r}; choose from {WRITER_PHASES}"
                )

    @property
    def any_faults(self) -> bool:
        return bool(
            self.worker_crash_rate
            or self.writer_crash_rate
            or self.cache_corruption_rate
            or self.queue_delay_rate
            or self.scripted_writer_crashes
        )

    # ------------------------------------------------------------------
    # the four fault kinds
    # ------------------------------------------------------------------
    def worker_crashes(self, klass: str, index: int, attempt: int) -> bool:
        """Does handling attempt ``attempt`` (1-based) of the
        ``index``-th dequeued ``klass`` request kill its worker?"""
        if self.worker_crash_rate <= 0.0:
            return False
        return (
            keyed_draw(self.seed, "svc-worker", klass, index, attempt)
            < self.worker_crash_rate
        )

    def writer_crash_phase(
        self, dataset: str, seq: int, incarnation: int = 0
    ) -> Optional[str]:
        """The crash phase for mutation ``seq`` of ``dataset``, or
        ``None`` if the writer survives this batch.

        ``incarnation`` is the writer's recovery count; keying the draw
        on it means a batch that crashed incarnation 0 re-draws after
        recovery instead of deterministically crashing on every retry
        forever (the version — and hence ``seq`` — doesn't advance
        across a failed batch).  Scripted crashes fire on incarnation 0
        only: crash once, then let the recovered writer succeed.
        """
        if incarnation == 0:
            scripted = self.scripted_writer_crashes.get((dataset, seq))
            if scripted is not None:
                return scripted
        if self.writer_crash_rate <= 0.0:
            return None
        if (
            keyed_draw(self.seed, "svc-writer", dataset, seq, incarnation)
            >= self.writer_crash_rate
        ):
            return None
        pick = keyed_draw(
            self.seed, "svc-writer-phase", dataset, seq, incarnation
        )
        return WRITER_PHASES[int(pick * len(WRITER_PHASES))]

    def cache_corrupts(self, dataset: str, version: int,
                       fingerprint: str) -> bool:
        """Is the payload stored under this cache key bit-flipped?"""
        if self.cache_corruption_rate <= 0.0:
            return False
        return (
            keyed_draw(self.seed, "svc-cache", dataset, version, fingerprint)
            < self.cache_corruption_rate
        )

    def queue_delay(self, klass: str, index: int) -> float:
        """Injected scheduling delay (seconds) before handling the
        ``index``-th dequeued ``klass`` request; 0.0 almost always."""
        if self.queue_delay_rate <= 0.0 or self.queue_delay_seconds <= 0.0:
            return 0.0
        if (
            keyed_draw(self.seed, "svc-delay", klass, index)
            < self.queue_delay_rate
        ):
            return self.queue_delay_seconds
        return 0.0

    # ------------------------------------------------------------------
    # CLI spec parsing (mirrors FaultPlan.parse)
    # ------------------------------------------------------------------
    _SPEC_KEYS = {
        "seed": ("seed", int),
        "worker": ("worker_crash_rate", float),
        "writer": ("writer_crash_rate", float),
        "cache": ("cache_corruption_rate", float),
        "delay": ("queue_delay_rate", float),
        "delaysec": ("queue_delay_seconds", float),
        "requeues": ("max_requeues", int),
    }

    @classmethod
    def parse(cls, spec: str) -> "ServingFaultPlan":
        """Parse ``"seed=7,worker=0.05,writer=0.1,cache=0.1"`` specs.

        Keys: ``seed``, ``worker`` (crash rate), ``writer`` (crash
        rate), ``cache`` (corruption rate), ``delay`` (rate),
        ``delaysec`` (magnitude), ``requeues``.
        """
        kwargs: Dict[str, object] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ConfigurationError(
                    f"fault spec token {token!r} must look like key=value"
                )
            key, _, raw = token.partition("=")
            key = key.strip().lower()
            if key not in cls._SPEC_KEYS:
                raise ConfigurationError(
                    f"unknown serving fault spec key {key!r}; "
                    f"choose from {sorted(cls._SPEC_KEYS)}"
                )
            attr, cast = cls._SPEC_KEYS[key]
            try:
                kwargs[attr] = cast(raw.strip())
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad value {raw.strip()!r} for fault spec key {key!r}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Compact one-line summary (CLI/report headers)."""
        return (
            f"seed={self.seed} worker={self.worker_crash_rate} "
            f"writer={self.writer_crash_rate} "
            f"cache={self.cache_corruption_rate} "
            f"delay={self.queue_delay_rate}@{self.queue_delay_seconds}s "
            f"requeues={self.max_requeues}"
        )
